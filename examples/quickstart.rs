//! Quickstart: build an indexed database, run one partitioned query, and
//! compare it with exhaustive Smith–Waterman.
//!
//! ```sh
//! cargo run --release -p nucdb --example quickstart
//! ```

use nucdb::{Database, DbConfig, SearchParams};
use nucdb_seq::random::{CollectionSpec, MutationModel, SyntheticCollection};

fn main() {
    // 1. A synthetic GenBank-like collection: unrelated background records
    //    plus planted homolog families (so we know the right answers).
    let spec = CollectionSpec {
        seed: 2024,
        num_background: 400,
        num_families: 6,
        family_size: 4,
        ..CollectionSpec::default()
    };
    let coll = SyntheticCollection::generate(&spec);
    println!(
        "collection: {} records, {} bases",
        coll.records.len(),
        coll.total_bases()
    );

    // 2. Build the database: sequence store (direct-coded) + compressed
    //    inverted interval index.
    let db = Database::build(
        coll.records.iter().map(|r| (r.id.clone(), r.seq.clone())),
        &DbConfig::default(),
    );

    // 3. Query with a mutated fragment of family 0's parent sequence.
    let query = coll.query_for_family(0, 0.6, &MutationModel::standard(0.05));
    println!("query: {} bases", query.len());

    let outcome = db.search(&query, &SearchParams::default()).unwrap();
    println!("\npartitioned search results:");
    println!(
        "{:<4} {:<10} {:>8} {:>12} {:>6}",
        "rank", "id", "score", "coarse", "hits"
    );
    for (rank, result) in outcome.results.iter().take(10).enumerate() {
        println!(
            "{:<4} {:<10} {:>8} {:>12.2} {:>6}",
            rank + 1,
            result.id,
            result.score,
            result.coarse_score,
            result.coarse_hits
        );
    }

    let stats = outcome.stats;
    println!(
        "\ncosts: {} intervals looked up, {} lists fetched, {} postings decoded, \
         {} candidates aligned",
        stats.intervals_looked_up, stats.lists_fetched, stats.postings_decoded, stats.candidates
    );
    println!(
        "time: coarse {:.2} ms + fine {:.2} ms",
        stats.coarse_nanos as f64 / 1e6,
        stats.fine_nanos as f64 / 1e6
    );

    // 4. Sanity-check against exhaustive Smith–Waterman.
    let t0 = std::time::Instant::now();
    let truth = nucdb::ground_truth_sw(
        db.store(),
        &query.representative_bases(),
        &SearchParams::default().scheme,
    );
    let sw_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!("\nexhaustive Smith-Waterman took {sw_ms:.1} ms; top answers:");
    for hit in truth.iter().take(5) {
        println!("  record {:>5} score {:>6}", hit.id, hit.score);
    }

    let family: Vec<u32> = coll.families[0].member_ids.clone();
    let retrieved = outcome
        .results
        .iter()
        .filter(|r| family.contains(&r.record))
        .count();
    println!(
        "\nplanted family members retrieved by partitioned search: {retrieved}/{}",
        family.len()
    );
}
