//! Index tuning: sweep the interval length, codec, and stopping policy and
//! print the size/speed/accuracy consequences — a miniature of experiments
//! E1/E4/E8 for interactive exploration.
//!
//! ```sh
//! cargo run --release -p nucdb --example index_tuning
//! ```

use std::collections::HashSet;
use std::time::Instant;

use nucdb::{recall_at, Database, DbConfig, RankingScheme, SearchParams};
use nucdb_index::{IndexParams, ListCodec, StopPolicy};
use nucdb_seq::random::{CollectionSpec, MutationModel, SyntheticCollection};

fn main() {
    let coll = SyntheticCollection::generate(&CollectionSpec {
        seed: 4096,
        num_background: 300,
        num_families: 6,
        family_size: 4,
        ..CollectionSpec::default()
    });
    println!(
        "collection: {} records / {} bases\n",
        coll.records.len(),
        coll.total_bases()
    );

    let queries: Vec<_> = (0..coll.families.len())
        .map(|f| coll.query_for_family(f, 0.5, &MutationModel::standard(0.06)))
        .collect();

    let evaluate = |config: &DbConfig, label: &str| {
        let t0 = Instant::now();
        let db = Database::build(
            coll.records.iter().map(|r| (r.id.clone(), r.seq.clone())),
            config,
        );
        let build_ms = t0.elapsed().as_secs_f64() * 1e3;

        let index_bytes = match db.index() {
            nucdb::IndexVariant::Memory(i) => i.stats().total_bytes(),
            _ => unreachable!("built in memory"),
        };

        let params = SearchParams::default();
        let t0 = Instant::now();
        let mut recall_sum = 0.0;
        for (f, query) in queries.iter().enumerate() {
            let outcome = db.search(query, &params).unwrap();
            let ranked: Vec<u32> = outcome.results.iter().map(|r| r.record).collect();
            let relevant: HashSet<u32> = coll.families[f].member_ids.iter().copied().collect();
            recall_sum += recall_at(&ranked, &relevant, 10);
        }
        let query_ms = t0.elapsed().as_secs_f64() * 1e3 / queries.len() as f64;
        println!(
            "{label:<34} build {build_ms:>7.1} ms  index {:>9} B  query {query_ms:>6.2} ms  recall@10 {:.3}",
            index_bytes,
            recall_sum / queries.len() as f64
        );
    };

    println!("--- interval length sweep (codec: paper) ---");
    for k in [6, 8, 10, 12] {
        let config = DbConfig {
            index: IndexParams::new(k),
            ..DbConfig::default()
        };
        evaluate(&config, &format!("k = {k}"));
    }

    println!("\n--- codec sweep (k = 8) ---");
    for codec in [
        ListCodec::Paper,
        ListCodec::Gamma,
        ListCodec::VByte,
        ListCodec::Fixed,
    ] {
        let config = DbConfig {
            codec,
            ..DbConfig::default()
        };
        evaluate(&config, codec.name());
    }

    println!("\n--- stopping sweep (k = 8, paper codec) ---");
    for (label, stopping) in [
        ("no stopping", None),
        ("df <= 10% of records", Some(StopPolicy::DfFraction(0.10))),
        ("df <= 2% of records", Some(StopPolicy::DfFraction(0.02))),
    ] {
        let mut index = IndexParams::new(8);
        index.stopping = stopping;
        let config = DbConfig {
            index,
            ..DbConfig::default()
        };
        evaluate(&config, label);
    }

    println!("\n--- ranking sweep (k = 8) ---");
    let db = Database::build(
        coll.records.iter().map(|r| (r.id.clone(), r.seq.clone())),
        &DbConfig::default(),
    );
    for (label, ranking) in [
        ("count", RankingScheme::Count),
        ("proportional", RankingScheme::Proportional),
        ("frame (window 16)", RankingScheme::Frame { window: 16 }),
    ] {
        let params = SearchParams::default().with_ranking(ranking);
        let mut recall_sum = 0.0;
        for (f, query) in queries.iter().enumerate() {
            let outcome = db.search(query, &params).unwrap();
            let ranked: Vec<u32> = outcome.results.iter().map(|r| r.record).collect();
            let relevant: HashSet<u32> = coll.families[f].member_ids.iter().copied().collect();
            recall_sum += recall_at(&ranked, &relevant, 10);
        }
        println!(
            "{label:<20} recall@10 {:.3}",
            recall_sum / queries.len() as f64
        );
    }
}
