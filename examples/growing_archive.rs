//! Archive maintenance: the collection grows in deposit batches, as
//! GenBank does. Instead of rebuilding the index per batch, each batch is
//! indexed alone and merged — and queries keep working identically to a
//! from-scratch rebuild.
//!
//! ```sh
//! cargo run --release -p nucdb --example growing_archive
//! ```

use nucdb::{Database, DbConfig, IndexVariant, SearchParams};
use nucdb_index::{apply_stopping, StopPolicy};
use nucdb_seq::random::{CollectionSpec, MutationModel, SyntheticCollection};

fn main() {
    // Three deposit batches arriving over time.
    let batches: Vec<SyntheticCollection> = (0..3)
        .map(|i| {
            SyntheticCollection::generate(&CollectionSpec {
                seed: 9000 + i,
                num_background: 150,
                num_families: 2,
                family_size: 3,
                repeat_prob: 0.2,
                ..CollectionSpec::default()
            })
        })
        .collect();

    // Start with batch 0, then append the rest incrementally.
    let mut db = Database::build(
        batches[0]
            .records
            .iter()
            .map(|r| (r.id.clone(), r.seq.clone())),
        &DbConfig::default(),
    );
    println!("initial archive: {} records", db.len());

    for (i, batch) in batches.iter().enumerate().skip(1) {
        let t0 = std::time::Instant::now();
        db.append_records(batch.records.iter().map(|r| (r.id.clone(), r.seq.clone())))
            .expect("append to a memory-backed database");
        println!(
            "appended batch {i}: +{} records in {:.1} ms (total {})",
            batch.records.len(),
            t0.elapsed().as_secs_f64() * 1e3,
            db.len()
        );
    }

    // Queries against families from every batch — including the first,
    // whose records were indexed three merges ago.
    let params = SearchParams::default();
    let mut offset = 0u32;
    for (i, batch) in batches.iter().enumerate() {
        let query = batch.query_for_family(0, 0.6, &MutationModel::standard(0.05));
        let outcome = db.search(&query, &params).unwrap();
        let members: Vec<u32> = batch.families[0]
            .member_ids
            .iter()
            .map(|m| m + offset)
            .collect();
        let found = outcome
            .results
            .iter()
            .filter(|r| members.contains(&r.record))
            .count();
        println!(
            "batch {i} family query: {}/{} members retrieved (top answer {})",
            found,
            members.len(),
            outcome
                .results
                .first()
                .map_or("-".to_string(), |r| r.id.clone()),
        );
        offset += batch.records.len() as u32;
    }

    // Housekeeping pass: once the archive is assembled, stop the heavy
    // repeat lists in one post-processing step.
    let IndexVariant::Memory(index) = db.index() else {
        unreachable!()
    };
    let before = index.stats();
    let stopped = apply_stopping(index, StopPolicy::DfFraction(0.05)).unwrap();
    let after = stopped.stats();
    println!(
        "\npost-merge stopping at df<=5%: {} -> {} distinct intervals, {} -> {} postings",
        before.distinct_intervals,
        after.distinct_intervals,
        before.postings_entries,
        after.postings_entries
    );
}
