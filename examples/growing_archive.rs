//! Archive maintenance: the collection grows in deposit batches, as
//! GenBank does. Instead of rebuilding the index per batch, batches are
//! inserted into a **live database**: they land in an in-memory memtable,
//! flush to immutable on-disk segments tracked by a crash-safe manifest,
//! and a compaction pass merges segments back down — and at every step
//! queries answer **identically to a from-scratch rebuild** over the same
//! records.
//!
//! ```sh
//! cargo run --release -p nucdb --example growing_archive
//! ```

use nucdb::{Database, DbConfig, LiveDatabase, LiveOptions, SearchParams};
use nucdb_seq::random::{CollectionSpec, MutationModel, SyntheticCollection};
use nucdb_seq::DnaSeq;

/// All records deposited so far, in insertion order.
fn records_so_far(batches: &[SyntheticCollection], upto: usize) -> Vec<(String, DnaSeq)> {
    batches[..upto]
        .iter()
        .flat_map(|b| b.records.iter().map(|r| (r.id.clone(), r.seq.clone())))
        .collect()
}

/// Assert the live database answers a panel of family queries exactly
/// like a database rebuilt from scratch over the same records.
fn assert_matches_rebuild(
    live: &LiveDatabase,
    batches: &[SyntheticCollection],
    upto: usize,
    stage: &str,
) {
    let rebuild = Database::build(records_so_far(batches, upto), &DbConfig::default());
    let snapshot = live.snapshot();
    assert_eq!(snapshot.len(), rebuild.len(), "{stage}: record count");

    let params = SearchParams::default();
    for (i, batch) in batches[..upto].iter().enumerate() {
        let query = batch.query_for_family(0, 0.6, &MutationModel::standard(0.05));
        let got = snapshot.search(&query, &params).unwrap();
        let want = rebuild.search(&query, &params).unwrap();
        let got: Vec<(u32, i32)> = got.results.iter().map(|r| (r.record, r.score)).collect();
        let want: Vec<(u32, i32)> = want.results.iter().map(|r| (r.record, r.score)).collect();
        assert_eq!(got, want, "{stage}: batch {i} query diverged from rebuild");
    }
    println!("  {stage}: answers identical to a from-scratch rebuild");
}

fn main() {
    // Three deposit batches arriving over time.
    let batches: Vec<SyntheticCollection> = (0..3)
        .map(|i| {
            SyntheticCollection::generate(&CollectionSpec {
                seed: 9000 + i,
                num_background: 150,
                num_families: 2,
                family_size: 3,
                repeat_prob: 0.2,
                ..CollectionSpec::default()
            })
        })
        .collect();

    let dir = std::env::temp_dir().join(format!("nucdb_growing_archive_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let live = LiveDatabase::create(&dir, &DbConfig::default(), LiveOptions::default()).unwrap();

    // Deposit each batch: insert (searchable immediately, from the
    // memtable), then flush (durable as an on-disk segment).
    for (i, batch) in batches.iter().enumerate() {
        let t0 = std::time::Instant::now();
        let outcome = live
            .insert_batch(
                batch
                    .records
                    .iter()
                    .map(|r| (r.id.clone(), r.seq.clone()))
                    .collect(),
            )
            .unwrap();
        println!(
            "deposited batch {i}: +{} records in {:.1} ms (total {})",
            outcome.inserted,
            t0.elapsed().as_secs_f64() * 1e3,
            live.snapshot().len(),
        );
        assert_matches_rebuild(&live, &batches, i + 1, "after insert");

        live.flush().unwrap();
        assert_matches_rebuild(&live, &batches, i + 1, "after flush");
    }
    let status = live.status();
    println!(
        "archive holds {} segments at manifest v{}",
        status.segments.len(),
        status.manifest_version
    );

    // Housekeeping: compact the segments back down. Queries keep
    // answering identically while the file set shrinks.
    for run in live.compact_all().unwrap() {
        println!(
            "compacted segments {:?}: {} B -> {} B in {:.1} ms",
            run.inputs,
            run.input_bytes,
            run.output_bytes,
            run.nanos as f64 / 1e6
        );
        assert_matches_rebuild(&live, &batches, batches.len(), "after compaction");
    }

    // Reopen from the manifest: everything is still there.
    drop(live);
    let reopened = LiveDatabase::open(&dir, LiveOptions::default()).unwrap();
    assert_matches_rebuild(&reopened, &batches, batches.len(), "after reopen");
    let status = reopened.status();
    println!(
        "reopened from manifest v{}: {} segments, {} records",
        status.manifest_version,
        status.segments.len(),
        reopened.snapshot().len(),
    );

    let _ = std::fs::remove_dir_all(&dir);
}
