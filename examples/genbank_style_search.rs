//! A GenBank-style workflow: write a collection to FASTA, stream it back
//! in, build a database, and answer a batch of homology queries with
//! reported alignments — the scenario the paper's introduction motivates
//! (a biologist submitting new sequences against a growing archive).
//!
//! ```sh
//! cargo run --release -p nucdb --example genbank_style_search
//! ```

use std::io::{BufReader, Cursor};

use nucdb::{Database, DbConfig, FineMode, SearchParams};
use nucdb_seq::random::{CollectionSpec, MutationModel, SyntheticCollection};
use nucdb_seq::{FastaReader, FastaRecord, FastaWriter};

fn main() {
    // --- Produce a FASTA archive (stand-in for a GenBank download). ---
    let spec = CollectionSpec {
        seed: 77,
        num_background: 250,
        num_families: 5,
        family_size: 4,
        wildcard_rate: 0.001, // occasional Ns, as real submissions have
        ..CollectionSpec::default()
    };
    let coll = SyntheticCollection::generate(&spec);

    let mut writer = FastaWriter::new(Vec::new());
    for record in &coll.records {
        writer
            .write_record(&FastaRecord::new(record.id.clone(), record.seq.clone()))
            .expect("in-memory write cannot fail");
    }
    let fasta_bytes = writer.into_inner().unwrap();
    println!(
        "FASTA archive: {} bytes, {} records",
        fasta_bytes.len(),
        coll.records.len()
    );

    // --- Stream the archive back in and build the database. ---
    let reader = FastaReader::new(BufReader::new(Cursor::new(fasta_bytes)));
    let records = reader.map(|r| {
        let r = r.expect("archive is well-formed");
        (r.id, r.seq)
    });
    let db = Database::build(records, &DbConfig::default());
    println!(
        "database: {} records, store {} bytes (direct-coded)",
        db.len(),
        db.store().stored_bytes()
    );

    // --- A batch of queries: one per family, plus an unrelated control. ---
    let params = SearchParams::default().with_fine(FineMode::FullWithTraceback);
    for family in 0..coll.families.len() {
        let query = coll.query_for_family(family, 0.5, &MutationModel::standard(0.08));
        let outcome = db.search(&query, &params).unwrap();
        println!(
            "\nquery fam{family:02} ({} bases): {} answers",
            query.len(),
            outcome.results.len()
        );
        for result in outcome.results.iter().take(3) {
            let alignment = result.alignment.as_ref().unwrap();
            println!(
                "  {:<10} score {:>5}  identity {:>5.1}%  q[{}..{}] x t[{}..{}]  {}",
                result.id,
                result.score,
                alignment.identity() * 100.0,
                alignment.query_range.start,
                alignment.query_range.end,
                alignment.target_range.start,
                alignment.target_range.end,
                truncate(&alignment.cigar_string(), 40),
            );
        }
    }

    let control = coll.random_query(600);
    let outcome = db.search(&control, &params).unwrap();
    println!(
        "\nunrelated control query: {} answers above threshold (expect few/none)",
        outcome.results.len()
    );
}

fn truncate(s: &str, max: usize) -> String {
    if s.len() <= max {
        s.to_string()
    } else {
        format!("{}…", &s[..max])
    }
}
