//! The full external pipeline, as the paper's setting demands: build the
//! index with bounded memory (chunked build with run files), persist it,
//! reopen it in on-disk mode, and evaluate queries that fetch postings
//! lists individually — reporting the bytes read from "disk" per query.
//!
//! ```sh
//! cargo run --release -p nucdb --example disk_index_pipeline
//! ```

use nucdb::{Database, IndexVariant, SearchParams, SequenceStore, StorageMode};
use nucdb_index::{build_chunked, write_index, IndexParams, ListCodec, OnDiskIndex};
use nucdb_seq::random::{CollectionSpec, MutationModel, SyntheticCollection};

fn main() {
    let coll = SyntheticCollection::generate(&CollectionSpec {
        seed: 31337,
        num_background: 500,
        num_families: 5,
        family_size: 4,
        ..CollectionSpec::default()
    });
    println!(
        "collection: {} records / {} bases",
        coll.records.len(),
        coll.total_bases()
    );

    let work_dir = std::env::temp_dir().join(format!("nucdb_pipeline_{}", std::process::id()));
    std::fs::create_dir_all(&work_dir).expect("create work dir");

    // --- Chunked external build: only `chunk` records in memory at once. ---
    let chunk = 64;
    let t0 = std::time::Instant::now();
    let index = build_chunked(
        IndexParams::new(8),
        ListCodec::Paper,
        coll.records.iter().map(|r| r.seq.representative_bases()),
        chunk,
        &work_dir,
    )
    .expect("chunked build");
    println!(
        "chunked build ({} records/chunk): {:.1} ms, {} distinct intervals",
        chunk,
        t0.elapsed().as_secs_f64() * 1e3,
        index.distinct_intervals()
    );
    let stats = index.stats();
    println!(
        "index: {} postings entries, {} B compressed ({:.1}% of the uncompressed layout)",
        stats.postings_entries,
        stats.blob_bytes,
        stats.compression_ratio() * 100.0
    );

    // --- Persist and reopen on disk. ---
    let index_path = work_dir.join("collection.nucidx");
    write_index(&index, &index_path).expect("write index");
    let on_disk = OnDiskIndex::open(&index_path).expect("open index");
    println!(
        "index file: {} bytes at {}",
        std::fs::metadata(&index_path).unwrap().len(),
        index_path.display()
    );

    let mut store = SequenceStore::new(StorageMode::DirectCoding);
    for record in &coll.records {
        store.add(record.id.clone(), &record.seq);
    }
    let db = Database::from_parts(store, IndexVariant::Disk(on_disk));

    // --- Queries, with per-query I/O accounting. ---
    let params = SearchParams::default();
    println!(
        "\n{:<8} {:>8} {:>10} {:>12} {:>10}",
        "query", "answers", "top score", "bytes read", "lists"
    );
    for f in 0..coll.families.len() {
        let query = coll.query_for_family(f, 0.5, &MutationModel::standard(0.05));
        if let IndexVariant::Disk(disk) = db.index() {
            disk.reset_io_counters();
        }
        let outcome = db.search(&query, &params).unwrap();
        let (bytes, lists) = match db.index() {
            IndexVariant::Disk(disk) => (disk.bytes_read(), disk.lists_read()),
            _ => (0, 0),
        };
        println!(
            "fam{f:02}    {:>8} {:>10} {:>12} {:>10}",
            outcome.results.len(),
            outcome.results.first().map_or(0, |r| r.score),
            bytes,
            lists
        );
    }

    let _ = std::fs::remove_dir_all(&work_dir);
}
