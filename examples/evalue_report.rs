//! Statistical significance reporting: calibrate alignment-score
//! statistics for the scoring scheme, then search on both strands and
//! report bit scores and e-values alongside raw scores — separating real
//! homology from chance at a glance.
//!
//! ```sh
//! cargo run --release -p nucdb --example evalue_report
//! ```

use nucdb::RecordSource;
use nucdb::{Database, DbConfig, SearchParams, Strand};
use nucdb_align::{calibrate_gumbel, ungapped_lambda};
use nucdb_seq::random::{CollectionSpec, MutationModel, SyntheticCollection};

fn main() {
    let coll = SyntheticCollection::generate(&CollectionSpec {
        seed: 808,
        num_background: 300,
        num_families: 3,
        family_size: 3,
        ..CollectionSpec::default()
    });
    let db = Database::build(
        coll.records.iter().map(|r| (r.id.clone(), r.seq.clone())),
        &DbConfig::default(),
    );
    let params = SearchParams::default().with_strand(Strand::Both);

    // Analytic ungapped lambda (sanity anchor) and empirical calibration
    // for the actual gapped regime.
    let lambda = ungapped_lambda(&params.scheme, [0.25; 4]).expect("scheme is well-posed");
    println!("ungapped Karlin-Altschul lambda for +5/-4: {lambda:.4}");
    let mean_len = coll.total_bases() / coll.records.len();
    let fit = calibrate_gumbel(&params.scheme, 300, mean_len, 60, 0xBEEF);
    println!(
        "empirical gapped fit at 300 x {mean_len}: lambda {:.4}, K {:.4e}\n",
        fit.lambda, fit.k
    );

    // One homologous query and one reverse-complemented homologous query.
    let fwd = coll.query_for_family(0, 0.6, &MutationModel::standard(0.06));
    let rc = coll
        .query_for_family(1, 0.6, &MutationModel::standard(0.06))
        .reverse_complement();

    for (label, query) in [
        ("forward homolog", &fwd),
        ("reverse-complement homolog", &rc),
    ] {
        let outcome = db.search(query, &params).unwrap();
        println!("query: {label} ({} bases)", query.len());
        println!(
            "  {:<12} {:>7} {:>6} {:>9} {:>12}",
            "id", "score", "strand", "bits", "e-value"
        );
        for result in outcome.results.iter().take(6) {
            let target_len = db.store().record_len(result.record);
            println!(
                "  {:<12} {:>7} {:>6} {:>9.1} {:>12.2e}",
                result.id,
                result.score,
                match result.strand {
                    Strand::Forward => "+",
                    Strand::Reverse => "-",
                    Strand::Both => "?",
                },
                fit.bit_score(result.score),
                fit.evalue(query.len(), target_len, result.score),
            );
        }
        let cut = fit.score_for_evalue(query.len(), mean_len, 1e-3);
        let significant = outcome.results.iter().filter(|r| r.score >= cut).count();
        println!("  score for E <= 1e-3 at this size: {cut}; {significant} significant answers\n");
    }
}
