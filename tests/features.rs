//! Integration tests for the feature surface beyond the core pipeline:
//! strand handling, masking, striding, granularity, and e-value
//! statistics working together at collection scale.

use std::collections::HashSet;

use nucdb::{
    recall_at, Database, DbConfig, FineMode, RankingScheme, RecordSource, SearchParams, Strand,
};
use nucdb_align::calibrate_gumbel;
use nucdb_index::{Granularity, IndexParams};
use nucdb_seq::random::{splice_repeat, CollectionSpec, MutationModel, SyntheticCollection};
use nucdb_seq::{DnaSeq, DustParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn collection(seed: u64) -> SyntheticCollection {
    SyntheticCollection::generate(&CollectionSpec {
        seed,
        num_background: 120,
        num_families: 4,
        family_size: 3,
        repeat_prob: 0.3,
        ..CollectionSpec::default()
    })
}

fn build(coll: &SyntheticCollection, config: &DbConfig) -> Database {
    Database::build(
        coll.records.iter().map(|r| (r.id.clone(), r.seq.clone())),
        config,
    )
}

#[test]
fn both_strand_search_unions_forward_and_reverse() {
    let coll = collection(301);
    let db = build(&coll, &DbConfig::default());

    // Forward query for family 0, rc query for family 1, concatenated —
    // a chimera whose halves sit on opposite strands.
    let fwd = coll.query_for_family(0, 0.5, &MutationModel::substitutions(0.02));
    let rev = coll
        .query_for_family(1, 0.5, &MutationModel::substitutions(0.02))
        .reverse_complement();
    let mut chimera = fwd.clone();
    chimera.extend_from(&rev);

    let params = SearchParams::default().with_strand(Strand::Both);
    let outcome = db.search(&chimera, &params).unwrap();
    let by_record: Vec<(u32, Strand)> = outcome
        .results
        .iter()
        .map(|r| (r.record, r.strand))
        .collect();

    for &m in &coll.families[0].member_ids {
        assert!(
            by_record
                .iter()
                .any(|&(r, s)| r == m && s == Strand::Forward),
            "family 0 member {m} missing on forward strand"
        );
    }
    for &m in &coll.families[1].member_ids {
        assert!(
            by_record
                .iter()
                .any(|&(r, s)| r == m && s == Strand::Reverse),
            "family 1 member {m} missing on reverse strand"
        );
    }
}

#[test]
fn masking_defends_against_contaminated_queries_at_scale() {
    let coll = collection(302);
    let db = build(&coll, &DbConfig::default());

    // Contaminate every family query with a repeat-unit tiling segment.
    let mut rng = StdRng::seed_from_u64(302);
    let unit = coll.repeat_units[0].clone();
    let mut masked_recall = 0.0;
    let mut masked_hits = 0u64;
    let mut unmasked_hits = 0u64;
    for f in 0..coll.families.len() {
        let mut query = coll.query_for_family(f, 0.6, &MutationModel::substitutions(0.03));
        let repeat = splice_repeat(
            &DnaSeq::from_ascii(&[b'C'; 100]).unwrap(),
            &unit,
            100..101,
            &mut rng,
        );
        query.extend_from(&repeat);

        let relevant: HashSet<u32> = coll.families[f].member_ids.iter().copied().collect();

        let plain = db.search(&query, &SearchParams::default()).unwrap();
        unmasked_hits += plain.stats.total_hits;

        let masked_params = SearchParams {
            mask: Some(DustParams::default()),
            ..SearchParams::default()
        };
        let masked = db.search(&query, &masked_params).unwrap();
        masked_hits += masked.stats.total_hits;
        let ranked: Vec<u32> = masked.results.iter().map(|r| r.record).collect();
        masked_recall += recall_at(&ranked, &relevant, 10);
    }
    let n = coll.families.len() as f64;
    assert!(
        masked_recall / n >= 0.9,
        "masked recall {:.3}",
        masked_recall / n
    );
    assert!(
        masked_hits * 4 < unmasked_hits,
        "masking did not curb hit volume: {masked_hits} vs {unmasked_hits}"
    );
}

#[test]
fn striding_keeps_recall_at_scale() {
    let coll = collection(303);
    let db = build(&coll, &DbConfig::default());
    for stride in [2usize, 4] {
        let params = SearchParams {
            query_stride: stride,
            ..SearchParams::default()
        };
        let mut recall = 0.0;
        for f in 0..coll.families.len() {
            let query = coll.query_for_family(f, 0.6, &MutationModel::substitutions(0.03));
            let relevant: HashSet<u32> = coll.families[f].member_ids.iter().copied().collect();
            let ranked: Vec<u32> = db
                .search(&query, &params)
                .unwrap()
                .results
                .iter()
                .map(|r| r.record)
                .collect();
            recall += recall_at(&ranked, &relevant, 10);
        }
        let recall = recall / coll.families.len() as f64;
        assert!(recall >= 0.9, "stride {stride}: recall {recall}");
    }
}

#[test]
fn record_granularity_matches_offset_results_with_full_fine() {
    let coll = collection(304);
    let offsets_db = build(&coll, &DbConfig::default());
    let records_db = build(
        &coll,
        &DbConfig {
            index: IndexParams::new(8).with_granularity(Granularity::Records),
            ..DbConfig::default()
        },
    );

    // With count ranking, generous candidates, and full fine alignment
    // both index granularities must return identical ranked answers.
    let params = SearchParams::default()
        .with_ranking(RankingScheme::Count)
        .with_candidates(60)
        .with_fine(FineMode::Full);
    for f in 0..coll.families.len() {
        let query = coll.query_for_family(f, 0.5, &MutationModel::standard(0.05));
        let a: Vec<(u32, i32)> = offsets_db
            .search(&query, &params)
            .unwrap()
            .results
            .iter()
            .map(|r| (r.record, r.score))
            .collect();
        let b: Vec<(u32, i32)> = records_db
            .search(&query, &params)
            .unwrap()
            .results
            .iter()
            .map(|r| (r.record, r.score))
            .collect();
        assert_eq!(a, b, "family {f}");
    }
}

#[test]
fn evalues_separate_homologs_from_noise() {
    let coll = collection(305);
    let db = build(&coll, &DbConfig::default());
    let params = SearchParams::default();
    let mean_len = db.store().total_bases() / db.len();
    let query = coll.query_for_family(2, 0.6, &MutationModel::standard(0.05));
    let fit = calibrate_gumbel(&params.scheme, query.len(), mean_len, 48, 305);

    let outcome = db.search(&query, &params).unwrap();
    let members: HashSet<u32> = coll.families[2].member_ids.iter().copied().collect();
    for result in &outcome.results {
        let target_len = db.store().record_len(result.record);
        let evalue = fit.evalue(query.len(), target_len, result.score);
        if members.contains(&result.record) {
            assert!(
                evalue < 1e-6,
                "member {} has weak e-value {evalue}",
                result.record
            );
        } else {
            assert!(
                evalue > 1e-6,
                "non-member {} looks significant: {evalue}",
                result.record
            );
        }
    }
}

#[test]
fn iupac_fine_mode_runs_end_to_end() {
    // Heavy wildcard contamination: IUPAC fine mode must still retrieve
    // the planted member and score at least as well as collapsed mode.
    let coll = SyntheticCollection::generate(&CollectionSpec {
        seed: 306,
        wildcard_rate: 0.05,
        ..CollectionSpec::tiny(306)
    });
    let db = build(&coll, &DbConfig::default());
    let member = coll.families[0].member_ids[0];
    let range = coll.families[0].embedded_ranges[0].clone();
    let query = coll.records[member as usize].seq.subseq(range);

    let collapsed = db
        .search(&query, &SearchParams::default().with_fine(FineMode::Full))
        .unwrap();
    let iupac = db
        .search(
            &query,
            &SearchParams::default().with_fine(FineMode::FullIupac),
        )
        .unwrap();
    let collapsed_score = collapsed
        .results
        .iter()
        .find(|r| r.record == member)
        .map(|r| r.score)
        .unwrap_or(0);
    let iupac_hit = iupac
        .results
        .iter()
        .find(|r| r.record == member)
        .expect("member retrieved under IUPAC fine mode");
    assert!(
        iupac_hit.score >= collapsed_score,
        "iupac {} < collapsed {collapsed_score}",
        iupac_hit.score
    );
}
