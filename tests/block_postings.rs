//! Cross-layer acceptance tests for the NUCIDX04 block-postings tier:
//! coarse search over a block-codec index — in memory and through the
//! on-disk pread path — must return bit-identical ranks to the paper
//! (v3 bit-serial) codec build, and the hopeless-block skip must fire
//! (blocks_skipped > 0) under floor pressure without changing answers.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use nucdb::{
    coarse_rank, CoarseOutcome, Database, DbConfig, IndexVariant, SearchParams, SequenceStore,
    StorageMode, StoreVariant,
};
use nucdb_index::{
    load_index, write_index, CompressedIndex, IndexBuilder, IndexParams, ListCodec, OnDiskIndex,
};
use nucdb_seq::random::{CollectionSpec, MutationModel, SyntheticCollection};
use nucdb_seq::Base;

static DIR_NONCE: AtomicU64 = AtomicU64::new(0);

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "nucdb_blockpost_{name}_{}_{}",
        std::process::id(),
        DIR_NONCE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn collection(seed: u64) -> SyntheticCollection {
    SyntheticCollection::generate(&CollectionSpec::tiny(seed))
}

fn build_index(coll: &SyntheticCollection, codec: ListCodec) -> CompressedIndex {
    let mut builder = IndexBuilder::new(IndexParams::new(8)).with_codec(codec);
    for record in &coll.records {
        builder.add_record(&record.seq.representative_bases());
    }
    builder.finish()
}

fn ranks(outcome: &CoarseOutcome) -> Vec<(u32, u32, u32, i64)> {
    outcome
        .candidates
        .iter()
        .map(|c| (c.record, c.hits, c.frame_hits, c.best_diagonal))
        .collect()
}

/// The headline acceptance test: for a spread of queries and coarse
/// floors, candidate ranks from the NUCIDX04 build equal the v3
/// (paper codec) build bit for bit — in memory and via pread.
#[test]
fn block_index_ranks_bit_identical_to_paper_codec() {
    let coll = collection(1203);
    let paper = build_index(&coll, ListCodec::Paper);
    let block = build_index(&coll, ListCodec::Block);

    let dir = temp_dir("ranks");
    let v3_path = dir.join("paper.nucidx");
    let v4_path = dir.join("block.nucidx");
    write_index(&paper, &v3_path).unwrap();
    write_index(&block, &v4_path).unwrap();
    assert_eq!(&std::fs::read(&v4_path).unwrap()[..8], b"NUCIDX04");
    let v3_disk = OnDiskIndex::open(&v3_path).unwrap();
    let v4_disk = OnDiskIndex::open(&v4_path).unwrap();

    let model = MutationModel::identity();
    for family in 0..coll.families.len().min(4) {
        let query: Vec<Base> = coll
            .query_for_family(family, 0.7, &model)
            .representative_bases();
        for min_coarse_hits in [1, 2, 8, 32] {
            let params = SearchParams {
                min_coarse_hits,
                max_candidates: 100,
                ..SearchParams::default()
            };
            let label = format!("family {family}, floor {min_coarse_hits}");
            let baseline = coarse_rank(&paper, &query, &params).unwrap();
            let mem = coarse_rank(&block, &query, &params).unwrap();
            assert_eq!(
                ranks(&baseline),
                ranks(&mem),
                "memory ranks diverge: {label}"
            );
            let d3 = coarse_rank(&v3_disk, &query, &params).unwrap();
            let d4 = coarse_rank(&v4_disk, &query, &params).unwrap();
            assert_eq!(
                ranks(&baseline),
                ranks(&d3),
                "v3 disk ranks diverge: {label}"
            );
            assert_eq!(
                ranks(&baseline),
                ranks(&d4),
                "v4 disk ranks diverge: {label}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A collection engineered for deterministic skipping: 400 records
/// share one long segment (so its interval lists span several
/// 128-posting blocks), and record 0 alone also carries the query's
/// unique half. With a floor only record 0 can clear, whole blocks of
/// the shared lists are provably hopeless.
fn skip_heavy_records() -> (Vec<(String, nucdb_seq::DnaSeq)>, Vec<Base>) {
    let common = b"ACGTAGCTAGCTGGATCCAATTGGCCAACC";
    let unique = b"TGCATGCATTGCAACGGTACCTTAGGCATC";
    let mut records = Vec::new();
    let mut full = Vec::from(&common[..]);
    full.extend_from_slice(unique);
    records.push((
        "target".to_string(),
        nucdb_seq::DnaSeq::from_ascii(&full).unwrap(),
    ));
    for i in 0..400usize {
        let mut r = Vec::from(&common[..]);
        r.extend(std::iter::repeat_n(b"GCTA"[i % 4], 8));
        records.push((format!("bg{i}"), nucdb_seq::DnaSeq::from_ascii(&r).unwrap()));
    }
    let mut query = Vec::from(&common[..]);
    query.extend_from_slice(unique);
    let query = nucdb_seq::DnaSeq::from_ascii(&query)
        .unwrap()
        .representative_bases();
    (records, query)
}

#[test]
fn skipping_fires_on_disk_and_preserves_answers() {
    let (records, query) = skip_heavy_records();
    let mut builder = IndexBuilder::new(IndexParams::new(8)).with_codec(ListCodec::Block);
    for (_, seq) in &records {
        builder.add_record(&seq.representative_bases());
    }
    let block = builder.finish();
    let mut paper_builder = IndexBuilder::new(IndexParams::new(8)).with_codec(ListCodec::Paper);
    for (_, seq) in &records {
        paper_builder.add_record(&seq.representative_bases());
    }
    let paper = paper_builder.finish();

    let dir = temp_dir("skip");
    let path = dir.join("block.nucidx");
    write_index(&block, &path).unwrap();
    let disk = OnDiskIndex::open(&path).unwrap();

    let params = SearchParams {
        min_coarse_hits: 40,
        max_candidates: 500,
        ..SearchParams::default()
    };
    let baseline = coarse_rank(&paper, &query, &params).unwrap();
    let on_disk = coarse_rank(&disk, &query, &params).unwrap();
    assert_eq!(ranks(&baseline), ranks(&on_disk));
    assert!(
        on_disk.blocks_skipped > 0,
        "skip never fired: decoded {} skipped {}",
        on_disk.blocks_decoded,
        on_disk.blocks_skipped
    );
    // Skipping shows up as decode savings, not I/O savings.
    assert!(on_disk.postings_decoded < baseline.postings_decoded);
    assert!(on_disk.postings_bytes_read > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Full-engine parity: end-to-end search answers (records and fine
/// scores) from a block-codec database equal the paper-codec ones, and
/// the engine's stats surface the new work counters.
#[test]
fn database_answers_identical_across_codecs() {
    let coll = collection(1204);
    let records = || coll.records.iter().map(|r| (r.id.clone(), r.seq.clone()));
    let paper_db = Database::build(records(), &DbConfig::default());
    let block_db = Database::build(
        records(),
        &DbConfig {
            codec: ListCodec::Block,
            ..DbConfig::default()
        },
    );

    let query = coll.query_for_family(0, 0.6, &MutationModel::identity());
    let params = SearchParams::default();
    let tuples = |o: &nucdb::SearchOutcome| -> Vec<(u32, i32)> {
        o.results.iter().map(|r| (r.record, r.score)).collect()
    };
    let a = paper_db.search(&query, &params).unwrap();
    let b = block_db.search(&query, &params).unwrap();
    assert_eq!(tuples(&a), tuples(&b));
    assert!(!a.results.is_empty());
    assert!(b.stats.postings_bytes_read > 0);
    assert!(b.stats.blocks_decoded > 0);
    assert_eq!(a.stats.blocks_decoded, 0);
}

/// The engine also accepts a v4 file through its disk wiring, with the
/// store alongside — the serve/CLI path.
#[test]
fn engine_runs_on_a_v4_disk_index() {
    let (records, _) = skip_heavy_records();
    let mut builder = IndexBuilder::new(IndexParams::new(8)).with_codec(ListCodec::Block);
    let mut store = SequenceStore::new(StorageMode::DirectCoding);
    for (id, seq) in &records {
        builder.add_record(&seq.representative_bases());
        store.add(id.clone(), seq);
    }
    let dir = temp_dir("engine");
    let path = dir.join("idx.nucidx");
    write_index(&builder.finish(), &path).unwrap();
    let loaded = load_index(&path).unwrap();
    assert_eq!(loaded.codec(), ListCodec::Block);

    let db = Database::from_variants(
        StoreVariant::Memory(store),
        IndexVariant::Disk(OnDiskIndex::open(&path).unwrap()),
    );
    let query = nucdb_seq::DnaSeq::from_ascii(
        b"ACGTAGCTAGCTGGATCCAATTGGCCAACCTGCATGCATTGCAACGGTACCTTAGGCATC",
    )
    .unwrap();
    let params = SearchParams {
        min_coarse_hits: 40,
        max_candidates: 500,
        ..SearchParams::default()
    };
    let outcome = db.search(&query, &params).unwrap();
    assert_eq!(outcome.results[0].record, 0, "target record must win");
    assert!(outcome.stats.blocks_skipped > 0);
    let _ = std::fs::remove_dir_all(&dir);
}
