//! Durability suite: the on-disk formats under byte-level corruption,
//! truncation, and injected I/O faults.
//!
//! The contract under test, from the durability layer's design: any read
//! of a corrupted or truncated index / store file must either fail with a
//! clean typed error or produce bit-identical results to the pristine
//! file — it must **never** panic and never silently return wrong data.
//! Transient I/O errors within the pread retry budget must be invisible.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use nucdb::{
    Database, DbConfig, IndexVariant, RecordSource, SearchParams, SequenceStore, StorageMode,
    StoreVariant,
};
use nucdb_index::{
    load_index, write_index, write_index_v2, CompressedIndex, FaultPlan, Granularity, IndexBuilder,
    IndexParams, ListCodec, OnDiskIndex, StopPolicy, TRANSIENT_RETRY_LIMIT,
};
use nucdb_seq::random::{CollectionSpec, SyntheticCollection};
use nucdb_seq::{DnaSeq, SeqError};

static DIR_NONCE: AtomicU64 = AtomicU64::new(0);

/// A unique fresh directory per call, so concurrently-running tests never
/// collide on file names.
fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "nucdb_durability_{name}_{}_{}",
        std::process::id(),
        DIR_NONCE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn small_collection(seed: u64) -> SyntheticCollection {
    SyntheticCollection::generate(&CollectionSpec::tiny(seed))
}

/// A handful of short handcrafted records: the exhaustive fuzz tests
/// re-load the whole file once per byte, so the files must stay small
/// (a couple of kilobytes) for the sweep to stay fast.
fn micro_records() -> Vec<(String, DnaSeq)> {
    [
        &b"ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT"[..],
        b"TTTTGGGGCCCCAAAATTTTGGGGCCCCAAAA",
        b"ACGTNNACGTRYACGTACGTACGTACGT",
        b"GATTACAGATTACAGATTACAGATTACAGATTACA",
        b"CCCCCCCCGGGGGGGGACGTACGTTTTTTTTT",
        b"ATATATATATATATATATATGCGCGCGCGC",
    ]
    .iter()
    .enumerate()
    .map(|(i, ascii)| (format!("m{i}"), DnaSeq::from_ascii(ascii).unwrap()))
    .collect()
}

fn micro_index() -> CompressedIndex {
    micro_index_with(ListCodec::Paper)
}

fn micro_index_with(codec: ListCodec) -> CompressedIndex {
    let mut builder = IndexBuilder::new(IndexParams::new(8)).with_codec(codec);
    for (_, seq) in micro_records() {
        builder.add_record(&seq.representative_bases());
    }
    builder.finish()
}

fn micro_store() -> SequenceStore {
    let mut store = SequenceStore::new(StorageMode::DirectCoding);
    for (id, seq) in micro_records() {
        store.add(id, &seq);
    }
    store
}

fn build_index(
    coll: &SyntheticCollection,
    params: IndexParams,
    codec: ListCodec,
) -> CompressedIndex {
    let mut builder = IndexBuilder::new(params).with_codec(codec);
    for record in &coll.records {
        builder.add_record(&record.seq.representative_bases());
    }
    builder.finish()
}

fn build_store(coll: &SyntheticCollection, mode: StorageMode) -> SequenceStore {
    let mut store = SequenceStore::new(mode);
    for record in &coll.records {
        store.add(record.id.clone(), &record.seq);
    }
    store
}

fn indexes_equal(a: &CompressedIndex, b: &CompressedIndex) -> bool {
    a.params() == b.params()
        && a.codec() == b.codec()
        && a.record_lens() == b.record_lens()
        && a.vocab() == b.vocab()
        && a.blob() == b.blob()
}

fn stores_equal(a: &SequenceStore, b: &SequenceStore) -> bool {
    a.len() == b.len()
        && a.mode() == b.mode()
        && (0..a.len() as u32)
            .all(|r| a.id(r) == b.id(r) && a.sequence(r).unwrap() == b.sequence(r).unwrap())
}

// ---------------------------------------------------------------------
// Tentpole satellite 1: exhaustive byte fuzz. Every single-byte flip and
// every truncation prefix of a v3 index and a v2 store must produce a
// clean typed error or bit-identical results — and must never panic.
// ---------------------------------------------------------------------

#[test]
fn index_survives_every_single_byte_flip() {
    let index = micro_index();
    let dir = temp_dir("idxflip");
    let path = dir.join("idx.nucidx");
    write_index(&index, &path).unwrap();
    let pristine = std::fs::read(&path).unwrap();

    for offset in 0..pristine.len() {
        let mut mutated = pristine.clone();
        mutated[offset] ^= 0xFF;
        std::fs::write(&path, &mutated).unwrap();
        let outcome = catch_unwind(AssertUnwindSafe(|| load_index(&path)));
        match outcome {
            Err(_) => panic!("load_index panicked with byte {offset} flipped"),
            Ok(Err(_)) => {} // clean typed error: acceptable
            Ok(Ok(loaded)) => {
                // A load that still succeeds must be bit-identical in
                // effect (possible only if the flip misses all covered
                // content, which checksummed v3 rules out).
                assert!(
                    indexes_equal(&loaded, &index),
                    "byte {offset} flip loaded successfully but changed the index"
                );
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn index_survives_every_truncation() {
    let index = micro_index();
    let dir = temp_dir("idxtrunc");
    let path = dir.join("idx.nucidx");
    write_index(&index, &path).unwrap();
    let pristine = std::fs::read(&path).unwrap();

    for cut in 0..pristine.len() {
        std::fs::write(&path, &pristine[..cut]).unwrap();
        let outcome = catch_unwind(AssertUnwindSafe(|| load_index(&path)));
        match outcome {
            Err(_) => panic!("load_index panicked on truncation at {cut}"),
            Ok(result) => assert!(
                result.is_err(),
                "truncation at {cut} of {} loaded successfully",
                pristine.len()
            ),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// NUCIDX04 (block codec): the same exhaustive sweeps, plus the format's
// sharper promise — a point corruption in a list payload is pinned to
// one block (section "block"), and only that list becomes unreadable.
// ---------------------------------------------------------------------

#[test]
fn block_index_survives_every_single_byte_flip() {
    let index = micro_index_with(ListCodec::Block);
    let dir = temp_dir("v4flip");
    let path = dir.join("idx.nucidx");
    write_index(&index, &path).unwrap();
    let pristine = std::fs::read(&path).unwrap();
    assert_eq!(&pristine[..8], b"NUCIDX04");

    let mut block_sections = 0usize;
    for offset in 0..pristine.len() {
        let mut mutated = pristine.clone();
        mutated[offset] ^= 0xFF;
        std::fs::write(&path, &mutated).unwrap();
        let outcome = catch_unwind(AssertUnwindSafe(|| load_index(&path)));
        match outcome {
            Err(_) => panic!("load_index panicked with byte {offset} flipped"),
            Ok(Err(e)) => {
                if let nucdb_index::IndexError::Corruption {
                    section,
                    offset: reported,
                    ..
                } = &e
                {
                    if *section == "block" {
                        block_sections += 1;
                        // A block corruption names the byte range of the
                        // flipped payload: the reported offset is the
                        // block's start, at or before the flipped byte.
                        assert!(
                            *reported <= offset as u64,
                            "block corruption at byte {offset} reported downstream \
                             offset {reported}"
                        );
                    }
                }
            }
            Ok(Ok(loaded)) => {
                assert!(
                    indexes_equal(&loaded, &index),
                    "byte {offset} flip loaded successfully but changed the index"
                );
            }
        }
    }
    // Payload flips must have been attributed to blocks, not whole lists.
    assert!(
        block_sections > 0,
        "no flip surfaced a block-level corruption error"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn block_index_survives_every_truncation() {
    let index = micro_index_with(ListCodec::Block);
    let dir = temp_dir("v4trunc");
    let path = dir.join("idx.nucidx");
    write_index(&index, &path).unwrap();
    let pristine = std::fs::read(&path).unwrap();

    for cut in 0..pristine.len() {
        std::fs::write(&path, &pristine[..cut]).unwrap();
        let outcome = catch_unwind(AssertUnwindSafe(|| load_index(&path)));
        match outcome {
            Err(_) => panic!("load_index panicked on truncation at {cut}"),
            Ok(result) => assert!(
                result.is_err(),
                "truncation at {cut} of {} loaded successfully",
                pristine.len()
            ),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn block_point_corruption_costs_one_block_not_the_file() {
    let index = micro_index_with(ListCodec::Block);
    let dir = temp_dir("v4point");
    let path = dir.join("idx.nucidx");
    write_index(&index, &path).unwrap();

    // Flip the final byte of the file: the last list's last block
    // payload (the blob is the file's tail in NUCIDX04, as in v3).
    let mut bytes = std::fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();

    // The pread reader opens fine (header and vocabulary are intact)…
    let disk = OnDiskIndex::open(&path).unwrap();
    let mut failures = 0usize;
    let mut successes = 0usize;
    for entry in index.vocab() {
        match disk.postings(entry.code) {
            Ok(Some(list)) => {
                successes += 1;
                assert_eq!(Some(list), index.postings(entry.code).unwrap());
            }
            Ok(None) => panic!("vocab entry {} vanished", entry.code),
            Err(e) => {
                failures += 1;
                assert!(
                    matches!(
                        &e,
                        nucdb_index::IndexError::Corruption { section, .. }
                        if *section == "block"
                    ),
                    "expected a block-level corruption, got {e}"
                );
            }
        }
    }
    // Exactly one list is damaged; every other list still answers.
    assert_eq!(failures, 1, "one corrupt byte must cost exactly one list");
    assert!(successes > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_survives_every_single_byte_flip() {
    let store = micro_store();
    let dir = temp_dir("stoflip");
    let path = dir.join("coll.nucsto");
    store.write_to(&path).unwrap();
    let pristine = std::fs::read(&path).unwrap();

    for offset in 0..pristine.len() {
        let mut mutated = pristine.clone();
        mutated[offset] ^= 0xFF;
        std::fs::write(&path, &mutated).unwrap();

        // Eager load path.
        match catch_unwind(AssertUnwindSafe(|| SequenceStore::read_from(&path))) {
            Err(_) => panic!("read_from panicked with byte {offset} flipped"),
            Ok(Err(_)) => {}
            Ok(Ok(loaded)) => assert!(
                stores_equal(&loaded, &store),
                "byte {offset} flip loaded successfully but changed the store"
            ),
        }

        // Lazy pread path: open may succeed (payload corruption is only
        // discoverable at fetch time), but every record fetch must then
        // error or return the pristine sequence.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let disk = nucdb::OnDiskStore::open(&path)?;
            for r in 0..RecordSource::len(&disk) as u32 {
                // A typed error is acceptable; success must be pristine.
                if let Ok(seq) = RecordSource::sequence(&disk, r) {
                    assert_eq!(
                        seq,
                        store.sequence(r).unwrap(),
                        "byte {offset} flip changed record {r} silently"
                    );
                }
            }
            Ok::<(), SeqError>(())
        }));
        assert!(
            outcome.is_ok(),
            "on-disk store panicked with byte {offset} flipped"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_survives_every_truncation() {
    let store = micro_store();
    let dir = temp_dir("stotrunc");
    let path = dir.join("coll.nucsto");
    store.write_to(&path).unwrap();
    let pristine = std::fs::read(&path).unwrap();

    for cut in 0..pristine.len() {
        std::fs::write(&path, &pristine[..cut]).unwrap();
        match catch_unwind(AssertUnwindSafe(|| SequenceStore::read_from(&path))) {
            Err(_) => panic!("read_from panicked on truncation at {cut}"),
            Ok(result) => assert!(result.is_err(), "truncation at {cut} loaded successfully"),
        }
        // The pread path may open if the TOC is intact, but record
        // fetches beyond the cut must fail cleanly.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if let Ok(disk) = nucdb::OnDiskStore::open(&path) {
                for r in 0..RecordSource::len(&disk) as u32 {
                    if let Ok(seq) = RecordSource::sequence(&disk, r) {
                        assert_eq!(seq, store.sequence(r).unwrap());
                    }
                }
            }
        }));
        assert!(
            outcome.is_ok(),
            "on-disk store panicked at truncation {cut}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Format-compatibility sweep: every codec x granularity x stopping combo
// round-trips through the v3 writer, and the v2/v1 legacy files still
// load.
// ---------------------------------------------------------------------

#[test]
fn every_codec_granularity_stopping_combo_round_trips() {
    let coll = small_collection(905);
    let codecs = [
        ListCodec::Paper,
        ListCodec::Gamma,
        ListCodec::Delta,
        ListCodec::VByte,
        ListCodec::Fixed,
        ListCodec::Interp,
        ListCodec::Block,
    ];
    let granularities = [Granularity::Offsets, Granularity::Records];
    let stoppings = [
        None,
        Some(StopPolicy::DfFraction(0.25)),
        Some(StopPolicy::DfAbsolute(10)),
        Some(StopPolicy::TopK(3)),
    ];
    let dir = temp_dir("combos");
    for codec in codecs {
        for granularity in granularities {
            for stopping in stoppings {
                let mut params = IndexParams::new(8).with_granularity(granularity);
                if let Some(policy) = stopping {
                    params = params.with_stopping(policy);
                }
                let index = build_index(&coll, params, codec);
                let label = format!("{codec:?}/{granularity:?}/{stopping:?}");

                let v3 = dir.join("combo.nucidx");
                write_index(&index, &v3).unwrap();
                let loaded = load_index(&v3).unwrap();
                assert!(indexes_equal(&loaded, &index), "v3 mismatch for {label}");

                let v2 = dir.join("combo_v2.nucidx");
                write_index_v2(&index, &v2).unwrap();
                let loaded = load_index(&v2).unwrap();
                assert!(indexes_equal(&loaded, &index), "v2 mismatch for {label}");
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn legacy_files_and_current_files_answer_identically() {
    let coll = small_collection(906);
    let dir = temp_dir("legacy");
    let memory = Database::build(
        coll.records.iter().map(|r| (r.id.clone(), r.seq.clone())),
        &DbConfig::default(),
    );
    let query = coll.query_for_family(0, 0.6, &nucdb_seq::random::MutationModel::identity());
    let baseline: Vec<(u32, i32)> = memory
        .search(&query, &SearchParams::default())
        .unwrap()
        .results
        .iter()
        .map(|r| (r.record, r.score))
        .collect();
    assert!(!baseline.is_empty());

    // Current formats.
    let index = build_index(&coll, IndexParams::new(8), ListCodec::Paper);
    let store = build_store(&coll, StorageMode::DirectCoding);
    let v3_idx = dir.join("idx_v3.nucidx");
    let v2_sto = dir.join("sto_v2.nucsto");
    write_index(&index, &v3_idx).unwrap();
    store.write_to(&v2_sto).unwrap();

    // Legacy formats, as the previous release wrote them.
    let v2_idx = dir.join("idx_v2.nucidx");
    let v1_sto = dir.join("sto_v1.nucsto");
    write_index_v2(&index, &v2_idx).unwrap();
    store.write_to_v1(&v1_sto).unwrap();

    for (idx_path, sto_path) in [(&v3_idx, &v2_sto), (&v2_idx, &v1_sto)] {
        let db = Database::from_variants(
            StoreVariant::Disk(nucdb::OnDiskStore::open(sto_path).unwrap()),
            IndexVariant::Disk(OnDiskIndex::open(idx_path).unwrap()),
        );
        let answers: Vec<(u32, i32)> = db
            .search(&query, &SearchParams::default())
            .unwrap()
            .results
            .iter()
            .map(|r| (r.record, r.score))
            .collect();
        assert_eq!(answers, baseline, "disk answers diverge for {idx_path:?}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Fault injection on the pread path: transient errors within the retry
// budget are invisible; bit flips surface as typed corruption and bump
// the engine's corruption metric; the database never panics and keeps
// answering clean queries.
// ---------------------------------------------------------------------

/// Build the collection on disk and return (dir, index path, store path).
fn persisted(seed: u64, name: &str) -> (PathBuf, PathBuf, PathBuf, SyntheticCollection) {
    let coll = small_collection(seed);
    let dir = temp_dir(name);
    let idx = dir.join("idx.nucidx");
    let sto = dir.join("coll.nucsto");
    write_index(
        &build_index(&coll, IndexParams::new(8), ListCodec::Paper),
        &idx,
    )
    .unwrap();
    build_store(&coll, StorageMode::DirectCoding)
        .write_to(&sto)
        .unwrap();
    (dir, idx, sto, coll)
}

fn faulty_db(idx: &Path, sto: &Path, plan: FaultPlan) -> Database {
    Database::from_variants(
        StoreVariant::Disk(nucdb::OnDiskStore::open_faulty(sto, plan.clone()).unwrap()),
        IndexVariant::Disk(OnDiskIndex::open_faulty(idx, plan).unwrap()),
    )
}

#[test]
fn transient_errors_within_budget_are_invisible() {
    let (dir, idx, sto, coll) = persisted(907, "transient");
    let clean = faulty_db(&idx, &sto, FaultPlan::clean(1));
    let query = coll.query_for_family(1, 0.6, &nucdb_seq::random::MutationModel::identity());
    let baseline = clean.search(&query, &SearchParams::default()).unwrap();
    assert!(!baseline.results.is_empty());

    // Every pread call fails with a transient error until the budget is
    // spent — but the budget is within the retry limit, so searches must
    // succeed with identical answers. Short reads ride along for free.
    let plan = FaultPlan::clean(42)
        .with_transient_errors(1.0, TRANSIENT_RETRY_LIMIT)
        .with_short_reads(0.5);
    let flaky = faulty_db(&idx, &sto, plan);
    let outcome = flaky.search(&query, &SearchParams::default()).unwrap();
    let tuples = |o: &nucdb::SearchOutcome| -> Vec<(u32, i32)> {
        o.results.iter().map(|r| (r.record, r.score)).collect()
    };
    assert_eq!(tuples(&outcome), tuples(&baseline));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_flips_surface_as_corruption_and_bump_the_metric() {
    let (dir, idx, sto, coll) = persisted(908, "bitflip");
    // Flip bits throughout both files' payload regions (past the 16-byte
    // prefix, which is read during open from the pristine file anyway).
    let flips: Vec<(u64, u8)> = (0..64u64).map(|i| (64 + i * 37, 1u8 << (i % 8))).collect();
    let plan = FaultPlan::clean(7).with_bit_flips(flips);
    let mut db = faulty_db(&idx, &sto, plan);
    let registry = nucdb_obs::MetricsRegistry::new();
    db.bind_metrics(&registry);

    let query = coll.query_for_family(0, 0.6, &nucdb_seq::random::MutationModel::identity());
    let result = catch_unwind(AssertUnwindSafe(|| {
        db.search(&query, &SearchParams::default())
    }));
    let result = result.expect("search must not panic on flipped bits");
    match result {
        Err(e) => {
            assert!(e.is_corruption(), "expected corruption error, got {e}");
            assert!(
                db.metrics().io_corruption.get() >= 1,
                "corruption metric not bumped"
            );
            let text = registry.snapshot().to_prometheus();
            assert!(
                text.contains("nucdb_io_corruption_total"),
                "metric missing from exposition:\n{text}"
            );
        }
        Ok(outcome) => {
            // The flips may all land outside the bytes this query touches;
            // then answers must match the clean database exactly.
            let clean = faulty_db(&idx, &sto, FaultPlan::clean(1));
            let baseline = clean.search(&query, &SearchParams::default()).unwrap();
            let tuples = |o: &nucdb::SearchOutcome| -> Vec<(u32, i32)> {
                o.results.iter().map(|r| (r.record, r.score)).collect()
            };
            assert_eq!(tuples(&outcome), tuples(&baseline));
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_file_under_pread_errors_cleanly() {
    let (dir, idx, sto, coll) = persisted(909, "preadtrunc");
    // Truncate both files to 3/4 length at the pread layer only: opens
    // succeed (headers parse from the pristine files), record and list
    // fetches past the cut must fail with a typed error, not a panic.
    let idx_len = std::fs::metadata(&idx).unwrap().len();
    let sto_len = std::fs::metadata(&sto).unwrap().len();
    let db = Database::from_variants(
        StoreVariant::Disk(
            nucdb::OnDiskStore::open_faulty(&sto, FaultPlan::clean(3).with_truncation(sto_len / 4))
                .unwrap(),
        ),
        IndexVariant::Disk(
            OnDiskIndex::open_faulty(&idx, FaultPlan::clean(3).with_truncation(idx_len / 4))
                .unwrap(),
        ),
    );
    let query = coll.query_for_family(2, 0.6, &nucdb_seq::random::MutationModel::identity());
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        db.search(&query, &SearchParams::default())
    }))
    .expect("search must not panic on a truncated backing file");
    let err = outcome.expect_err("search beyond the truncation point must fail");
    assert!(err.is_corruption(), "unexpected error class: {err}");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Atomic persistence: writers leave no temp droppings behind, and the
// destination file only ever holds a complete image.
// ---------------------------------------------------------------------

#[test]
fn writers_leave_no_temp_files() {
    let coll = small_collection(910);
    let dir = temp_dir("atomic");
    let index = build_index(&coll, IndexParams::new(8), ListCodec::Paper);
    let store = build_store(&coll, StorageMode::DirectCoding);

    write_index(&index, &dir.join("idx.nucidx")).unwrap();
    write_index_v2(&index, &dir.join("idx_v2.nucidx")).unwrap();
    store.write_to(&dir.join("sto.nucsto")).unwrap();
    store.write_to_v1(&dir.join("sto_v1.nucsto")).unwrap();

    // Overwrites go through the same temp+rename path.
    write_index(&index, &dir.join("idx.nucidx")).unwrap();
    store.write_to(&dir.join("sto.nucsto")).unwrap();

    let leftovers: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|name| name.contains(".tmp."))
        .collect();
    assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");

    // And what was renamed into place is complete and valid.
    assert!(indexes_equal(
        &load_index(&dir.join("idx.nucidx")).unwrap(),
        &index
    ));
    assert!(stores_equal(
        &SequenceStore::read_from(&dir.join("sto.nucsto")).unwrap(),
        &store
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn failed_write_preserves_previous_file() {
    // A write that errors out (destination directory removed mid-flight
    // is hard to stage portably; instead: write to a path whose parent
    // is a file, which fails at create time) must leave an existing good
    // file untouched.
    let coll = small_collection(911);
    let dir = temp_dir("preserve");
    let store = build_store(&coll, StorageMode::DirectCoding);
    let path = dir.join("sto.nucsto");
    store.write_to(&path).unwrap();
    let before = std::fs::read(&path).unwrap();

    let blocked = dir.join("sto.nucsto").join("impossible");
    assert!(store.write_to(&blocked).is_err());

    assert_eq!(std::fs::read(&path).unwrap(), before);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Streaming loads through the fault-injecting reader: short reads are
// harmless, flips and truncation produce typed errors.
// ---------------------------------------------------------------------

#[test]
fn streaming_index_load_survives_short_reads() {
    use std::io::Read;
    let coll = small_collection(912);
    let index = build_index(&coll, IndexParams::new(8), ListCodec::Paper);
    let dir = temp_dir("stream");
    let path = dir.join("idx.nucidx");
    write_index(&index, &path).unwrap();
    let bytes = std::fs::read(&path).unwrap();

    // Short reads only: the loader must reassemble the exact index.
    let reader =
        nucdb_index::FaultyReader::new(&bytes[..], FaultPlan::clean(5).with_short_reads(0.9));
    let loaded = nucdb_index::load_index_from(reader).unwrap();
    assert!(indexes_equal(&loaded, &index));

    // A flipped byte inside the checksummed region must be caught even
    // through a streaming read.
    let mut flipped = nucdb_index::FaultyReader::new(
        &bytes[..],
        FaultPlan::clean(5).with_bit_flips(vec![(40, 0x10)]),
    );
    let mut buffered = Vec::new();
    flipped.read_to_end(&mut buffered).unwrap();
    assert!(load_index_from_slice(&buffered).is_err());
    let _ = std::fs::remove_dir_all(&dir);
}

fn load_index_from_slice(bytes: &[u8]) -> Result<CompressedIndex, nucdb_index::IndexError> {
    nucdb_index::load_index_from(bytes)
}

#[test]
fn query_error_does_not_poison_the_database() {
    // One record's payload is corrupt on disk. Queries whose candidates
    // include it fail with a typed error; the same database keeps
    // answering queries that avoid it — degraded service, not an outage.
    let coll = small_collection(913);
    let dir = temp_dir("poison");
    let sto = dir.join("coll.nucsto");
    let idx = dir.join("idx.nucidx");
    let store = build_store(&coll, StorageMode::DirectCoding);
    store.write_to(&sto).unwrap();
    write_index(
        &build_index(&coll, IndexParams::new(8), ListCodec::Paper),
        &idx,
    )
    .unwrap();

    // Corrupt the last record's payload bytes directly in the file.
    let mut bytes = std::fs::read(&sto).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    std::fs::write(&sto, &bytes).unwrap();

    let db = Database::from_variants(
        StoreVariant::Disk(nucdb::OnDiskStore::open(&sto).unwrap()),
        IndexVariant::Disk(OnDiskIndex::open(&idx).unwrap()),
    );
    let last_record = (db.len() - 1) as u32;

    // Query the corrupt record by its own sequence: fine search must
    // fetch it and fail cleanly.
    let corrupt_query = coll.records[last_record as usize].seq.clone();
    let err = db
        .search(&corrupt_query, &SearchParams::default())
        .expect_err("query touching the corrupt record must fail");
    assert!(err.is_corruption());

    // A query for a family that does not contain the corrupt record
    // still succeeds afterwards.
    let family = coll
        .families
        .iter()
        .enumerate()
        .find(|(_, f)| !f.member_ids.contains(&last_record))
        .map(|(i, _)| i)
        .expect("some family avoids the last record");
    let healthy_query =
        coll.query_for_family(family, 0.6, &nucdb_seq::random::MutationModel::identity());
    let outcome = db.search(&healthy_query, &SearchParams::default());
    if let Ok(outcome) = outcome {
        assert!(outcome
            .results
            .iter()
            .all(|r| r.record != last_record || r.score >= 0));
    }
    // (If the healthy query's coarse candidates happen to include the
    // corrupt record, the error is still the typed kind.)
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn legacy_v1_store_and_v2_index_still_work_end_to_end() {
    let coll = small_collection(914);
    let dir = temp_dir("legacye2e");
    let idx = dir.join("idx.nucidx");
    let sto = dir.join("coll.nucsto");
    write_index_v2(
        &build_index(&coll, IndexParams::new(8), ListCodec::Paper),
        &idx,
    )
    .unwrap();
    build_store(&coll, StorageMode::Ascii)
        .write_to_v1(&sto)
        .unwrap();

    let db = Database::from_variants(
        StoreVariant::Disk(nucdb::OnDiskStore::open(&sto).unwrap()),
        IndexVariant::Disk(OnDiskIndex::open(&idx).unwrap()),
    );
    let query = DnaSeq::from_ascii(&coll.records[0].seq.to_ascii_vec()).unwrap();
    let outcome = db.search(&query, &SearchParams::default()).unwrap();
    assert!(outcome.results.iter().any(|r| r.record == 0));
    let _ = std::fs::remove_dir_all(&dir);
}
