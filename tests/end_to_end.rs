//! End-to-end integration: build databases over synthetic collections and
//! verify that partitioned search retrieves planted homologs, agrees with
//! exhaustive ground truth at generous cutoffs, and degrades gracefully
//! as the candidate cutoff shrinks.

use std::collections::HashSet;

use nucdb::{
    average_precision, exhaustive_sw, recall_at, Database, DbConfig, FineMode, RankingScheme,
    SearchParams,
};
use nucdb_align::ScoringScheme;
use nucdb_index::{IndexParams, StopPolicy};
use nucdb_seq::random::{CollectionSpec, MutationModel, SyntheticCollection};

fn medium_collection(seed: u64) -> SyntheticCollection {
    SyntheticCollection::generate(&CollectionSpec {
        seed,
        num_background: 150,
        background_len: 300..1200,
        num_families: 6,
        family_size: 4,
        parent_len: 250..500,
        mutation: MutationModel::standard(0.08),
        flank_len: 50..250,
        ..CollectionSpec::default()
    })
}

fn build(coll: &SyntheticCollection, config: &DbConfig) -> Database {
    Database::build(
        coll.records.iter().map(|r| (r.id.clone(), r.seq.clone())),
        config,
    )
}

#[test]
fn partitioned_search_recalls_planted_families() {
    let coll = medium_collection(101);
    let db = build(&coll, &DbConfig::default());
    let params = SearchParams::default();

    let mut total_recall = 0.0;
    for (f, family) in coll.families.iter().enumerate() {
        let query = coll.query_for_family(f, 0.6, &MutationModel::substitutions(0.03));
        let outcome = db.search(&query, &params).unwrap();
        let ranked: Vec<u32> = outcome.results.iter().map(|r| r.record).collect();
        let relevant: HashSet<u32> = family.member_ids.iter().copied().collect();
        total_recall += recall_at(&ranked, &relevant, 10);
    }
    let mean_recall = total_recall / coll.families.len() as f64;
    assert!(mean_recall > 0.9, "mean family recall {mean_recall}");
}

#[test]
fn partitioned_agrees_with_exhaustive_sw_at_generous_cutoff() {
    let coll = medium_collection(102);
    let db = build(&coll, &DbConfig::default());
    let scheme = ScoringScheme::blastn();

    for f in [0usize, 3] {
        let query = coll.query_for_family(f, 0.5, &MutationModel::standard(0.05));
        let qb = query.representative_bases();
        let truth = exhaustive_sw(db.store(), &qb, &scheme);
        let truth_top: Vec<u32> = truth.iter().take(5).map(|h| h.id).collect();

        // A generous candidate cutoff with full fine alignment should
        // reproduce the exhaustive top answers.
        let params = SearchParams::default()
            .with_candidates(100)
            .with_fine(FineMode::Full);
        let outcome = db.search(&query, &params).unwrap();
        let ours: Vec<u32> = outcome.results.iter().map(|r| r.record).collect();
        let relevant: HashSet<u32> = truth_top.iter().copied().collect();
        let recall = recall_at(&ours, &relevant, 10);
        assert!(recall >= 0.8, "family {f}: recall of SW top-5 was {recall}");

        // And the very best answer must agree (same record AND score).
        assert_eq!(ours[0], truth[0].id, "family {f}: top answer differs");
        assert_eq!(
            outcome.results[0].score, truth[0].score,
            "family {f}: top score differs"
        );
    }
}

#[test]
fn accuracy_degrades_gracefully_with_cutoff() {
    let coll = medium_collection(103);
    let db = build(&coll, &DbConfig::default());

    let query = coll.query_for_family(1, 0.6, &MutationModel::standard(0.05));
    let relevant: HashSet<u32> = coll.families[1].member_ids.iter().copied().collect();

    let mut previous_ap = -1.0;
    for candidates in [1usize, 5, 30, 200] {
        let params = SearchParams::default().with_candidates(candidates);
        let outcome = db.search(&query, &params).unwrap();
        let ranked: Vec<u32> = outcome.results.iter().map(|r| r.record).collect();
        let ap = average_precision(&ranked, &relevant);
        assert!(
            ap + 1e-9 >= previous_ap,
            "AP decreased from {previous_ap} to {ap} when cutoff grew to {candidates}"
        );
        previous_ap = ap;
    }
    assert!(
        previous_ap > 0.8,
        "AP at generous cutoff only {previous_ap}"
    );
}

#[test]
fn stopping_preserves_most_accuracy() {
    let coll = medium_collection(104);
    let unstopped = build(&coll, &DbConfig::default());
    let stopped = build(
        &coll,
        &DbConfig {
            index: IndexParams::new(8).with_stopping(StopPolicy::DfFraction(0.05)),
            ..DbConfig::default()
        },
    );

    let params = SearchParams::default();
    let mut recall_unstopped = 0.0;
    let mut recall_stopped = 0.0;
    for (f, family) in coll.families.iter().enumerate() {
        let query = coll.query_for_family(f, 0.6, &MutationModel::substitutions(0.04));
        let relevant: HashSet<u32> = family.member_ids.iter().copied().collect();
        let ranked: Vec<u32> = unstopped
            .search(&query, &params)
            .unwrap()
            .results
            .iter()
            .map(|r| r.record)
            .collect();
        recall_unstopped += recall_at(&ranked, &relevant, 10);
        let ranked: Vec<u32> = stopped
            .search(&query, &params)
            .unwrap()
            .results
            .iter()
            .map(|r| r.record)
            .collect();
        recall_stopped += recall_at(&ranked, &relevant, 10);
    }
    // Stopping may cost a little accuracy but must not collapse it.
    assert!(
        recall_stopped >= recall_unstopped * 0.8,
        "stopped recall {recall_stopped} vs unstopped {recall_unstopped}"
    );
}

#[test]
fn all_rankings_work_end_to_end() {
    let coll = medium_collection(105);
    let db = build(&coll, &DbConfig::default());
    let query = coll.query_for_family(2, 0.5, &MutationModel::identity());
    let relevant: HashSet<u32> = coll.families[2].member_ids.iter().copied().collect();

    for ranking in [
        RankingScheme::Count,
        RankingScheme::Proportional,
        RankingScheme::Frame { window: 16 },
    ] {
        let params = SearchParams::default()
            .with_ranking(ranking)
            .with_candidates(50);
        let outcome = db.search(&query, &params).unwrap();
        let ranked: Vec<u32> = outcome.results.iter().map(|r| r.record).collect();
        let recall = recall_at(&ranked, &relevant, 10);
        assert!(recall >= 0.75, "{ranking:?}: recall {recall}");
    }
}

#[test]
fn ascii_and_packed_stores_give_identical_results() {
    let coll = medium_collection(106);
    let packed = build(&coll, &DbConfig::default());
    let ascii = build(
        &coll,
        &DbConfig {
            storage: nucdb::StorageMode::Ascii,
            ..DbConfig::default()
        },
    );
    let params = SearchParams::default();
    for f in 0..coll.families.len() {
        let query = coll.query_for_family(f, 0.5, &MutationModel::standard(0.05));
        let a = packed.search(&query, &params).unwrap();
        let b = ascii.search(&query, &params).unwrap();
        let ra: Vec<(u32, i32)> = a.results.iter().map(|r| (r.record, r.score)).collect();
        let rb: Vec<(u32, i32)> = b.results.iter().map(|r| (r.record, r.score)).collect();
        assert_eq!(ra, rb, "family {f}");
    }
}

#[test]
fn wildcards_do_not_break_search() {
    // A collection with heavy wildcard contamination still indexes and
    // searches without error, and exact-fragment queries still hit.
    let coll = SyntheticCollection::generate(&CollectionSpec {
        seed: 107,
        wildcard_rate: 0.02,
        ..CollectionSpec::tiny(107)
    });
    let db = build(&coll, &DbConfig::default());
    let member = coll.families[0].member_ids[0];
    let range = coll.families[0].embedded_ranges[0].clone();
    let query = coll.records[member as usize].seq.subseq(range);
    let outcome = db.search(&query, &SearchParams::default()).unwrap();
    assert!(outcome.results.iter().any(|r| r.record == member));
}
