//! The sharded search layer under test: scatter-gather answers must be
//! **bit-identical** to a joint single-index build (ids, scores, order)
//! for any corpus, any shard count, every codec and both granularities —
//! and a set with one shard down must keep answering, with `coverage`
//! reporting the loss and the surviving shards' answers unchanged.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use nucdb::{
    build_sharded_root, Database, DbConfig, IndexVariant, LocalShard, SearchParams, Shard,
    ShardSet, ShardSetConfig, StoreVariant,
};
use nucdb_index::{
    shard_dir_name, FaultPlan, Granularity, IndexParams, ListCodec, OnDiskIndex, ShardManifest,
};
use nucdb_obs::MetricsRegistry;
use nucdb_seq::DnaSeq;
use proptest::prelude::*;

static DIR_NONCE: AtomicU64 = AtomicU64::new(0);

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "nucdb_sharding_{name}_{}_{}",
        std::process::id(),
        DIR_NONCE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn dna(len: usize, seed: u64) -> DnaSeq {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let ascii: Vec<u8> = (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            b"ACGT"[(state >> 33) as usize % 4]
        })
        .collect();
    DnaSeq::from_ascii(&ascii).unwrap()
}

fn corpus(n: usize, seed: u64) -> Vec<(String, DnaSeq)> {
    (0..n)
        .map(|i| {
            (
                format!("r{i}"),
                dna(40 + (i * 13) % 50, seed.wrapping_add(i as u64)),
            )
        })
        .collect()
}

/// Split `records` into `n` contiguous chunks exactly like
/// `build_sharded_root`: shard i gets records [i*len/n, (i+1)*len/n).
fn split(records: &[(String, DnaSeq)], n: usize) -> Vec<Vec<(String, DnaSeq)>> {
    (0..n)
        .map(|i| records[i * records.len() / n..(i + 1) * records.len() / n].to_vec())
        .collect()
}

fn sharded_set(records: &[(String, DnaSeq)], n: usize, config: &DbConfig) -> ShardSet {
    let dbs = split(records, n)
        .into_iter()
        .map(|chunk| Database::build(chunk, config))
        .collect();
    ShardSet::from_databases(dbs, ShardSetConfig::default(), &MetricsRegistry::disabled()).unwrap()
}

type Answer = Vec<(u32, String, i32, f64, u32)>;

fn joint_answers(db: &Database, queries: &[DnaSeq], params: &SearchParams) -> Vec<Answer> {
    queries
        .iter()
        .map(|q| {
            db.search(q, params)
                .unwrap()
                .results
                .iter()
                .map(|r| {
                    (
                        r.record,
                        r.id.clone(),
                        r.score,
                        r.coarse_score,
                        r.coarse_hits,
                    )
                })
                .collect()
        })
        .collect()
}

fn sharded_answers(set: &ShardSet, queries: &[DnaSeq], params: &SearchParams) -> Vec<Answer> {
    queries
        .iter()
        .map(|q| {
            let outcome = set.search(q, params).unwrap();
            assert!(outcome.coverage.is_full(), "unexpected degraded answer");
            outcome
                .results
                .iter()
                .map(|r| {
                    (
                        r.record,
                        r.id.clone(),
                        r.score,
                        r.coarse_score,
                        r.coarse_hits,
                    )
                })
                .collect()
        })
        .collect()
}

// ---------------------------------------------------------------------
// The identity contract, pinned by proptest: for ANY record stream, ANY
// shard count 1..=5, every codec × both granularities, both strands,
// scatter-gather answers are bit-identical to a joint build.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn any_shard_count_matches_the_joint_build(
        lens in prop::collection::vec(30usize..90, 6..24),
        num_shards in 1usize..=5,
        codec_pick in 0usize..3,
        offsets in any::<bool>(),
        both_strands in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let codec = [ListCodec::Paper, ListCodec::Block, ListCodec::VByte][codec_pick];
        let granularity = if offsets { Granularity::Offsets } else { Granularity::Records };
        let config = DbConfig {
            index: IndexParams::new(8).with_granularity(granularity),
            codec,
            ..DbConfig::default()
        };
        let records: Vec<(String, DnaSeq)> = lens
            .iter()
            .enumerate()
            .map(|(i, &len)| (format!("r{i}"), dna(len, seed.wrapping_add(i as u64))))
            .collect();
        let queries: Vec<DnaSeq> = records.iter().step_by(3).map(|(_, s)| s.clone()).collect();
        let params = SearchParams {
            ranking: if offsets {
                nucdb::RankingScheme::Frame { window: 16 }
            } else {
                nucdb::RankingScheme::Count
            },
            strand: if both_strands {
                nucdb::Strand::Both
            } else {
                nucdb::Strand::Forward
            },
            ..SearchParams::default()
        };
        let joint = Database::build(records.clone(), &config);
        let want = joint_answers(&joint, &queries, &params);

        let set = sharded_set(&records, num_shards, &config);
        prop_assert_eq!(&sharded_answers(&set, &queries, &params), &want);
    }
}

// ---------------------------------------------------------------------
// The on-disk path: `build_sharded_root` + `ShardSet::open_root` answer
// exactly like the joint build, and the SHARDS manifest accounts for
// every record.
// ---------------------------------------------------------------------

#[test]
fn disk_root_matches_the_joint_build() {
    let records = corpus(20, 11);
    let config = DbConfig::default();
    let dir = temp_dir("diskroot");
    let counts = build_sharded_root(&dir, records.clone(), 3, &config).unwrap();
    assert_eq!(counts.iter().map(|&c| c as usize).sum::<usize>(), 20);

    let manifest = ShardManifest::load(&dir).unwrap();
    assert_eq!(manifest.shards.len(), 3);
    assert_eq!(manifest.total_records(), 20);

    let registry = MetricsRegistry::new();
    let set = ShardSet::open_root(&dir, ShardSetConfig::default(), &registry).unwrap();
    assert_eq!(set.len(), 20);

    let joint = Database::build(records.clone(), &config);
    let queries: Vec<DnaSeq> = records.iter().step_by(4).map(|(_, s)| s.clone()).collect();
    let params = SearchParams::default();
    assert_eq!(
        sharded_answers(&set, &queries, &params),
        joint_answers(&joint, &queries, &params)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn max_accumulators_is_rejected() {
    let records = corpus(8, 5);
    let set = sharded_set(&records, 2, &DbConfig::default());
    let params = SearchParams {
        max_accumulators: Some(4),
        ..SearchParams::default()
    };
    let err = set.search(&records[0].1, &params).unwrap_err();
    assert!(
        err.to_string().contains("max_accumulators"),
        "unexpected error: {err}"
    );
}

// ---------------------------------------------------------------------
// Degraded mode: one shard down — at open (truncated files) or at query
// time (fault-injected preads) — must not take the set down. The
// surviving shards answer exactly as a set built from them alone,
// coverage reports the loss, and the per-shard error metric bumps.
// ---------------------------------------------------------------------

/// Exhaustive one-shard-down sweep: for every shard count and every
/// downed shard, the degraded answers match (by external id and score)
/// a joint build over the surviving records.
#[test]
fn one_shard_down_sweep_keeps_surviving_answers() {
    let records = corpus(24, 99);
    let config = DbConfig::default();
    let queries: Vec<DnaSeq> = records.iter().step_by(5).map(|(_, s)| s.clone()).collect();
    let params = SearchParams::default();

    for n in 2..=4usize {
        let dir = temp_dir(&format!("sweep{n}"));
        build_sharded_root(&dir, records.clone(), n, &config).unwrap();
        for down in 0..n {
            // Truncating the downed shard's index makes it dead at open.
            let root = temp_dir(&format!("sweep{n}_{down}"));
            copy_tree(&dir, &root);
            let victim = root.join(shard_dir_name(down)).join("index.nucidx");
            let bytes = std::fs::read(&victim).unwrap();
            std::fs::write(&victim, &bytes[..8]).unwrap();

            let registry = MetricsRegistry::new();
            let set = ShardSet::open_root(&root, ShardSetConfig::default(), &registry).unwrap();

            // The expected degraded answer: a joint build over every
            // record the surviving shards hold.
            let chunks = split(&records, n);
            let surviving: Vec<(String, DnaSeq)> = chunks
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != down)
                .flat_map(|(_, c)| c.clone())
                .collect();
            let joint = Database::build(surviving, &config);

            for query in &queries {
                let outcome = set.search(query, &params).unwrap();
                assert_eq!(
                    outcome.coverage,
                    nucdb::Coverage {
                        shards_ok: n - 1,
                        shards_total: n
                    },
                    "n={n} down={down}"
                );
                assert_eq!(outcome.failures.len(), 1);
                assert_eq!(outcome.failures[0].shard, shard_dir_name(down));
                // Global record ids differ between the two numberings,
                // but external ids and scores must match exactly, in
                // order.
                let got: Vec<(String, i32)> = outcome
                    .results
                    .iter()
                    .map(|r| (r.id.clone(), r.score))
                    .collect();
                let want: Vec<(String, i32)> = joint
                    .search(query, &params)
                    .unwrap()
                    .results
                    .iter()
                    .map(|r| (r.id.clone(), r.score))
                    .collect();
                assert_eq!(got, want, "n={n} down={down}");
            }
            let _ = std::fs::remove_dir_all(&root);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Query-time corruption (the PR 4 machinery, per shard): a shard whose
/// postings preads fail opens fine but fails queries that touch it; the
/// set answers degraded and `nucdb_shard_errors_total` bumps for
/// exactly that shard.
#[test]
fn query_time_shard_error_degrades_and_bumps_the_metric() {
    let records = corpus(18, 7);
    let config = DbConfig::default();
    let dir = temp_dir("qfault");
    build_sharded_root(&dir, records.clone(), 3, &config).unwrap();

    let registry = MetricsRegistry::new();
    let mut shards: Vec<Arc<dyn Shard>> = Vec::new();
    for i in 0..3usize {
        let shard_dir = dir.join(shard_dir_name(i));
        let idx = shard_dir.join("index.nucidx");
        let sto = shard_dir.join("store.nucsto");
        let index = if i == 1 {
            // Shard 1's postings reads all fail: pread-level truncation
            // to zero. The header parses from the pristine file, so the
            // shard opens and dies only when a query touches it.
            OnDiskIndex::open_faulty(&idx, FaultPlan::clean(1).with_truncation(0)).unwrap()
        } else {
            OnDiskIndex::open(&idx).unwrap()
        };
        let store = nucdb::OnDiskStore::open(&sto).unwrap();
        let db = Database::from_variants(StoreVariant::Disk(store), IndexVariant::Disk(index));
        shards.push(Arc::new(LocalShard::new(shard_dir_name(i), db)));
    }
    let set = ShardSet::assemble(shards, Vec::new(), ShardSetConfig::default(), &registry).unwrap();

    // A query that IS a record of the faulted shard: its own intervals
    // are in that shard's vocabulary, so coarse search must fetch there
    // and hit the fault deterministically.
    let shard1_query = records[7].1.clone(); // records 6..12 land on shard 1
    let outcome = set.search(&shard1_query, &SearchParams::default()).unwrap();
    assert_eq!(outcome.coverage.shards_ok, 2);
    assert_eq!(outcome.coverage.shards_total, 3);
    assert!(outcome.coverage.fraction() < 1.0);
    assert_eq!(outcome.failures.len(), 1);
    assert_eq!(outcome.failures[0].shard, "shard-001");

    let errors = registry
        .counter_with("nucdb_shard_errors_total", "", &[("shard", "shard-001")])
        .get();
    assert!(errors >= 1, "shard-001 error counter not bumped");
    for ok_shard in ["shard-000", "shard-002"] {
        let clean = registry
            .counter_with("nucdb_shard_errors_total", "", &[("shard", ok_shard)])
            .get();
        assert_eq!(clean, 0, "{ok_shard} wrongly charged an error");
    }

    // No result may come from the failed shard, and survivors' answers
    // match a joint build over their records.
    let surviving: Vec<(String, DnaSeq)> = split(&records, 3)
        .into_iter()
        .enumerate()
        .filter(|(i, _)| *i != 1)
        .flat_map(|(_, c)| c)
        .collect();
    let joint = Database::build(surviving, &config);
    let got: Vec<(String, i32)> = outcome
        .results
        .iter()
        .map(|r| (r.id.clone(), r.score))
        .collect();
    let want: Vec<(String, i32)> = joint
        .search(&shard1_query, &SearchParams::default())
        .unwrap()
        .results
        .iter()
        .map(|r| (r.id.clone(), r.score))
        .collect();
    assert_eq!(got, want);
    let _ = std::fs::remove_dir_all(&dir);
}

/// All shards down is the only total failure: the query errors instead
/// of returning an empty success.
#[test]
fn all_shards_down_is_an_error() {
    let records = corpus(10, 3);
    let dir = temp_dir("alldown");
    build_sharded_root(&dir, records, 2, &DbConfig::default()).unwrap();
    for i in 0..2 {
        let victim = dir.join(shard_dir_name(i)).join("index.nucidx");
        let bytes = std::fs::read(&victim).unwrap();
        std::fs::write(&victim, &bytes[..4]).unwrap();
    }
    let registry = MetricsRegistry::new();
    let set = ShardSet::open_root(&dir, ShardSetConfig::default(), &registry).unwrap();
    assert!(set.search(&dna(60, 1), &SearchParams::default()).is_err());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Hedging at the planner level: a delayed primary worker loses the
/// race to the undelayed hedge replica, answers stay bit-identical, and
/// the hedge counters tick.
#[test]
fn hedge_overtakes_a_delayed_shard_bit_identically() {
    let records = corpus(16, 21);
    let config = DbConfig::default();
    let queries: Vec<DnaSeq> = records.iter().step_by(4).map(|(_, s)| s.clone()).collect();
    let params = SearchParams::default();
    let joint = Database::build(records.clone(), &config);
    let want = joint_answers(&joint, &queries, &params);

    let registry = MetricsRegistry::new();
    let dbs = split(&records, 2)
        .into_iter()
        .map(|chunk| Database::build(chunk, &config))
        .collect();
    let set_config = ShardSetConfig {
        hedge_after: Some(std::time::Duration::from_millis(20)),
        ..ShardSetConfig::default()
    };
    let set = ShardSet::from_databases(dbs, set_config, &registry).unwrap();
    // Shard 0's primary sleeps 400ms per phase; the hedge fires at 20ms
    // and answers identically long before the primary wakes.
    set.inject_delay_ns(0, 400_000_000);

    assert_eq!(sharded_answers(&set, &queries, &params), want);

    let hedges = registry
        .counter_with("nucdb_shard_hedges_total", "", &[("shard", "shard-000")])
        .get();
    assert!(hedges >= 1, "no hedge was dispatched for the slow shard");
    let wins = registry
        .counter_with(
            "nucdb_shard_hedge_wins_total",
            "",
            &[("shard", "shard-000")],
        )
        .get();
    assert!(wins >= 1, "the hedge replica never won the race");
}

/// A shard past its per-phase deadline is dropped from the answer with
/// a timeout failure; the survivors still answer.
#[test]
fn deadline_expiry_degrades_instead_of_hanging() {
    let records = corpus(12, 33);
    let config = DbConfig::default();
    let registry = MetricsRegistry::new();
    let dbs = split(&records, 2)
        .into_iter()
        .map(|chunk| Database::build(chunk, &config))
        .collect();
    let set_config = ShardSetConfig {
        shard_deadline: std::time::Duration::from_millis(50),
        hedge_after: None, // no hedge: the delay must hit the deadline
    };
    let set = ShardSet::from_databases(dbs, set_config, &registry).unwrap();
    set.inject_delay_ns(1, 400_000_000);

    let outcome = set.search(&records[0].1, &SearchParams::default()).unwrap();
    assert_eq!(outcome.coverage.shards_ok, 1);
    assert_eq!(outcome.coverage.shards_total, 2);
    assert!(outcome.failures[0].error.contains("deadline"));
    let timeouts = registry
        .counter_with("nucdb_shard_timeouts_total", "", &[("shard", "shard-001")])
        .get();
    assert!(timeouts >= 1, "timeout counter not bumped");
}

fn copy_tree(from: &PathBuf, to: &PathBuf) {
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        let target = to.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            std::fs::create_dir_all(&target).unwrap();
            copy_tree(&entry.path(), &target);
        } else {
            std::fs::copy(entry.path(), &target).unwrap();
        }
    }
}
