//! Explain plans and index health: the observability layer's two
//! load-bearing contracts.
//!
//! 1. **Explain is passive.** Turning `SearchParams::explain` on must
//!    not change a single answer bit or cost counter, across every
//!    postings codec and granularity, in memory and on disk.
//! 2. **fsck finds what the durability suite breaks.** Every
//!    single-byte flip injected into a `NUCIDX03`, `NUCIDX04`, or
//!    `NUCSTO02` file must surface as an fsck finding naming the
//!    damaged section and an offset — and clean files must come back
//!    with exit code 0.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use nucdb::{
    fsck_index, fsck_store, Database, DbConfig, FsckReport, FsckSeverity, IndexStatReport,
    OnDiskStore, RankingScheme, SearchOutcome, SearchParams, SequenceStore, StorageMode,
};
use nucdb_index::{FaultPlan, Granularity, IndexParams, ListCodec, OnDiskIndex};
use nucdb_seq::random::{CollectionSpec, MutationModel, SyntheticCollection};
use nucdb_seq::DnaSeq;
use proptest::prelude::*;

static DIR_NONCE: AtomicU64 = AtomicU64::new(0);

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "nucdb_health_{name}_{}_{}",
        std::process::id(),
        DIR_NONCE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn build_db(
    seed: u64,
    codec: ListCodec,
    granularity: Granularity,
) -> (Database, SyntheticCollection) {
    let coll = SyntheticCollection::generate(&CollectionSpec::tiny(seed));
    let config = DbConfig {
        index: IndexParams::new(8).with_granularity(granularity),
        codec,
        storage: StorageMode::DirectCoding,
    };
    let db = Database::build(
        coll.records.iter().map(|r| (r.id.clone(), r.seq.clone())),
        &config,
    );
    (db, coll)
}

/// Everything about an outcome that must be bit-identical with explain
/// on and off: ranked answers and all non-timing cost counters.
fn fingerprint(outcome: &SearchOutcome) -> (Vec<(u32, String, i32, u64, u32)>, Vec<u64>) {
    let results = outcome
        .results
        .iter()
        .map(|r| {
            (
                r.record,
                r.id.clone(),
                r.score,
                r.coarse_score.to_bits(),
                r.coarse_hits,
            )
        })
        .collect();
    let s = &outcome.stats;
    let counters = vec![
        s.intervals_looked_up,
        s.lists_fetched,
        s.postings_decoded,
        s.postings_bytes_read,
        s.blocks_decoded,
        s.blocks_skipped,
        s.total_hits,
        s.candidates,
        s.fine_alignments,
    ];
    (results, counters)
}

fn assert_explain_passive(db: &Database, query: &DnaSeq) {
    assert_explain_passive_with(db, query, SearchParams::default());
}

fn assert_explain_passive_with(db: &Database, query: &DnaSeq, params: SearchParams) {
    let off = db.search(query, &params).unwrap();
    let on = db
        .search(
            query,
            &SearchParams {
                explain: true,
                ..params
            },
        )
        .unwrap();
    assert!(off.explain.is_none(), "explain off must not attach a plan");
    let plan = on.explain.as_ref().expect("explain on must attach a plan");
    assert!(
        !plan.strands.is_empty(),
        "a plan must describe at least one strand"
    );
    assert_eq!(fingerprint(&off), fingerprint(&on));
}

fn any_codec() -> impl Strategy<Value = ListCodec> {
    prop::sample::select(vec![
        ListCodec::Paper,
        ListCodec::Gamma,
        ListCodec::Delta,
        ListCodec::VByte,
        ListCodec::Fixed,
        ListCodec::Interp,
        ListCodec::Block,
    ])
}

fn any_granularity() -> impl Strategy<Value = Granularity> {
    prop::sample::select(vec![Granularity::Offsets, Granularity::Records])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Contract 1, memory variant: explain changes nothing, whatever the
    // codec and granularity.
    #[test]
    fn explain_is_passive_across_codecs_and_granularities(
        codec in any_codec(),
        granularity in any_granularity(),
        seed in 1u64..64,
        survivors in prop::sample::select(vec![0.4f64, 0.6, 0.9]),
    ) {
        let (db, coll) = build_db(seed, codec, granularity);
        let family = (seed as usize) % coll.families.len();
        let query = coll.query_for_family(family, survivors, &MutationModel::standard(0.05));
        // Frame ranking needs interval offsets; a record-granularity
        // index ranks by plain hit count instead.
        let params = match granularity {
            Granularity::Offsets => SearchParams::default(),
            Granularity::Records => SearchParams {
                ranking: RankingScheme::Count,
                ..SearchParams::default()
            },
        };
        assert_explain_passive_with(&db, &query, params);
    }
}

// Contract 1, disk variant: the plan's block-decode accounting rides on
// the real pread path, so the identity must also hold with the index
// and store both on disk — for the checksummed v3 tier and the
// block-structured v4 tier.
#[test]
fn explain_is_passive_on_disk() {
    for codec in [ListCodec::Paper, ListCodec::Block] {
        let dir = temp_dir("explain_disk");
        let (db, coll) = build_db(11, codec, Granularity::Offsets);
        let db = db
            .with_disk_index(&dir.join("idx.nucidx"))
            .unwrap()
            .with_disk_store(&dir.join("sto.nucsto"))
            .unwrap();
        for family in 0..coll.families.len().min(4) {
            let query = coll.query_for_family(family, 0.6, &MutationModel::standard(0.05));
            assert_explain_passive(&db, &query);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ---------------------------------------------------------------------
// Contract 2: fsck vs the durability suite's fault injection.
// ---------------------------------------------------------------------

/// A small persisted index + store pair in `dir`, sized so a per-byte
/// sweep stays fast.
fn persist_micro(dir: &PathBuf, codec: ListCodec) -> (PathBuf, PathBuf) {
    let records: Vec<(String, DnaSeq)> = [
        &b"ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT"[..],
        b"TTTTGGGGCCCCAAAATTTTGGGGCCCCAAAA",
        b"ACGTNNACGTRYACGTACGTACGTACGT",
        b"GATTACAGATTACAGATTACAGATTACAGATTACA",
        b"CCCCCCCCGGGGGGGGACGTACGTTTTTTTTT",
        b"ATATATATATATATATATATGCGCGCGCGC",
    ]
    .iter()
    .enumerate()
    .map(|(i, ascii)| (format!("m{i}"), DnaSeq::from_ascii(ascii).unwrap()))
    .collect();

    let mut builder = nucdb_index::IndexBuilder::new(IndexParams::new(8)).with_codec(codec);
    let mut store = SequenceStore::new(StorageMode::DirectCoding);
    for (id, seq) in &records {
        builder.add_record(&seq.representative_bases());
        store.add(id.clone(), seq);
    }
    let idx = dir.join("idx.nucidx");
    let sto = dir.join("sto.nucsto");
    nucdb_index::write_index(&builder.finish(), &idx).unwrap();
    store.write_to(&sto).unwrap();
    (idx, sto)
}

fn fsck_faulty(idx: &PathBuf, sto: &PathBuf, plan: FaultPlan) -> FsckReport {
    let index = OnDiskIndex::open_faulty(idx, plan.clone()).unwrap();
    let store = OnDiskStore::open_faulty(sto, plan).unwrap();
    let mut report = FsckReport::default();
    fsck_index(&index, &mut report);
    fsck_store(&store, &mut report);
    report
}

#[test]
fn clean_files_exit_zero_for_every_codec() {
    for codec in [ListCodec::Paper, ListCodec::Block] {
        let dir = temp_dir("fsck_clean");
        let (idx, sto) = persist_micro(&dir, codec);
        let report = fsck_faulty(&idx, &sto, FaultPlan::clean(1));
        assert!(
            report.is_clean(),
            "clean files flagged: {:?}",
            report.findings
        );
        assert_eq!(report.exit_code(), 0);
        assert!(report.lists_checked > 0 && report.records_checked > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Sweep every byte of a file: each flip must produce at least one fsck
/// finding that names a section, with severity matching where the flip
/// landed. This replays exactly the faults the durability suite
/// injects, through the fsck walk instead of the query path.
fn sweep_every_byte(
    idx: &PathBuf,
    sto: &PathBuf,
    target_index: bool,
    structural_end: u64,
    format: &str,
) {
    let target = if target_index { idx } else { sto };
    let file_len = std::fs::metadata(target).unwrap().len();
    for offset in 0..file_len {
        let plan = FaultPlan::clean(1).with_bit_flips(vec![(offset, 0xFF)]);
        let (index_plan, store_plan) = if target_index {
            (plan, FaultPlan::clean(1))
        } else {
            (FaultPlan::clean(1), plan)
        };
        let index = OnDiskIndex::open_faulty(idx, index_plan).unwrap();
        let store = OnDiskStore::open_faulty(sto, store_plan).unwrap();
        let mut report = FsckReport::default();
        fsck_index(&index, &mut report);
        fsck_store(&store, &mut report);
        assert!(
            !report.is_clean(),
            "{format}: flip at byte {offset} of {} went undetected",
            target.display()
        );
        let finding = &report.findings[0];
        assert!(
            !finding.section.is_empty(),
            "{format}: finding at byte {offset} has no section"
        );
        if offset < structural_end {
            assert_eq!(
                finding.severity,
                FsckSeverity::Structural,
                "{format}: flip at header/TOC byte {offset} not structural: {finding:?}"
            );
            assert_eq!(report.exit_code(), 2);
        } else {
            assert_eq!(report.exit_code(), 1, "{format}: payload flip at {offset}");
            assert!(
                report
                    .findings
                    .iter()
                    .any(|f| f.severity == FsckSeverity::Payload && f.offset.is_some()),
                "{format}: payload flip at byte {offset} produced no located payload \
                 finding: {:?}",
                report.findings
            );
        }
    }
}

#[test]
fn every_byte_flip_in_v3_index_is_found() {
    let dir = temp_dir("fsck_v3");
    let (idx, sto) = persist_micro(&dir, ListCodec::Paper);
    let blob_start = OnDiskIndex::open(&idx).unwrap().blob_start();
    sweep_every_byte(&idx, &sto, true, blob_start, "NUCIDX03");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_byte_flip_in_v4_index_is_found() {
    let dir = temp_dir("fsck_v4");
    let (idx, sto) = persist_micro(&dir, ListCodec::Block);
    let opened = OnDiskIndex::open(&idx).unwrap();
    assert_eq!(opened.format(), "NUCIDX04");
    let blob_start = opened.blob_start();
    sweep_every_byte(&idx, &sto, true, blob_start, "NUCIDX04");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_byte_flip_in_v2_store_is_found() {
    let dir = temp_dir("fsck_sto");
    let (idx, sto) = persist_micro(&dir, ListCodec::Paper);
    let store = OnDiskStore::open(&sto).unwrap();
    let payload_start = store.scrub_toc().unwrap();
    assert!(payload_start > 0);
    sweep_every_byte(&idx, &sto, false, payload_start, "NUCSTO02");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn findings_name_the_damaged_list_with_its_offset() {
    let dir = temp_dir("fsck_named");
    let (idx, sto) = persist_micro(&dir, ListCodec::Paper);
    let blob_start = OnDiskIndex::open(&idx).unwrap().blob_start();
    // Flip one byte a little into the postings blob: the finding must
    // name the "list" section and carry the damaged list's offset.
    let plan = FaultPlan::clean(1).with_bit_flips(vec![(blob_start + 5, 0x10)]);
    let report = fsck_faulty(&idx, &sto, plan);
    let finding = report
        .findings
        .iter()
        .find(|f| f.file == "index")
        .expect("no index finding");
    assert_eq!(finding.section, "list");
    assert_eq!(finding.severity, FsckSeverity::Payload);
    let offset = finding.offset.expect("list finding without offset");
    assert!(offset >= blob_start, "offset {offset} before blob start");
    // And the rendering carries all of it, human-readably.
    let text = report.render_text();
    assert!(text.contains("payload damage"), "render: {text}");
    assert!(text.contains("\"list\""), "render: {text}");
    let _ = std::fs::remove_dir_all(&dir);
}

// The stat report stays consistent with what fsck walks: same list and
// record universe, byte totals that add up.
#[test]
fn stat_and_fsck_agree_on_the_universe() {
    let dir = temp_dir("stat_agree");
    let (idx, sto) = persist_micro(&dir, ListCodec::Block);
    let index = OnDiskIndex::open(&idx).unwrap();
    let store = OnDiskStore::open(&sto).unwrap();
    let stat = IndexStatReport::from_disk(&index);
    let mut report = FsckReport::default();
    fsck_index(&index, &mut report);
    fsck_store(&store, &mut report);
    assert!(report.is_clean());
    assert_eq!(report.lists_checked, stat.distinct_intervals as u64);
    assert_eq!(report.records_checked, store.num_records() as u64);
    // fsck verified the header plus every list byte and every record
    // blob; the index part must equal the stat report's accounting.
    assert!(report.bytes_verified >= stat.header_bytes + stat.blob_bytes);
    let _ = std::fs::remove_dir_all(&dir);
}
