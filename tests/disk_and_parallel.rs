//! Integration: the on-disk index and the alternative build paths must be
//! behaviourally identical to the in-memory reference.

use std::path::PathBuf;

use nucdb::{
    CoarseScratch, Database, DbConfig, IndexVariant, RankingScheme, SearchParams, SequenceStore,
    StorageMode, Strand,
};
use nucdb_index::{build_chunked, build_parallel, IndexParams, ListCodec};
use nucdb_seq::random::{CollectionSpec, MutationModel, SyntheticCollection};

fn collection(seed: u64) -> SyntheticCollection {
    SyntheticCollection::generate(&CollectionSpec {
        seed,
        num_background: 80,
        num_families: 4,
        family_size: 3,
        ..CollectionSpec::default()
    })
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nucdb_it_{}_{}", name, std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn results_of(db: &Database, coll: &SyntheticCollection) -> Vec<Vec<(u32, i32)>> {
    let params = SearchParams::default();
    (0..coll.families.len())
        .map(|f| {
            let query = coll.query_for_family(f, 0.5, &MutationModel::standard(0.05));
            db.search(&query, &params)
                .unwrap()
                .results
                .iter()
                .map(|r| (r.record, r.score))
                .collect()
        })
        .collect()
}

#[test]
fn disk_index_gives_identical_results() {
    let coll = collection(201);
    let memory_db = Database::build(
        coll.records.iter().map(|r| (r.id.clone(), r.seq.clone())),
        &DbConfig::default(),
    );
    let reference = results_of(&memory_db, &coll);

    let dir = temp_dir("disk");
    let disk_db = memory_db.with_disk_index(&dir.join("idx.nucidx")).unwrap();
    let from_disk = results_of(&disk_db, &coll);
    assert_eq!(from_disk, reference);

    // The disk variant actually read postings.
    if let IndexVariant::Disk(disk) = disk_db.index() {
        assert!(disk.bytes_read() > 0);
        assert!(disk.lists_read() > 0);
    } else {
        panic!("expected a disk index");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn chunked_and_parallel_builds_search_identically() {
    let coll = collection(202);
    let records: Vec<Vec<nucdb_seq::Base>> = coll
        .records
        .iter()
        .map(|r| r.seq.representative_bases())
        .collect();
    let params = IndexParams::new(8);

    let reference_db = Database::build(
        coll.records.iter().map(|r| (r.id.clone(), r.seq.clone())),
        &DbConfig {
            index: params.clone(),
            ..DbConfig::default()
        },
    );
    let reference = results_of(&reference_db, &coll);

    let mut store = SequenceStore::new(StorageMode::DirectCoding);
    for record in &coll.records {
        store.add(record.id.clone(), &record.seq);
    }

    let dir = temp_dir("chunked");
    let chunked_index = build_chunked(
        params.clone(),
        ListCodec::Paper,
        records.iter().map(|r| r.as_slice()),
        13,
        &dir,
    )
    .unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    let chunked_db = Database::from_parts(store.clone(), IndexVariant::Memory(chunked_index));
    assert_eq!(results_of(&chunked_db, &coll), reference);

    let parallel_index = build_parallel(params, ListCodec::Paper, &records, 4);
    let parallel_db = Database::from_parts(store, IndexVariant::Memory(parallel_index));
    assert_eq!(results_of(&parallel_db, &coll), reference);
}

#[test]
fn all_codecs_search_identically() {
    let coll = collection(203);
    let reference = {
        let db = Database::build(
            coll.records.iter().map(|r| (r.id.clone(), r.seq.clone())),
            &DbConfig {
                codec: ListCodec::Paper,
                ..DbConfig::default()
            },
        );
        results_of(&db, &coll)
    };
    for codec in [
        ListCodec::Gamma,
        ListCodec::Delta,
        ListCodec::VByte,
        ListCodec::Fixed,
        ListCodec::Interp,
    ] {
        let db = Database::build(
            coll.records.iter().map(|r| (r.id.clone(), r.seq.clone())),
            &DbConfig {
                codec,
                ..DbConfig::default()
            },
        );
        assert_eq!(results_of(&db, &coll), reference, "codec {}", codec.name());
    }
}

#[test]
fn disk_round_trip_through_separate_open() {
    // Write with one database, reopen the file independently.
    let coll = collection(204);
    let db = Database::build(
        coll.records.iter().map(|r| (r.id.clone(), r.seq.clone())),
        &DbConfig::default(),
    );
    let reference = results_of(&db, &coll);

    let dir = temp_dir("reopen");
    let path = dir.join("standalone.nucidx");
    let IndexVariant::Memory(index) = db.index() else {
        panic!("memory expected")
    };
    nucdb_index::write_index(index, &path).unwrap();

    let reopened = nucdb_index::OnDiskIndex::open(&path).unwrap();
    let mut store = SequenceStore::new(StorageMode::DirectCoding);
    for record in &coll.records {
        store.add(record.id.clone(), &record.seq);
    }
    let disk_db = Database::from_parts(store, IndexVariant::Disk(reopened));
    assert_eq!(results_of(&disk_db, &coll), reference);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fully_on_disk_database_gives_identical_results() {
    // Index AND store on disk — the paper's complete operating point.
    let coll = collection(207);
    let memory_db = Database::build(
        coll.records.iter().map(|r| (r.id.clone(), r.seq.clone())),
        &DbConfig::default(),
    );
    let reference = results_of(&memory_db, &coll);

    let dir = temp_dir("fulldisk");
    let disk_db = memory_db
        .with_disk_index(&dir.join("idx.nucidx"))
        .unwrap()
        .with_disk_store(&dir.join("store.nucsto"))
        .unwrap();
    assert_eq!(results_of(&disk_db, &coll), reference);

    // Both layers actually performed reads.
    let nucdb::StoreVariant::Disk(store) = disk_db.store() else {
        panic!("expected a disk store")
    };
    assert!(store.bytes_read() > 0, "fine search read no store bytes");
    let IndexVariant::Disk(index) = disk_db.index() else {
        panic!("expected a disk index")
    };
    assert!(index.bytes_read() > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn parallel_batch_search_matches_sequential_on_disk_index() {
    // Concurrent queries against the on-disk index (lock-free positional
    // reads, per-worker scratch) must give exactly the sequential
    // results, in order.
    let coll = collection(206);
    let db = Database::build(
        coll.records.iter().map(|r| (r.id.clone(), r.seq.clone())),
        &DbConfig::default(),
    );
    let dir = temp_dir("parbatch");
    let db = db.with_disk_index(&dir.join("idx.nucidx")).unwrap();

    let queries: Vec<_> = (0..coll.families.len())
        .map(|f| coll.query_for_family(f, 0.5, &MutationModel::standard(0.05)))
        .collect();
    let params = SearchParams::default();

    let sequential = db.search_batch(&queries, &params).unwrap();
    for threads in [2usize, 4, 8] {
        let parallel = db
            .search_batch_parallel(&queries, &params, threads)
            .unwrap();
        assert_eq!(parallel.len(), sequential.len());
        for (seq_outcome, par_outcome) in sequential.iter().zip(&parallel) {
            let a: Vec<(u32, i32)> = seq_outcome
                .results
                .iter()
                .map(|r| (r.record, r.score))
                .collect();
            let b: Vec<(u32, i32)> = par_outcome
                .results
                .iter()
                .map(|r| (r.record, r.score))
                .collect();
            assert_eq!(a, b, "threads = {threads}");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reused_scratch_gives_identical_results() {
    // One CoarseScratch carried across many queries — varying ranking
    // scheme, strand, stride, and accumulator limit, against both the
    // in-memory and on-disk index — must reproduce the fresh-scratch
    // results exactly. This is the allocation-free contract: reuse never
    // leaks state between queries.
    let coll = collection(207);
    let db = Database::build(
        coll.records.iter().map(|r| (r.id.clone(), r.seq.clone())),
        &DbConfig::default(),
    );
    let dir = temp_dir("scratch");
    let disk_db = Database::build(
        coll.records.iter().map(|r| (r.id.clone(), r.seq.clone())),
        &DbConfig::default(),
    )
    .with_disk_index(&dir.join("idx.nucidx"))
    .unwrap();

    let param_sets = [
        SearchParams::default(),
        SearchParams::default().with_ranking(RankingScheme::Count),
        SearchParams::default().with_ranking(RankingScheme::Proportional),
        SearchParams::default().with_strand(Strand::Both),
        SearchParams {
            query_stride: 3,
            ..SearchParams::default()
        },
        SearchParams {
            max_accumulators: Some(10),
            ..SearchParams::default()
        },
    ];
    for database in [&db, &disk_db] {
        let mut scratch = CoarseScratch::new();
        for i in 0..12 {
            let f = i % coll.families.len();
            let params = &param_sets[i % param_sets.len()];
            let query = coll.query_for_family(f, 0.5, &MutationModel::standard(0.05));
            let fresh = database.search(&query, params).unwrap();
            let reused = database.search_with(&query, params, &mut scratch).unwrap();
            let a: Vec<(u32, i32)> = fresh.results.iter().map(|r| (r.record, r.score)).collect();
            let b: Vec<(u32, i32)> = reused.results.iter().map(|r| (r.record, r.score)).collect();
            assert_eq!(a, b, "family {f} params {params:?}");
            assert_eq!(fresh.stats.total_hits, reused.stats.total_hits);
            assert_eq!(
                fresh.stats.intervals_looked_up,
                reused.stats.intervals_looked_up
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn loaded_index_equals_original() {
    let coll = collection(205);
    let db = Database::build(
        coll.records.iter().map(|r| (r.id.clone(), r.seq.clone())),
        &DbConfig::default(),
    );
    let IndexVariant::Memory(index) = db.index() else {
        panic!()
    };

    let dir = temp_dir("load");
    let path = dir.join("idx.nucidx");
    nucdb_index::write_index(index, &path).unwrap();
    let loaded = nucdb_index::load_index(&path).unwrap();
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(loaded.num_records(), index.num_records());
    assert_eq!(loaded.decode_all().unwrap(), index.decode_all().unwrap());
}
