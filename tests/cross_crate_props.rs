//! Cross-crate property tests: invariants that tie the sequence, codec,
//! index, alignment, and engine layers together.

use nucdb::{coarse_rank, Database, DbConfig, SearchParams};
use nucdb_align::{banded_sw_score, sw_score, ScoringScheme};
use nucdb_index::{
    load_index, write_index, write_index_v2, CompressedIndex, Granularity, IndexBuilder,
    IndexParams, ListCodec, StopPolicy,
};
use nucdb_seq::{DnaSeq, PackedSeq};
use proptest::prelude::*;

/// Random DNA ASCII with occasional wildcards.
fn dna_ascii(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(prop::sample::select(b"ACGTACGTACGTACGTACGTN".to_vec()), len)
}

fn any_codec() -> impl Strategy<Value = ListCodec> {
    prop::sample::select(vec![
        ListCodec::Paper,
        ListCodec::Gamma,
        ListCodec::Delta,
        ListCodec::VByte,
        ListCodec::Fixed,
        ListCodec::Interp,
    ])
}

fn any_granularity() -> impl Strategy<Value = Granularity> {
    prop::sample::select(vec![Granularity::Offsets, Granularity::Records])
}

fn any_stopping() -> impl Strategy<Value = Option<StopPolicy>> {
    prop::sample::select(vec![
        None,
        Some(StopPolicy::DfFraction(0.25)),
        Some(StopPolicy::DfAbsolute(8)),
        Some(StopPolicy::TopK(2)),
    ])
}

/// A unique path per proptest case (cases run sequentially within one
/// test, but distinct property tests run on parallel threads).
fn unique_path(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NONCE: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "nucdb_props_{tag}_{}_{}",
        std::process::id(),
        NONCE.fetch_add(1, Ordering::Relaxed)
    ))
}

fn index_fields_equal(a: &CompressedIndex, b: &CompressedIndex) -> bool {
    a.params() == b.params()
        && a.codec() == b.codec()
        && a.record_lens() == b.record_lens()
        && a.vocab() == b.vocab()
        && a.blob() == b.blob()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pack_round_trips_any_sequence(ascii in dna_ascii(0..600)) {
        let seq = DnaSeq::from_ascii(&ascii).unwrap();
        let packed = PackedSeq::pack(&seq);
        prop_assert_eq!(packed.unpack(), seq.clone());
        let bytes = packed.to_bytes();
        prop_assert_eq!(PackedSeq::from_bytes(&bytes).unwrap().unpack(), seq);
    }

    #[test]
    fn index_contains_every_extracted_interval(
        records in prop::collection::vec(dna_ascii(10..120), 1..12),
        k in 4usize..10,
    ) {
        let params = IndexParams::new(k);
        let mut builder = IndexBuilder::new(params.clone());
        let bases: Vec<Vec<nucdb_seq::Base>> = records
            .iter()
            .map(|a| DnaSeq::from_ascii(a).unwrap().representative_bases())
            .collect();
        for b in &bases {
            builder.add_record(b);
        }
        let index = builder.finish();
        for (id, b) in bases.iter().enumerate() {
            for (offset, code) in params.extract(b) {
                let list = index.postings(code).unwrap().expect("interval indexed");
                let entry = list.entries.iter().find(|p| p.record == id as u32)
                    .expect("record present in its interval's list");
                prop_assert!(entry.offsets.contains(&offset));
            }
        }
        // And the index contains nothing that is not in some record:
        // total offsets equals total extracted intervals.
        let extracted: usize = bases.iter().map(|b| params.intervals_in(b.len())).sum();
        let stored: usize = index
            .decode_all()
            .unwrap()
            .iter()
            .map(|(_, l)| l.total_occurrences())
            .sum();
        prop_assert_eq!(extracted, stored);
    }

    #[test]
    fn banded_score_bounded_by_full(
        q in dna_ascii(5..80),
        t in dna_ascii(5..80),
        center in -20i64..20,
        half_width in 0usize..12,
    ) {
        let q = DnaSeq::from_ascii(&q).unwrap().representative_bases();
        let t = DnaSeq::from_ascii(&t).unwrap().representative_bases();
        let scheme = ScoringScheme::blastn();
        let banded = banded_sw_score(&q, &t, &scheme, center, half_width);
        let full = sw_score(&q, &t, &scheme);
        prop_assert!(banded <= full, "banded {banded} > full {full}");
        prop_assert!(banded >= 0);
        // A band covering everything equals the full score.
        let wide = banded_sw_score(&q, &t, &scheme, 0, q.len() + t.len());
        prop_assert_eq!(wide, full);
    }

    #[test]
    fn self_query_always_finds_self(ascii in dna_ascii(40..200)) {
        // Any record queried by its own full sequence must come back as
        // the (joint) top answer with the self-alignment score.
        let seq = DnaSeq::from_ascii(&ascii).unwrap();
        let others = [
            DnaSeq::from_ascii(&[b'A'; 60]).unwrap(),
            DnaSeq::from_ascii(&[b'G'; 80]).unwrap(),
        ];
        let db = Database::build(
            std::iter::once(("self".to_string(), seq.clone()))
                .chain(others.iter().enumerate().map(|(i, s)| (format!("o{i}"), s.clone()))),
            &DbConfig::default(),
        );
        let outcome = db.search(&seq, &SearchParams::default()).unwrap();
        prop_assert!(!outcome.results.is_empty());
        let top = &outcome.results[0];
        prop_assert_eq!(top.record, 0, "self record must rank first");
        let scheme = ScoringScheme::blastn();
        let self_bases = seq.representative_bases();
        prop_assert_eq!(top.score, sw_score(&self_bases, &self_bases, &scheme));
    }

    #[test]
    fn v3_files_round_trip_for_any_configuration(
        records in prop::collection::vec(dna_ascii(20..100), 1..8),
        k in 4usize..10,
        stride in 1usize..3,
        codec in any_codec(),
        granularity in any_granularity(),
        stopping in any_stopping(),
    ) {
        // Whatever the build configuration, writing the current (v3)
        // format and loading it back must reproduce the index exactly —
        // params (including stopping), vocabulary, and blob bytes. The
        // legacy v2 writer must load back identically too, so files
        // written by the previous release keep working.
        let mut params = IndexParams::new(k).with_stride(stride).with_granularity(granularity);
        if let Some(policy) = stopping {
            params = params.with_stopping(policy);
        }
        let mut builder = IndexBuilder::new(params).with_codec(codec);
        for r in &records {
            builder.add_record(&DnaSeq::from_ascii(r).unwrap().representative_bases());
        }
        let index = builder.finish();

        let v3 = unique_path("v3");
        write_index(&index, &v3).unwrap();
        let loaded_v3 = load_index(&v3);
        let _ = std::fs::remove_file(&v3);
        prop_assert!(index_fields_equal(&loaded_v3.unwrap(), &index));

        let v2 = unique_path("v2");
        write_index_v2(&index, &v2).unwrap();
        let loaded_v2 = load_index(&v2);
        let _ = std::fs::remove_file(&v2);
        prop_assert!(index_fields_equal(&loaded_v2.unwrap(), &index));
    }

    #[test]
    fn store_files_round_trip_and_reject_flips(
        records in prop::collection::vec(dna_ascii(1..80), 1..8),
        ascii_mode in any::<bool>(),
        flip_pos in any::<u16>(),
        flip_mask in any::<u8>(),
    ) {
        use nucdb::{SequenceStore, StorageMode};
        let mode = if ascii_mode { StorageMode::Ascii } else { StorageMode::DirectCoding };
        let mut store = SequenceStore::new(mode);
        for (i, r) in records.iter().enumerate() {
            store.add(format!("r{i}"), &DnaSeq::from_ascii(r).unwrap());
        }
        let path = unique_path("sto");
        store.write_to(&path).unwrap();

        let loaded = SequenceStore::read_from(&path).unwrap();
        prop_assert_eq!(loaded.mode(), mode);
        prop_assert_eq!(loaded.len(), store.len());
        for r in 0..store.len() as u32 {
            prop_assert_eq!(loaded.id(r), store.id(r));
            prop_assert_eq!(loaded.sequence(r).unwrap(), store.sequence(r).unwrap());
        }

        // Any single-byte flip anywhere in the file either fails the
        // load with a typed error or leaves every record bit-identical
        // (the latter only when the flip is a no-op is impossible here:
        // xor with a nonzero mask always changes the byte, so a
        // successful load would mean undetected corruption).
        let mut bytes = std::fs::read(&path).unwrap();
        let offset = flip_pos as usize % bytes.len();
        let mask = flip_mask | 1; // ensure nonzero
        bytes[offset] ^= mask;
        std::fs::write(&path, &bytes).unwrap();
        let mutated = SequenceStore::read_from(&path);
        let _ = std::fs::remove_file(&path);
        if let Ok(mutated) = mutated {
            for r in 0..store.len() as u32 {
                prop_assert_eq!(mutated.sequence(r).unwrap(), store.sequence(r).unwrap());
                prop_assert_eq!(mutated.id(r), store.id(r));
            }
        }
    }

    #[test]
    fn coarse_candidates_never_exceed_cutoff(
        records in prop::collection::vec(dna_ascii(30..100), 1..10),
        cutoff in 1usize..8,
    ) {
        let mut builder = IndexBuilder::new(IndexParams::new(6));
        for r in &records {
            builder.add_record(&DnaSeq::from_ascii(r).unwrap().representative_bases());
        }
        let index = builder.finish();
        let query = DnaSeq::from_ascii(&records[0]).unwrap().representative_bases();
        let params = SearchParams {
            max_candidates: cutoff,
            min_coarse_hits: 1,
            ..SearchParams::default()
        };
        let outcome = coarse_rank(&index, &query, &params).unwrap();
        prop_assert!(outcome.candidates.len() <= cutoff);
        // Scores are sorted descending.
        for pair in outcome.candidates.windows(2) {
            prop_assert!(pair[0].score >= pair[1].score);
        }
        // Every candidate's diagonal is within the possible range.
        let num_records = index.num_records();
        for c in &outcome.candidates {
            prop_assert!(c.record < num_records);
            let len = index.record_lens()[c.record as usize] as i64;
            prop_assert!(c.best_diagonal > -(query.len() as i64));
            prop_assert!(c.best_diagonal < len);
        }
    }
}
