//! The live-ingestion subsystem under test: manifest durability (every
//! single-byte flip and every truncation of `MANIFEST` must fail cleanly
//! or load identically — never panic, never load silently wrong),
//! crash recovery between flush and manifest swap, orphan cleanup, and
//! the core search contract — a multi-segment live database answers
//! **bit-identically** to a single joint-build index over the same
//! records, at any flush split, across codecs and both granularities,
//! before and after compaction, and across a reopen.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use nucdb::{Database, DbConfig, LiveDatabase, LiveOptions, SearchParams};
use nucdb_index::{Granularity, IndexParams, ListCodec, Manifest, MANIFEST_FILE};
use nucdb_seq::random::{CollectionSpec, MutationModel, SyntheticCollection};
use nucdb_seq::DnaSeq;
use proptest::prelude::*;

static DIR_NONCE: AtomicU64 = AtomicU64::new(0);

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "nucdb_segments_{name}_{}_{}",
        std::process::id(),
        DIR_NONCE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn collection(seed: u64) -> SyntheticCollection {
    SyntheticCollection::generate(&CollectionSpec::tiny(seed))
}

fn records_of(coll: &SyntheticCollection) -> Vec<(String, DnaSeq)> {
    coll.records
        .iter()
        .map(|r| (r.id.clone(), r.seq.clone()))
        .collect()
}

/// Build a live directory holding two real segments plus memtable leftovers.
fn two_segment_live(name: &str) -> (PathBuf, SyntheticCollection) {
    let coll = collection(4242);
    let dir = temp_dir(name);
    let live = LiveDatabase::create(&dir, &DbConfig::default(), LiveOptions::default()).unwrap();
    let records = records_of(&coll);
    let half = records.len() / 2;
    live.insert_batch(records[..half].to_vec()).unwrap();
    live.flush().unwrap();
    live.insert_batch(records[half..].to_vec()).unwrap();
    live.flush().unwrap();
    (dir, coll)
}

// ---------------------------------------------------------------------
// Manifest durability: exhaustive single-byte-flip and truncation
// sweeps. The manifest is small, so the sweeps are cheap.
// ---------------------------------------------------------------------

#[test]
fn manifest_survives_every_single_byte_flip() {
    let (dir, _) = two_segment_live("manflip");
    let path = dir.join(MANIFEST_FILE);
    let pristine_bytes = std::fs::read(&path).unwrap();
    let pristine = Manifest::load(&dir).unwrap();
    assert_eq!(pristine.segments.len(), 2);

    for offset in 0..pristine_bytes.len() {
        let mut mutated = pristine_bytes.clone();
        mutated[offset] ^= 0xFF;
        std::fs::write(&path, &mutated).unwrap();
        match catch_unwind(AssertUnwindSafe(|| Manifest::load(&dir))) {
            Err(_) => panic!("Manifest::load panicked with byte {offset} flipped"),
            Ok(Err(_)) => {} // clean typed error: acceptable
            Ok(Ok(loaded)) => assert_eq!(
                loaded, pristine,
                "byte {offset} flip loaded successfully but changed the manifest"
            ),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn manifest_survives_every_truncation() {
    let (dir, _) = two_segment_live("mantrunc");
    let path = dir.join(MANIFEST_FILE);
    let pristine = std::fs::read(&path).unwrap();

    for cut in 0..pristine.len() {
        std::fs::write(&path, &pristine[..cut]).unwrap();
        match catch_unwind(AssertUnwindSafe(|| Manifest::load(&dir))) {
            Err(_) => panic!("Manifest::load panicked on truncation at {cut}"),
            Ok(result) => assert!(
                result.is_err(),
                "truncation at {cut} of {} loaded successfully",
                pristine.len()
            ),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Crash recovery: a crash after segment files land but before the new
// manifest is swapped in must leave a directory that opens on the OLD
// manifest, with the unreferenced files cleaned up.
// ---------------------------------------------------------------------

#[test]
fn crash_between_flush_and_manifest_swap_recovers_on_the_old_manifest() {
    let coll = collection(77);
    let dir = temp_dir("crash");
    let records = records_of(&coll);
    let half = records.len() / 2;

    let live = LiveDatabase::create(&dir, &DbConfig::default(), LiveOptions::default()).unwrap();
    live.insert_batch(records[..half].to_vec()).unwrap();
    live.flush().unwrap();
    let manifest_before = std::fs::read(dir.join(MANIFEST_FILE)).unwrap();

    // Second flush writes seg files AND the new manifest; rolling the
    // manifest back reproduces the exact on-disk state of a crash after
    // the segment files were written but before the manifest swap.
    live.insert_batch(records[half..].to_vec()).unwrap();
    live.flush().unwrap();
    drop(live);
    std::fs::write(dir.join(MANIFEST_FILE), &manifest_before).unwrap();
    // A stale atomic-write temp from the "crashed" swap rides along.
    std::fs::write(dir.join(format!("{MANIFEST_FILE}.tmp.1.2")), b"partial").unwrap();

    let reopened = LiveDatabase::open(&dir, LiveOptions::default()).unwrap();
    let status = reopened.status();
    assert_eq!(status.segments.len(), 1, "old manifest names one segment");
    assert_eq!(
        reopened.snapshot().len(),
        half,
        "only flushed-and-committed records remain"
    );
    assert!(
        status.orphans_removed >= 3,
        "orphaned seg pair + stale temp must be removed, got {}",
        status.orphans_removed
    );
    let leftovers: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|name| name.contains(".tmp.") || name.contains("seg-000001"))
        .collect();
    assert!(
        leftovers.is_empty(),
        "stray files after recovery: {leftovers:?}"
    );

    // The recovered database accepts new inserts and flushes cleanly.
    reopened.insert_batch(records[half..].to_vec()).unwrap();
    reopened.flush().unwrap();
    assert_eq!(reopened.snapshot().len(), records.len());

    // And it answers like a joint rebuild over the same records.
    let joint = Database::build(records, &DbConfig::default());
    let query = coll.query_for_family(0, 0.7, &MutationModel::substitutions(0.05));
    let got: Vec<(u32, i32)> = reopened
        .snapshot()
        .search(&query, &SearchParams::default())
        .unwrap()
        .results
        .iter()
        .map(|r| (r.record, r.score))
        .collect();
    let want: Vec<(u32, i32)> = joint
        .search(&query, &SearchParams::default())
        .unwrap()
        .results
        .iter()
        .map(|r| (r.record, r.score))
        .collect();
    assert_eq!(got, want);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn readonly_open_answers_like_the_live_view() {
    let (dir, coll) = two_segment_live("readonly");
    let live = LiveDatabase::open(&dir, LiveOptions::default()).unwrap();
    let readonly = LiveDatabase::open_readonly(&dir, &nucdb_obs::MetricsRegistry::new()).unwrap();
    assert_eq!(readonly.len(), live.snapshot().len());
    let params = SearchParams::default();
    for family in 0..coll.families.len() {
        let query = coll.query_for_family(family, 0.7, &MutationModel::substitutions(0.05));
        let got: Vec<(u32, i32)> = readonly
            .search(&query, &params)
            .unwrap()
            .results
            .iter()
            .map(|r| (r.record, r.score))
            .collect();
        let want: Vec<(u32, i32)> = live
            .snapshot()
            .search(&query, &params)
            .unwrap()
            .results
            .iter()
            .map(|r| (r.record, r.score))
            .collect();
        assert_eq!(got, want, "family {family} diverged in the read-only view");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_segment_file_fails_to_open_cleanly() {
    let (dir, _) = two_segment_live("missingseg");
    std::fs::remove_file(dir.join("seg-000001.nucidx")).unwrap();
    match catch_unwind(AssertUnwindSafe(|| {
        LiveDatabase::open(&dir, LiveOptions::default())
    })) {
        Err(_) => panic!("open panicked on a missing segment file"),
        Ok(result) => assert!(result.is_err(), "open succeeded without seg-000001.nucidx"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// The identity contract, pinned by proptest: for ANY record stream, ANY
// flush split, ANY codec and granularity, a live database answers every
// query bit-identically to one joint-built index — from the memtable,
// from multiple segments, after compaction, and across a reopen.
// ---------------------------------------------------------------------

fn dna(len: usize, seed: u64) -> DnaSeq {
    // Cheap deterministic bases; variety comes from len + seed.
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let ascii: Vec<u8> = (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            b"ACGT"[(state >> 33) as usize % 4]
        })
        .collect();
    DnaSeq::from_ascii(&ascii).unwrap()
}

fn answers(
    db: &Database,
    queries: &[DnaSeq],
    params: &SearchParams,
) -> Vec<Vec<(u32, String, i32, f64)>> {
    queries
        .iter()
        .map(|q| {
            db.search(q, params)
                .unwrap()
                .results
                .iter()
                .map(|r| (r.record, r.id.clone(), r.score, r.coarse_score))
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn any_flush_split_matches_the_joint_build(
        lens in prop::collection::vec(30usize..90, 6..24),
        flush_mask in prop::collection::vec(any::<bool>(), 24),
        memtable_max in 4usize..12,
        codec_pick in 0usize..3,
        offsets in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let codec = [ListCodec::Paper, ListCodec::Block, ListCodec::VByte][codec_pick];
        let granularity = if offsets { Granularity::Offsets } else { Granularity::Records };
        let config = DbConfig {
            index: IndexParams::new(8).with_granularity(granularity),
            codec,
            ..DbConfig::default()
        };
        let records: Vec<(String, DnaSeq)> = lens
            .iter()
            .enumerate()
            .map(|(i, &len)| (format!("r{i}"), dna(len, seed.wrapping_add(i as u64))))
            .collect();
        // Queries: a few of the records themselves — guaranteed strong
        // local alignments, so result lists are non-trivial.
        let queries: Vec<DnaSeq> = records.iter().step_by(3).map(|(_, s)| s.clone()).collect();
        // Frame ranking needs offset granularity; count works everywhere.
        let params = SearchParams {
            ranking: if offsets {
                nucdb::RankingScheme::Frame { window: 16 }
            } else {
                nucdb::RankingScheme::Count
            },
            ..SearchParams::default()
        };
        let joint = Database::build(records.clone(), &config);
        let want = answers(&joint, &queries, &params);

        let dir = temp_dir("prop");
        let opts = LiveOptions { memtable_max_records: memtable_max, ..LiveOptions::default() };
        let live = LiveDatabase::create(&dir, &config, opts.clone()).unwrap();
        for (i, record) in records.iter().enumerate() {
            live.insert(record.0.clone(), &record.1).unwrap();
            if flush_mask[i % flush_mask.len()] {
                live.flush().unwrap();
            }
        }
        // Memtable + segments, wherever the flush split landed:
        prop_assert_eq!(&answers(&live.snapshot(), &queries, &params), &want);

        // After compaction to quiescence:
        live.flush().unwrap();
        live.compact_all().unwrap();
        prop_assert_eq!(&answers(&live.snapshot(), &queries, &params), &want);

        // And across a reopen from the manifest:
        drop(live);
        let reopened = LiveDatabase::open(&dir, opts).unwrap();
        prop_assert_eq!(&answers(&reopened.snapshot(), &queries, &params), &want);

        let _ = std::fs::remove_dir_all(&dir);
    }
}
