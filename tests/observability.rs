//! Integration: observability must be transparent. Search results are
//! bit-identical whether metrics are disabled, a registry is bound, or a
//! sampled trace sink is attached — and the recorded numbers agree with
//! what the engine reports through [`QueryStats`](nucdb::QueryStats).

use std::path::PathBuf;

use nucdb::{CoarseScratch, Database, DbConfig, IndexVariant, SearchParams, Strand};
use nucdb_obs::{
    json, CaptureReason, Forensics, ForensicsConfig, MetricsRegistry, TraceSink, ValueSnapshot,
};
use nucdb_seq::random::{CollectionSpec, MutationModel, SyntheticCollection};

fn collection(seed: u64) -> SyntheticCollection {
    SyntheticCollection::generate(&CollectionSpec {
        seed,
        num_background: 80,
        num_families: 4,
        family_size: 3,
        ..CollectionSpec::default()
    })
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nucdb_obs_{}_{}", name, std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Every observable detail of every answer, for bit-identity checks.
fn results_of(db: &Database, coll: &SyntheticCollection) -> Vec<Vec<(u32, i32, u32, Strand)>> {
    let params = SearchParams {
        strand: Strand::Both,
        ..SearchParams::default()
    };
    (0..coll.families.len())
        .map(|f| {
            let query = coll.query_for_family(f, 0.5, &MutationModel::standard(0.05));
            db.search(&query, &params)
                .unwrap()
                .results
                .iter()
                .map(|r| (r.record, r.score, r.coarse_hits, r.strand))
                .collect()
        })
        .collect()
}

#[test]
fn metrics_and_tracing_do_not_change_results() {
    let coll = collection(301);
    let build = || {
        Database::build(
            coll.records.iter().map(|r| (r.id.clone(), r.seq.clone())),
            &DbConfig::default(),
        )
    };

    // Baseline: observability fully disabled.
    let reference = results_of(&build(), &coll);

    // Metrics registry bound.
    let registry = MetricsRegistry::new();
    let mut with_metrics = build();
    with_metrics.bind_metrics(&registry);
    assert_eq!(results_of(&with_metrics, &coll), reference);

    // Sampled trace attached on top (every 2nd query).
    let dir = temp_dir("trace");
    let trace_path = dir.join("trace.jsonl");
    let mut with_trace = build();
    with_trace.bind_metrics(&MetricsRegistry::new());
    with_trace.set_trace(TraceSink::to_file(&trace_path, 2).unwrap());
    assert_eq!(results_of(&with_trace, &coll), reference);
    with_trace.metrics().trace.flush();

    // Trace alone, no registry.
    let mut trace_only = build();
    trace_only.set_trace(TraceSink::to_file(&dir.join("solo.jsonl"), 1).unwrap());
    assert_eq!(results_of(&trace_only, &coll), reference);

    // The registry actually observed the workload: one query per family
    // and a latency sample for each.
    let snapshot = registry.snapshot();
    let queries = coll.families.len() as u64;
    assert_eq!(
        snapshot.get("nucdb_queries_total"),
        Some(&ValueSnapshot::Counter(queries))
    );
    match snapshot.get("nucdb_query_latency_ns") {
        Some(ValueSnapshot::Histogram(hist)) => {
            assert_eq!(hist.count(), queries);
            assert!(hist.max > 0);
        }
        other => panic!("expected a latency histogram, got {other:?}"),
    }
    // Both-strand queries time the merge stage too.
    match snapshot.get_with("nucdb_stage_latency_ns", &[("stage", "strand_merge")]) {
        Some(ValueSnapshot::Histogram(hist)) => assert_eq!(hist.count(), queries),
        other => panic!("expected a strand_merge histogram, got {other:?}"),
    }

    // Every 2nd of 4 queries sampled: 2 valid JSONL events with the core
    // timing fields present.
    let traced = std::fs::read_to_string(&trace_path).unwrap();
    let lines: Vec<&str> = traced.lines().collect();
    assert_eq!(lines.len(), coll.families.len().div_ceil(2));
    for line in lines {
        let event = json::parse(line).unwrap();
        assert_eq!(event.get("event").and_then(|v| v.as_str()), Some("query"));
        for field in ["latency_ns", "coarse_ns", "fine_ns", "results"] {
            assert!(
                event.get(field).and_then(|v| v.as_f64()).is_some(),
                "missing {field}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn forensics_is_transparent_and_flight_entries_carry_span_trees() {
    let coll = collection(303);
    let build = || {
        Database::build(
            coll.records.iter().map(|r| (r.id.clone(), r.seq.clone())),
            &DbConfig::default(),
        )
    };
    let reference = results_of(&build(), &coll);

    // Flight recorder alone: bit-identical results.
    let mut with_flight = build();
    with_flight.set_forensics(Forensics::new(ForensicsConfig {
        recent_capacity: 16,
        ..ForensicsConfig::default()
    }));
    assert_eq!(results_of(&with_flight, &coll), reference);

    // Tail sampling on top of a strided trace sink: still bit-identical.
    let dir = temp_dir("forensics");
    let mut tail_sampled = build();
    tail_sampled.set_trace(TraceSink::to_file(&dir.join("stride.jsonl"), 2).unwrap());
    tail_sampled.set_forensics(Forensics::new(ForensicsConfig {
        recent_capacity: 16,
        slow_capacity: 4,
        slow_threshold_ns: 1, // everything is "slow": max capture pressure
        slow_log: TraceSink::to_file(&dir.join("slow.jsonl"), 1).unwrap(),
        ..ForensicsConfig::default()
    }));
    assert_eq!(results_of(&tail_sampled, &coll), reference);
    tail_sampled.forensics().flush();

    // Every query landed in the recent ring with a full span tree:
    // query at the root, the pipeline stages underneath, and the
    // accumulate stage carrying its work counters.
    let entries = with_flight.forensics().recent();
    assert_eq!(entries.len(), coll.families.len());
    for entry in &entries {
        let root = &entry.trace.root;
        assert_eq!(root.name, "query");
        assert!(entry.trace.total_ns > 0);
        let mut names = Vec::new();
        let mut counter_keys = Vec::new();
        root.walk(&mut |node| {
            names.push(node.name.as_str());
            counter_keys.extend(node.counters.iter().map(|(k, _)| k.as_str()));
        });
        for stage in ["coarse", "extract", "accumulate", "rank", "fine"] {
            assert!(names.contains(&stage), "span tree missing {stage}");
        }
        // Both-strand query: the merge stage must be present too.
        assert!(names.contains(&"strand_merge"));
        assert!(counter_keys.contains(&"postings_bytes_read"));
        assert!(counter_keys.contains(&"ids_decoded"));
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn slow_queries_are_always_captured_even_when_the_stride_skips_them() {
    let coll = collection(304);
    let mut db = Database::build(
        coll.records.iter().map(|r| (r.id.clone(), r.seq.clone())),
        &DbConfig::default(),
    );
    let dir = temp_dir("slow_capture");

    // The stride sink samples query 0 and then nothing until query
    // 1000 — so the second query below is deterministically skipped by
    // the 1-in-K sampler. The injected 2 ms delay pushes every query
    // past the 1 ms tail threshold, so the flight recorder must capture
    // it anyway.
    db.set_trace(TraceSink::to_file(&dir.join("stride.jsonl"), 1000).unwrap());
    db.set_forensics(Forensics::new(ForensicsConfig {
        recent_capacity: 8,
        slow_capacity: 4,
        slow_threshold_ns: 1_000_000,
        inject_delay_ns: 2_000_000,
        slow_log: TraceSink::to_file(&dir.join("slow.jsonl"), 1).unwrap(),
    }));

    let params = SearchParams::default();
    let query = coll.query_for_family(0, 0.5, &MutationModel::standard(0.05));
    let mut scratch = CoarseScratch::new();
    db.search_with_id(&query, &params, &mut scratch, Some("warm"))
        .unwrap();
    db.search_with_id(&query, &params, &mut scratch, Some("slow-q"))
        .unwrap();
    db.metrics().trace.flush();
    db.forensics().flush();

    // The stride sink saw only the first query.
    let strided = std::fs::read_to_string(dir.join("stride.jsonl")).unwrap();
    assert!(!strided.contains("slow-q"), "stride should skip query 1");

    // The slow ring holds the skipped query, tagged slow, under the id
    // the caller supplied.
    let slow = db.forensics().slow();
    let captured = slow
        .iter()
        .find(|e| e.trace.request_id == "slow-q")
        .expect("slow query must be tail-sampled");
    assert!(matches!(captured.reason, CaptureReason::Slow));
    assert!(captured.trace.total_ns >= 1_000_000);

    // And the slow-query JSONL log got a parseable line for it.
    let logged = std::fs::read_to_string(dir.join("slow.jsonl")).unwrap();
    let line = logged
        .lines()
        .find(|l| l.contains("slow-q"))
        .expect("slow log line");
    let value = json::parse(line).unwrap();
    assert_eq!(
        value.get("request_id").and_then(|v| v.as_str()),
        Some("slow-q")
    );
    assert_eq!(value.get("reason").and_then(|v| v.as_str()), Some("slow"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn disk_database_metrics_agree_with_io_accessors() {
    let coll = collection(302);
    let db = Database::build(
        coll.records.iter().map(|r| (r.id.clone(), r.seq.clone())),
        &DbConfig::default(),
    );
    let reference = results_of(&db, &coll);

    let dir = temp_dir("disk");
    let mut disk_db = db.with_disk_index(&dir.join("idx.nucidx")).unwrap();

    // Some I/O happens before binding: the carried-over counts must land
    // in the registry, and the legacy accessors must keep agreeing with
    // the registered counters afterwards.
    let query = coll.query_for_family(0, 0.5, &MutationModel::standard(0.05));
    disk_db.search(&query, &SearchParams::default()).unwrap();
    let (pre_bytes, pre_lists) = match disk_db.index() {
        IndexVariant::Disk(disk) => (disk.bytes_read(), disk.lists_read()),
        _ => panic!("expected a disk index"),
    };
    assert!(pre_bytes > 0 && pre_lists > 0);

    let registry = MetricsRegistry::new();
    disk_db.bind_metrics(&registry);
    assert_eq!(results_of(&disk_db, &coll), reference);

    let IndexVariant::Disk(disk) = disk_db.index() else {
        panic!("expected a disk index")
    };
    assert!(disk.bytes_read() > pre_bytes);
    let snapshot = registry.snapshot();
    assert_eq!(
        snapshot.get("nucdb_index_bytes_read_total"),
        Some(&ValueSnapshot::Counter(disk.bytes_read()))
    );
    assert_eq!(
        snapshot.get("nucdb_index_lists_read_total"),
        Some(&ValueSnapshot::Counter(disk.lists_read()))
    );

    // Resetting through the legacy accessor clears the registered counter.
    disk.reset_io_counters();
    assert_eq!(
        registry.snapshot().get("nucdb_index_bytes_read_total"),
        Some(&ValueSnapshot::Counter(0))
    );
    let _ = std::fs::remove_dir_all(&dir);
}
