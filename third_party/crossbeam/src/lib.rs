//! Minimal, API-compatible stand-in for the `crossbeam` crate.
//!
//! The workspace only uses `crossbeam::thread::scope` (written before
//! `std::thread::scope` was assumed available); this shim forwards to
//! the std implementation while keeping crossbeam's call shape — the
//! spawn closure receives a `&Scope` argument and `scope` returns a
//! `Result`. A thread panic propagates as a panic out of `scope`
//! (std semantics) rather than an `Err`; no caller relies on the
//! difference.

/// Scoped threads, crossbeam-style.
pub mod thread {
    use std::any::Any;

    /// A handle for spawning scoped threads (wraps [`std::thread::Scope`]).
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread and return its result.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. As in crossbeam, the closure
        /// receives the scope so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Run `f` with a scope; all spawned threads are joined before this
    /// returns. Always `Ok` — a panicking thread re-panics here.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_share_borrows_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let mut totals = Vec::new();
        crate::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            for h in handles {
                totals.push(h.join().unwrap());
            }
        })
        .unwrap();
        assert_eq!(totals.iter().sum::<u64>(), 10);
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let result = crate::thread::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 21u32).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(result, 42);
    }
}
