//! Minimal, API-compatible stand-in for the `criterion` crate.
//!
//! Supports exactly the workspace's bench usage: `criterion_group!` /
//! `criterion_main!`, `Criterion::{bench_function, benchmark_group}`,
//! groups with `throughput` / `sample_size` / `bench_function` /
//! `bench_with_input` / `finish`, `BenchmarkId::from_parameter`, and
//! `Bencher::iter`. Instead of criterion's statistical machinery it
//! warms each closure up and reports the mean wall time of a fixed
//! batch — enough to eyeball relative cost and to keep `cargo bench`
//! compiling and running offline.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id carrying a function name and a parameter.
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// An id carrying only a parameter (group name supplies the rest).
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId(s)
    }
}

/// Units processed per iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// The measurement routine handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    mean_ns: f64,
}

impl Bencher {
    /// Time `f` over a fixed batch after a short warm-up.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..3 {
            std_black_box(f());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(f());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }
}

fn run_one(
    label: &str,
    iters: u64,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        iters,
        mean_ns: 0.0,
    };
    f(&mut bencher);
    let rate = match throughput {
        Some(Throughput::Elements(n)) if bencher.mean_ns > 0.0 => {
            format!("  ({:.1} Melem/s)", n as f64 / bencher.mean_ns * 1e3)
        }
        Some(Throughput::Bytes(n)) if bencher.mean_ns > 0.0 => {
            format!(
                "  ({:.1} MiB/s)",
                n as f64 / bencher.mean_ns * 1e9 / (1 << 20) as f64
            )
        }
        _ => String::new(),
    };
    println!("bench {label:<40} {:>12.0} ns/iter{rate}", bencher.mean_ns);
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Run one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Criterion {
        run_one(id, 10, None, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            throughput: None,
            sample_size: 10,
        }
    }
}

/// A group of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used for derived rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Set how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().0);
        run_one(&label, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().0);
        run_one(&label, self.sample_size, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Finish the group (a no-op beyond matching criterion's API).
    pub fn finish(self) {}
}

/// Collect benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("standalone", |b| b.iter(|| black_box(2u64 + 2)));
        let mut group = c.benchmark_group("grouped");
        group.throughput(Throughput::Elements(100));
        group.sample_size(5);
        group.bench_function("plain", |b| b.iter(|| black_box(1u64 << 20)));
        group.bench_with_input(BenchmarkId::from_parameter("x"), &41u64, |b, &x| {
            b.iter(|| black_box(x + 1))
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn macros_and_groups_run() {
        benches();
    }
}
