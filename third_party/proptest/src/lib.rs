//! Minimal, API-compatible stand-in for the `proptest` crate.
//!
//! The build environment for this repository has no access to a crate
//! registry, so the subset of proptest the workspace's property tests
//! actually use is reimplemented here: the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`] macros,
//! the [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map`,
//! integer and float range strategies, [`arbitrary::any`],
//! [`collection::vec`] / [`collection::btree_set`],
//! [`sample::select`], character-class string strategies, and tuple
//! strategies.
//!
//! Differences from the real crate, none of which the workspace's
//! tests depend on:
//!
//! - **No shrinking.** A failing case reports the generated inputs via
//!   the standard assert message; it is not minimized.
//! - **Deterministic seeds.** Case `i` of every test draws from a
//!   fixed seed derived from `i`, so failures reproduce exactly.
//! - **`prop_assume!` rejects by skipping** the current case rather
//!   than resampling, so heavy use of assumptions thins the case count
//!   (the workspace uses it on conditions that are almost always true).
//!
//! Swapping back to the real crate is a one-line change in the root
//! `[workspace.dependencies]`.

/// Test-loop plumbing: the per-case RNG and run configuration.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Run configuration (only `cases` is meaningful here).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// The RNG handed to strategies; deterministic per case index.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// The generator for case number `case` (same stream every run).
        pub fn for_case(case: u64) -> TestRng {
            TestRng(StdRng::seed_from_u64(
                0x5EED_BA5E ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ))
        }
    }

    impl RngCore for TestRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// The [`Strategy`] trait and its combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::{RngExt, SampleRange, StandardUniform};
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// A strategy applying `f` to every generated value.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// A strategy whose output drives a second, dependent strategy.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;

        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl<T> Strategy for Range<T>
    where
        T: Clone,
        Range<T>: SampleRange<T>,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            rng.random_range(self.clone())
        }
    }

    impl<T> Strategy for RangeInclusive<T>
    where
        T: Clone,
        RangeInclusive<T>: SampleRange<T>,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            rng.random_range(self.clone())
        }
    }

    /// Strategy for full-width uniform values (see [`crate::arbitrary::any`]).
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    impl<T: StandardUniform> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            rng.random::<T>()
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }

    /// `&str` patterns act as string strategies. Only the character-class
    /// shape the workspace uses is supported: `[chars]{min,max}` where
    /// `chars` may contain `a-z`-style ranges and literal characters
    /// (a trailing `-` is literal, as in standard regex classes).
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let (alphabet, reps) = parse_char_class(self)
                .unwrap_or_else(|| panic!("unsupported string pattern {self:?} (stand-in proptest only supports \"[class]{{min,max}}\")"));
            let len = rng.random_range(reps);
            (0..len)
                .map(|_| alphabet[rng.random_range(0..alphabet.len())])
                .collect()
        }
    }

    fn parse_char_class(pattern: &str) -> Option<(Vec<char>, RangeInclusive<usize>)> {
        let rest = pattern.strip_prefix('[')?;
        let (class, rest) = rest.split_once(']')?;
        let mut alphabet = Vec::new();
        let chars: Vec<char> = class.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                let (lo, hi) = (chars[i], chars[i + 2]);
                if lo > hi {
                    return None;
                }
                alphabet.extend(lo..=hi);
                i += 3;
            } else {
                alphabet.push(chars[i]);
                i += 1;
            }
        }
        if alphabet.is_empty() {
            return None;
        }
        let reps = rest.strip_prefix('{')?.strip_suffix('}')?;
        let (min, max) = reps.split_once(',')?;
        let min: usize = min.trim().parse().ok()?;
        let max: usize = max.trim().parse().ok()?;
        if min > max {
            return None;
        }
        Some((alphabet, min..=max))
    }
}

/// `any::<T>()`: full-width uniform values.
pub mod arbitrary {
    use crate::strategy::Any;
    use rand::StandardUniform;
    use std::marker::PhantomData;

    /// A strategy producing uniform values across `T`'s full width
    /// (`[0, 1)` for floats, matching the real crate closely enough
    /// for the workspace's tests).
    pub fn any<T: StandardUniform>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`prop::collection::…`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// A target size drawn uniformly from a range of lengths.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.min..=self.max_inclusive)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    /// A `Vec` of values from `element`, with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `BTreeSet` of values from `element`, aiming for a size in
    /// `size`. Duplicates are retried a bounded number of times, so a
    /// near-saturated element domain may yield a smaller set.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut set = BTreeSet::new();
            let mut tries = 0usize;
            let max_tries = target * 32 + 64;
            while set.len() < target && tries < max_tries {
                set.insert(self.element.generate(rng));
                tries += 1;
            }
            set
        }
    }
}

/// Sampling strategies (`prop::sample::…`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;

    /// A strategy picking one element of `items`, uniformly.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select requires at least one item");
        Select { items }
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[rng.random_range(0..self.items.len())].clone()
        }
    }
}

/// The glob-import surface test files use.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace alias so `prop::collection::vec(…)` etc. resolve.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Define property tests: each `#[test] fn name(arg in strategy, …)`
/// runs its body over `cases` randomly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(u64::from(__case));
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// Assert a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Skip the current case unless the condition holds. Must appear at
/// the top level of the test body (it expands to `continue`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn lowercase_id() -> impl Strategy<Value = String> {
        "[a-z0-9_]{1,8}".prop_map(|s| s)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(200))]

        #[test]
        fn ranges_stay_in_bounds(x in 10u32..20, y in -5i64..=5, f in 0.25f64..0.75) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_size_range(
            values in prop::collection::vec(any::<u64>(), 3..7),
        ) {
            prop_assert!((3..7).contains(&values.len()));
        }

        #[test]
        fn btree_set_hits_reachable_targets(
            set in prop::collection::btree_set(0u32..1000, 5..10),
        ) {
            prop_assert!((5..10).contains(&set.len()));
            prop_assert!(set.iter().all(|&v| v < 1000));
        }

        #[test]
        fn select_only_yields_members(b in prop::sample::select(b"ACGT".to_vec())) {
            prop_assert!(b"ACGT".contains(&b));
        }

        #[test]
        fn string_patterns_obey_class_and_length(id in lowercase_id()) {
            prop_assert!((1..=8).contains(&id.len()));
            prop_assert!(id
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }

        #[test]
        fn flat_map_links_dependent_values(
            pair in (1usize..10).prop_flat_map(|n| {
                (Just(n), prop::collection::vec(any::<u8>(), n..=n))
            }),
        ) {
            prop_assert_eq!(pair.0, pair.1.len());
        }

        #[test]
        fn assume_skips_without_failing(v in any::<u64>()) {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
        }
    }

    #[test]
    fn cases_are_deterministic_across_runs() {
        let strat = prop::collection::vec(0u64..1_000_000, 0..50);
        let a: Vec<Vec<u64>> = (0..16)
            .map(|i| {
                let mut rng = crate::test_runner::TestRng::for_case(i);
                crate::strategy::Strategy::generate(&strat, &mut rng)
            })
            .collect();
        let b: Vec<Vec<u64>> = (0..16)
            .map(|i| {
                let mut rng = crate::test_runner::TestRng::for_case(i);
                crate::strategy::Strategy::generate(&strat, &mut rng)
            })
            .collect();
        assert_eq!(a, b);
    }
}
