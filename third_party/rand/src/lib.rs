//! Minimal, API-compatible stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to a crate
//! registry, so the handful of `rand 0.10` items the workspace actually
//! uses are reimplemented here: [`rngs::StdRng`], [`SeedableRng`],
//! [`RngExt`] (`random`, `random_bool`, `random_range`), and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ seeded
//! through SplitMix64 — deterministic for a given seed, statistically
//! solid for tests and synthetic data, and *not* a cryptographic RNG
//! (neither is anything the workspace does with it).
//!
//! Swapping back to the real crate is a one-line change in the root
//! `[workspace.dependencies]`; every call site compiles against either.

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, matching `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl crate::RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, the canonical way to fill a xoshiro
            // state from one word without correlated lanes.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

/// Types samplable uniformly from the generator's raw stream.
pub trait StandardUniform: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardUniform for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for u128 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

/// Ranges a value can be drawn from (`random_range` argument).
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = rng.next_u64() as u128 % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = rng.next_u64() as u128 % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        // The closed upper end is hit with probability ~2^-53; treating
        // the interval as half-open keeps the arithmetic simple and no
        // caller can tell the difference.
        start + f64::sample(rng) * (end - start)
    }
}

/// The convenience sampling methods every call site uses.
pub trait RngExt: RngCore {
    /// A uniform value of `T` (`f64` in `[0, 1)`, full width for ints).
    #[inline]
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        f64::sample(self) < p
    }

    /// A uniform value from `range`.
    #[inline]
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> RngExt for R {}

/// Sequence helpers.
pub mod seq {
    use crate::{RngCore, SampleRange};

    /// In-place slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// Shuffle the slice uniformly.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_from(rng);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.random_range(0..1_000_000u64)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random_range(0..1_000_000u64)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.random_range(0..1_000_000u64)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(10..20u32);
            assert!((10..20).contains(&v));
            let w = rng.random_range(-5..=5i64);
            assert!((-5..=5).contains(&w));
            let f = rng.random::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "got {hits}");
        assert!((0..1000).all(|_| !rng.random_bool(0.0)));
        assert!((0..1000).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
