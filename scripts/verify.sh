#!/usr/bin/env bash
# Tier-1 verification: format-clean, release build, full test suite,
# lint-clean. CI runs exactly this; run it locally before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo build --release
cargo test -q
# The server end-to-end and durability suites are part of `cargo test`
# above; run them again by name so a serving or on-disk-format
# regression fails loudly on its own line.
cargo test -q -p nucdb-serve --test server_e2e
cargo test -q -p nucdb --test durability
cargo clippy --workspace -- -D warnings
# Benchmark drift: report-only for wall times and work counters,
# blocking on a decode-rate collapse (see the script's header).
./scripts/bench_compare.sh
