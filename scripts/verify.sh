#!/usr/bin/env bash
# Tier-1 verification: format-clean, release build, full test suite,
# lint-clean. CI runs exactly this; run it locally before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo build --release
cargo test -q
# The server end-to-end and durability suites are part of `cargo test`
# above; run them again by name so a serving or on-disk-format
# regression fails loudly on its own line.
cargo test -q -p nucdb-serve --test server_e2e
cargo test -q -p nucdb --test durability
cargo test -q -p nucdb --test explain_and_health
cargo test -q -p nucdb --test sharding
cargo test -q -p nucdb-serve --test shard_e2e
cargo clippy --workspace -- -D warnings
# Index health end to end on a real corpus: build a block-codec
# database, fsck it (clean files must exit 0 — any other exit code
# fails the run via set -e), and write the stat report; CI uploads
# results/STAT.json as an artifact so index-shape drift is reviewable.
health_dir=$(mktemp -d)
trap 'rm -rf "$health_dir"' EXIT
NUCDB=(cargo run --quiet --release -p nucdb-cli --)
"${NUCDB[@]}" generate --bases 200000 --out "$health_dir/coll.fasta" --seed 7
"${NUCDB[@]}" build --collection "$health_dir/coll.fasta" --db "$health_dir/db" --codec block
"${NUCDB[@]}" fsck --db "$health_dir/db"
"${NUCDB[@]}" stat --db "$health_dir/db" --out results
# Benchmark drift: report-only for wall times and work counters,
# blocking on a decode-rate collapse (see the script's header).
./scripts/bench_compare.sh
