#!/usr/bin/env bash
# Tier-1 verification: format-clean, release build, full test suite,
# lint-clean. CI runs exactly this; run it locally before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
