#!/usr/bin/env bash
# Benchmark regression gate: diff the current results/BENCH_*.json
# against the committed baseline (git show HEAD:...).
#
# Wall-time and work-counter drift is *reported* for every benchmark
# file but never fails the run — timing across machines is noise. The
# decode rate (ids_per_sec in BENCH_decode.json) is *blocking*: it is a
# same-shape, allocation-free inner loop, so a collapse there is a real
# codec regression, not scheduler weather.
#
# A second blocking check is the explain-off overhead budget in
# BENCH_coarse.json: answering queries with explain *not* requested must
# cost within EXPLAIN_OFF_BUDGET percent of the plain path. This is an
# absolute design contract checked on the current file alone, so it is
# immune to cross-machine timing noise in the baseline.
#
#   BENCH_COMPARE_THRESHOLD  report threshold, percent (default 15)
#   BENCH_DECODE_THRESHOLD   blocking decode-rate threshold (default 15;
#                            CI passes a looser value for runner variance)
#   EXPLAIN_OFF_BUDGET       blocking explain-off overhead cap, percent
#                            (default 3)
set -uo pipefail
cd "$(dirname "$0")/.."

THRESHOLD="${BENCH_COMPARE_THRESHOLD:-15}"
DECODE_THRESHOLD="${BENCH_DECODE_THRESHOLD:-15}"
EXPLAIN_OFF_BUDGET="${EXPLAIN_OFF_BUDGET:-3}"
CMP=(cargo run --quiet --release -p nucdb-bench --bin bench_compare --)

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

status=0
shopt -s nullglob
for f in results/BENCH_*.json; do
    name=$(basename "$f")
    if ! git show "HEAD:$f" >"$tmp/$name" 2>/dev/null; then
        echo "bench_compare: no committed baseline for $f — skipping"
        continue
    fi
    echo "== $name vs HEAD baseline (report threshold ${THRESHOLD}%) =="
    "${CMP[@]}" --baseline "$tmp/$name" --current "$f" --threshold "$THRESHOLD" || true
    if [ "$name" = "BENCH_decode.json" ]; then
        echo "-- blocking decode-rate check (threshold ${DECODE_THRESHOLD}%) --"
        if ! "${CMP[@]}" --baseline "$tmp/$name" --current "$f" \
            --keys ids_per_sec --threshold "$DECODE_THRESHOLD" --strict; then
            status=1
        fi
    fi
    if [ "$name" = "BENCH_coarse.json" ]; then
        echo "-- blocking explain-off overhead budget (<= ${EXPLAIN_OFF_BUDGET}%) --"
        if ! "${CMP[@]}" --current "$f" \
            --budget "explain_off_overhead_pct=${EXPLAIN_OFF_BUDGET}"; then
            status=1
        fi
    fi
done
exit $status
