//! Property tests for the sequence substrate: parser robustness, packing
//! round trips, and generator invariants.

use std::io::Cursor;

use nucdb_seq::{DnaSeq, FastaReader, FastaRecord, FastaWriter, PackedSeq};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn fasta_reader_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..400),
    ) {
        // Arbitrary (possibly non-UTF-8, possibly malformed) input must
        // produce records or errors, never a panic.
        let reader = FastaReader::new(Cursor::new(bytes));
        for record in reader.take(64) {
            let _ = record;
        }
    }

    #[test]
    fn fasta_round_trips_valid_records(
        ids in prop::collection::vec("[A-Za-z0-9_.-]{1,12}", 1..6),
        seqs in prop::collection::vec(
            prop::collection::vec(prop::sample::select(b"ACGTRYSWKMBDHVN".to_vec()), 1..120),
            1..6,
        ),
        width in prop::sample::select(vec![0usize, 1, 7, 60, 1000]),
    ) {
        let n = ids.len().min(seqs.len());
        let records: Vec<FastaRecord> = (0..n)
            .map(|i| FastaRecord::new(ids[i].clone(), DnaSeq::from_ascii(&seqs[i]).unwrap()))
            .collect();
        let mut writer = FastaWriter::with_line_width(Vec::new(), width);
        for r in &records {
            writer.write_record(r).unwrap();
        }
        let text = writer.into_inner().unwrap();
        let back: Vec<FastaRecord> =
            FastaReader::new(Cursor::new(text)).collect::<Result<_, _>>().unwrap();
        prop_assert_eq!(back, records);
    }

    #[test]
    fn packed_from_bytes_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = PackedSeq::from_bytes(&bytes);
    }

    #[test]
    fn pack_round_trip_arbitrary_iupac(
        ascii in prop::collection::vec(prop::sample::select(b"ACGTRYSWKMBDHVNacgtn".to_vec()), 0..500),
    ) {
        let seq = DnaSeq::from_ascii(&ascii).unwrap();
        let packed = PackedSeq::pack(&seq);
        prop_assert_eq!(packed.unpack(), seq.clone());
        let reparsed = PackedSeq::from_bytes(&packed.to_bytes()).unwrap();
        prop_assert_eq!(reparsed.unpack(), seq);
    }

    #[test]
    fn reverse_complement_involution(
        ascii in prop::collection::vec(prop::sample::select(b"ACGTRYSWKMBDHVN".to_vec()), 0..300),
    ) {
        let seq = DnaSeq::from_ascii(&ascii).unwrap();
        prop_assert_eq!(seq.reverse_complement().reverse_complement(), seq);
    }

    #[test]
    fn kmer_count_formula(
        ascii in prop::collection::vec(prop::sample::select(b"ACGT".to_vec()), 0..200),
        k in 1usize..16,
    ) {
        let bases = DnaSeq::from_ascii(&ascii).unwrap().representative_bases();
        let count = nucdb_seq::KmerIter::new(&bases, k).count();
        let expect = (bases.len() + 1).saturating_sub(k);
        prop_assert_eq!(count, expect);
    }
}
