//! Error type shared by the sequence substrate.

use std::fmt;
use std::io;

/// Errors produced while parsing, packing, or generating sequences.
#[derive(Debug)]
pub enum SeqError {
    /// A byte that is not a recognised IUPAC nucleotide code.
    InvalidBase {
        /// The offending byte.
        byte: u8,
        /// Byte offset of the offending character within its record.
        position: usize,
    },
    /// A FASTA stream that does not start with a `>` header line.
    MissingHeader,
    /// A FASTA record with a header but no sequence data.
    EmptyRecord {
        /// Identifier from the record's header line.
        id: String,
    },
    /// A corrupt or truncated packed-sequence blob.
    CorruptPackedData(&'static str),
    /// An underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for SeqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeqError::InvalidBase { byte, position } => {
                if byte.is_ascii_graphic() {
                    write!(
                        f,
                        "invalid nucleotide code {:?} at offset {position}",
                        *byte as char
                    )
                } else {
                    write!(
                        f,
                        "invalid nucleotide byte 0x{byte:02x} at offset {position}"
                    )
                }
            }
            SeqError::MissingHeader => {
                write!(f, "FASTA stream does not begin with a '>' header line")
            }
            SeqError::EmptyRecord { id } => {
                write!(f, "FASTA record {id:?} contains no sequence data")
            }
            SeqError::CorruptPackedData(what) => {
                write!(f, "corrupt packed sequence data: {what}")
            }
            SeqError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for SeqError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SeqError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SeqError {
    fn from(e: io::Error) -> Self {
        SeqError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_invalid_base_printable() {
        let e = SeqError::InvalidBase {
            byte: b'!',
            position: 7,
        };
        assert!(e.to_string().contains("'!'"));
        assert!(e.to_string().contains('7'));
    }

    #[test]
    fn display_invalid_base_unprintable() {
        let e = SeqError::InvalidBase {
            byte: 0x01,
            position: 0,
        };
        assert!(e.to_string().contains("0x01"));
    }

    #[test]
    fn io_error_source_is_preserved() {
        use std::error::Error;
        let e = SeqError::from(io::Error::new(io::ErrorKind::UnexpectedEof, "eof"));
        assert!(e.source().is_some());
    }

    #[test]
    fn display_empty_record_names_the_record() {
        let e = SeqError::EmptyRecord {
            id: "seq42".to_string(),
        };
        assert!(e.to_string().contains("seq42"));
    }
}
