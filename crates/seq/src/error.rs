//! Error type shared by the sequence substrate.

use std::fmt;
use std::io;

/// Errors produced while parsing, packing, or generating sequences.
#[derive(Debug)]
pub enum SeqError {
    /// A byte that is not a recognised IUPAC nucleotide code.
    InvalidBase {
        /// The offending byte.
        byte: u8,
        /// Byte offset of the offending character within its record.
        position: usize,
    },
    /// A FASTA stream that does not start with a `>` header line.
    MissingHeader,
    /// A FASTA record with a header but no sequence data.
    EmptyRecord {
        /// Identifier from the record's header line.
        id: String,
    },
    /// A corrupt or truncated packed-sequence blob: a structural
    /// violation, located by section name and (when the parser had file
    /// context) byte offset.
    CorruptPackedData {
        /// What was wrong.
        what: &'static str,
        /// The file section being parsed ("store-header", "record", …).
        section: &'static str,
        /// Byte offset within the file where the violation was detected.
        offset: Option<u64>,
    },
    /// A stored checksum did not match the bytes read: the store file is
    /// corrupt even though it is structurally parseable.
    Corruption {
        /// The file section whose checksum failed.
        section: &'static str,
        /// Byte offset of the corrupt region within the file.
        offset: u64,
        /// The checksum stored in the file.
        expected: u32,
        /// The checksum of the bytes actually read.
        actual: u32,
    },
    /// An underlying I/O failure.
    Io(io::Error),
}

impl SeqError {
    /// A [`SeqError::CorruptPackedData`] without file context (violations
    /// detected on an already-fetched blob).
    pub fn corrupt(what: &'static str) -> SeqError {
        SeqError::CorruptPackedData {
            what,
            section: "record",
            offset: None,
        }
    }

    /// A [`SeqError::CorruptPackedData`] locating the violation at
    /// `offset` within `section`.
    pub fn corrupt_at(what: &'static str, section: &'static str, offset: u64) -> SeqError {
        SeqError::CorruptPackedData {
            what,
            section,
            offset: Some(offset),
        }
    }

    /// A checksum-mismatch [`SeqError::Corruption`].
    pub fn checksum(section: &'static str, offset: u64, expected: u32, actual: u32) -> SeqError {
        SeqError::Corruption {
            section,
            offset,
            expected,
            actual,
        }
    }

    /// Stamp file context onto a context-free [`SeqError::corrupt`]
    /// error (used when a blob-level parser's error surfaces in a caller
    /// that knows the blob's file position).
    pub fn located(self, at_section: &'static str, at_offset: u64) -> SeqError {
        match self {
            SeqError::CorruptPackedData {
                what, offset: None, ..
            } => SeqError::corrupt_at(what, at_section, at_offset),
            other => other,
        }
    }
}

impl fmt::Display for SeqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeqError::InvalidBase { byte, position } => {
                if byte.is_ascii_graphic() {
                    write!(
                        f,
                        "invalid nucleotide code {:?} at offset {position}",
                        *byte as char
                    )
                } else {
                    write!(
                        f,
                        "invalid nucleotide byte 0x{byte:02x} at offset {position}"
                    )
                }
            }
            SeqError::MissingHeader => {
                write!(f, "FASTA stream does not begin with a '>' header line")
            }
            SeqError::EmptyRecord { id } => {
                write!(f, "FASTA record {id:?} contains no sequence data")
            }
            SeqError::CorruptPackedData {
                what,
                section,
                offset,
            } => match offset {
                Some(offset) => write!(
                    f,
                    "corrupt packed sequence data: {what} (section {section:?}, byte {offset})"
                ),
                None => write!(
                    f,
                    "corrupt packed sequence data: {what} (section {section:?})"
                ),
            },
            SeqError::Corruption {
                section,
                offset,
                expected,
                actual,
            } => write!(
                f,
                "store corruption detected: checksum mismatch in section {section:?} at byte \
                 {offset} (stored {expected:#010x}, computed {actual:#010x})"
            ),
            SeqError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for SeqError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SeqError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SeqError {
    fn from(e: io::Error) -> Self {
        SeqError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_invalid_base_printable() {
        let e = SeqError::InvalidBase {
            byte: b'!',
            position: 7,
        };
        assert!(e.to_string().contains("'!'"));
        assert!(e.to_string().contains('7'));
    }

    #[test]
    fn display_invalid_base_unprintable() {
        let e = SeqError::InvalidBase {
            byte: 0x01,
            position: 0,
        };
        assert!(e.to_string().contains("0x01"));
    }

    #[test]
    fn io_error_source_is_preserved() {
        use std::error::Error;
        let e = SeqError::from(io::Error::new(io::ErrorKind::UnexpectedEof, "eof"));
        assert!(e.source().is_some());
    }

    #[test]
    fn display_empty_record_names_the_record() {
        let e = SeqError::EmptyRecord {
            id: "seq42".to_string(),
        };
        assert!(e.to_string().contains("seq42"));
    }

    #[test]
    fn corrupt_data_reports_section_and_offset() {
        let text = SeqError::corrupt_at("blob too short", "record", 321).to_string();
        assert!(text.contains("blob too short"), "{text}");
        assert!(text.contains("record"), "{text}");
        assert!(text.contains("321"), "{text}");
    }

    #[test]
    fn located_stamps_context_free_errors_only() {
        let stamped = SeqError::corrupt("truncated").located("record", 64);
        match stamped {
            SeqError::CorruptPackedData {
                section, offset, ..
            } => {
                assert_eq!(section, "record");
                assert_eq!(offset, Some(64));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Already-located errors keep their original position.
        let kept = SeqError::corrupt_at("truncated", "store-header", 5).located("record", 64);
        match kept {
            SeqError::CorruptPackedData {
                section, offset, ..
            } => {
                assert_eq!(section, "store-header");
                assert_eq!(offset, Some(5));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn checksum_mismatch_reports_values() {
        let text = SeqError::checksum("record", 99, 0xAABBCCDD, 0x11223344).to_string();
        assert!(text.contains("99"), "{text}");
        assert!(text.contains("0xaabbccdd"), "{text}");
    }
}
