//! Deterministic synthetic nucleotide collections with planted homologs.
//!
//! The paper evaluates on GenBank; we cannot ship GenBank, so experiments
//! run on seeded synthetic collections that reproduce the properties the
//! algorithms are sensitive to:
//!
//! * collection size and per-record length distribution (coarse-search cost
//!   scales with postings volume; fine-search cost with record length),
//! * base composition and occasional IUPAC wildcards (exercise the
//!   direct-coding exception path),
//! * **planted homolog families**: groups of records that each embed a
//!   mutated copy of a common parent inside unrelated flanking sequence.
//!   These are the "similar sequences" a query should retrieve, and because
//!   we plant them ourselves the ground truth for recall experiments is
//!   exact — independently of (and cross-checkable against) exhaustive
//!   Smith-Waterman ranking.
//!
//! All generation is driven by a seeded [`StdRng`], so every experiment in
//! EXPERIMENTS.md is reproducible bit-for-bit.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

use crate::alphabet::{Base, IupacCode};
use crate::seq::DnaSeq;

/// Per-base mutation probabilities used to derive homologs from a parent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MutationModel {
    /// Probability that a base is substituted by a different base.
    pub substitution_rate: f64,
    /// Probability that a random base is inserted before a position.
    pub insertion_rate: f64,
    /// Probability that a base is deleted.
    pub deletion_rate: f64,
}

impl MutationModel {
    /// Substitutions only (no indels).
    pub fn substitutions(rate: f64) -> MutationModel {
        MutationModel {
            substitution_rate: rate,
            insertion_rate: 0.0,
            deletion_rate: 0.0,
        }
    }

    /// A typical homolog model: mostly substitutions with some indels.
    pub fn standard(divergence: f64) -> MutationModel {
        MutationModel {
            substitution_rate: divergence * 0.8,
            insertion_rate: divergence * 0.1,
            deletion_rate: divergence * 0.1,
        }
    }

    /// No mutation at all.
    pub fn identity() -> MutationModel {
        MutationModel {
            substitution_rate: 0.0,
            insertion_rate: 0.0,
            deletion_rate: 0.0,
        }
    }

    /// Apply the model to `seq`, producing a mutated copy.
    pub fn apply(&self, seq: &DnaSeq, rng: &mut StdRng) -> DnaSeq {
        let mut out = DnaSeq::with_capacity(seq.len() + seq.len() / 8);
        for code in seq.iter() {
            while self.insertion_rate > 0.0 && rng.random_bool(self.insertion_rate) {
                out.push_base(random_base(rng, 0.5));
            }
            if self.deletion_rate > 0.0 && rng.random_bool(self.deletion_rate) {
                continue;
            }
            if self.substitution_rate > 0.0 && rng.random_bool(self.substitution_rate) {
                out.push_base(substitute(code.representative(), rng));
            } else {
                out.push(code);
            }
        }
        out
    }
}

/// Draw a base with the given GC content (probability of G or C).
pub fn random_base(rng: &mut StdRng, gc_content: f64) -> Base {
    if rng.random_bool(gc_content) {
        if rng.random_bool(0.5) {
            Base::G
        } else {
            Base::C
        }
    } else if rng.random_bool(0.5) {
        Base::A
    } else {
        Base::T
    }
}

/// A base different from `original`, uniformly among the other three.
fn substitute(original: Base, rng: &mut StdRng) -> Base {
    loop {
        let candidate = Base::from_code(rng.random_range(0..4u8));
        if candidate != original {
            return candidate;
        }
    }
}

/// A random sequence with the given length, GC content and wildcard rate.
pub fn random_seq(rng: &mut StdRng, len: usize, gc_content: f64, wildcard_rate: f64) -> DnaSeq {
    let mut seq = DnaSeq::with_capacity(len);
    for _ in 0..len {
        if wildcard_rate > 0.0 && rng.random_bool(wildcard_rate) {
            let wc = IupacCode::WILDCARDS[rng.random_range(0..IupacCode::WILDCARDS.len())];
            seq.push(wc);
        } else {
            seq.push_base(random_base(rng, gc_content));
        }
    }
    seq
}

/// Replace a stretch of `seq` with a low-complexity repeat: `unit` tiled
/// across a segment whose length is drawn from `repeat_len` (a synthetic
/// microsatellite / homopolymer run).
pub fn splice_repeat(
    seq: &DnaSeq,
    unit: &[Base],
    repeat_len: Range<usize>,
    rng: &mut StdRng,
) -> DnaSeq {
    if seq.is_empty() || unit.is_empty() {
        return seq.clone();
    }
    let seg_len = rng.random_range(repeat_len).min(seq.len());
    let start = rng.random_range(0..=seq.len() - seg_len);
    let mut codes = seq.codes().to_vec();
    for (i, slot) in codes[start..start + seg_len].iter_mut().enumerate() {
        *slot = IupacCode::from(unit[i % unit.len()]);
    }
    DnaSeq::from_codes(codes)
}

/// Chop `seq` into `block` sized pieces and concatenate them in shuffled
/// order: preserves interval content almost exactly while destroying any
/// long common diagonal with the original.
pub fn shuffle_blocks(seq: &DnaSeq, block: usize, rng: &mut StdRng) -> DnaSeq {
    let mut blocks: Vec<&[IupacCode]> = seq.codes().chunks(block.max(1)).collect();
    blocks.shuffle(rng);
    let mut out = Vec::with_capacity(seq.len());
    for b in blocks {
        out.extend_from_slice(b);
    }
    DnaSeq::from_codes(out)
}

/// Specification of a synthetic collection.
#[derive(Debug, Clone)]
pub struct CollectionSpec {
    /// RNG seed; two identical specs generate identical collections.
    pub seed: u64,
    /// Number of unrelated background records.
    pub num_background: usize,
    /// Uniform length range of background records.
    pub background_len: Range<usize>,
    /// Probability that a generated base is G or C.
    pub gc_content: f64,
    /// Probability that a position is an IUPAC wildcard.
    pub wildcard_rate: f64,
    /// Number of planted homolog families.
    pub num_families: usize,
    /// Records per family.
    pub family_size: usize,
    /// Uniform length range of each family's parent sequence.
    pub parent_len: Range<usize>,
    /// Mutation model deriving each member's embedded copy from the parent.
    pub mutation: MutationModel,
    /// Uniform length range of the unrelated flanks around each embedded copy.
    pub flank_len: Range<usize>,
    /// Probability that a background record contains a low-complexity
    /// repeat segment (poly-A runs, microsatellites). Real nucleotide
    /// collections are full of these; they produce the heavy-tailed
    /// interval-frequency distribution that index *stopping* targets.
    pub repeat_prob: f64,
    /// Uniform length range of a spliced-in repeat segment.
    pub repeat_len: Range<usize>,
    /// Number of distinct repeat units the collection shares (repeat
    /// *families*, like the Alu elements of real genomes): each repeat
    /// segment tiles one unit drawn from this shared library, so the same
    /// intervals recur across many records.
    pub repeat_families: usize,
    /// Per family, how many *decoy* records to plant: records built from
    /// the parent's blocks in shuffled order. A decoy shares most of the
    /// parent's intervals (so hit-counting ranks it like a member) but has
    /// no long common diagonal (so no good local alignment exists) —
    /// exactly the case diagonal-structured coarse ranking is built to
    /// demote.
    pub decoys_per_family: usize,
    /// Block length used when shuffling parents into decoys.
    pub decoy_block: usize,
}

impl Default for CollectionSpec {
    fn default() -> CollectionSpec {
        CollectionSpec {
            seed: 42,
            num_background: 200,
            background_len: 400..2000,
            gc_content: 0.5,
            wildcard_rate: 0.0005,
            num_families: 8,
            family_size: 5,
            parent_len: 300..600,
            mutation: MutationModel::standard(0.10),
            flank_len: 100..400,
            repeat_prob: 0.0,
            repeat_len: 50..300,
            repeat_families: 3,
            decoys_per_family: 0,
            decoy_block: 25,
        }
    }
}

impl CollectionSpec {
    /// A small spec for fast unit tests.
    pub fn tiny(seed: u64) -> CollectionSpec {
        CollectionSpec {
            seed,
            num_background: 20,
            background_len: 100..300,
            num_families: 3,
            family_size: 3,
            parent_len: 80..160,
            flank_len: 20..60,
            ..CollectionSpec::default()
        }
    }

    /// Scale `num_background` so the collection totals roughly
    /// `total_bases` bases (planted families included in the estimate).
    pub fn sized(seed: u64, total_bases: usize) -> CollectionSpec {
        let spec = CollectionSpec {
            seed,
            ..CollectionSpec::default()
        };
        let mean_bg = (spec.background_len.start + spec.background_len.end) / 2;
        let mean_member = (spec.parent_len.start + spec.parent_len.end) / 2
            + spec.flank_len.start
            + spec.flank_len.end;
        let family_bases = spec.num_families * spec.family_size * mean_member;
        let remaining = total_bases.saturating_sub(family_bases);
        CollectionSpec {
            num_background: (remaining / mean_bg).max(1),
            ..spec
        }
    }
}

/// A planted homolog family: the parent sequence plus where each derived
/// member ended up in the shuffled collection.
#[derive(Debug, Clone)]
pub struct HomologFamily {
    /// The common ancestor all members embed (in mutated form).
    pub parent: DnaSeq,
    /// Indices (record ids) of the member records within the collection.
    pub member_ids: Vec<u32>,
    /// For each member, the half-open range of the embedded homologous
    /// region inside that record.
    pub embedded_ranges: Vec<Range<usize>>,
    /// Indices of the family's decoy records (shuffled-block impostors;
    /// empty unless [`CollectionSpec::decoys_per_family`] is set).
    pub decoy_ids: Vec<u32>,
}

/// One generated record: an id string and its sequence.
#[derive(Debug, Clone)]
pub struct GeneratedRecord {
    /// Synthetic identifier, e.g. `bg000017` or `fam02m1`.
    pub id: String,
    /// The sequence.
    pub seq: DnaSeq,
}

/// A generated collection with exact planted ground truth.
#[derive(Debug, Clone)]
pub struct SyntheticCollection {
    /// All records, shuffled so family members are scattered.
    pub records: Vec<GeneratedRecord>,
    /// The planted families, with member ids resolved post-shuffle.
    pub families: Vec<HomologFamily>,
    /// The shared repeat-unit library records' repeat segments tile
    /// (present even when `repeat_prob` is 0, in which case it is unused).
    pub repeat_units: Vec<Vec<Base>>,
    /// Seed the collection was generated from.
    pub seed: u64,
}

impl SyntheticCollection {
    /// Generate a collection from a spec. Deterministic in `spec.seed`.
    pub fn generate(spec: &CollectionSpec) -> SyntheticCollection {
        let mut rng = StdRng::seed_from_u64(spec.seed);

        // Tag: None = background; Some((family, Some(range))) = member
        // with its embedded region; Some((family, None)) = decoy.
        type Tag = Option<(usize, Option<Range<usize>>)>;
        let mut tagged: Vec<(Tag, GeneratedRecord)> = Vec::new();

        // The collection's shared repeat-unit library (microsatellite
        // motifs and homopolymer runs).
        let repeat_units: Vec<Vec<Base>> = (0..spec.repeat_families.max(1))
            .map(|_| {
                let unit_len = rng.random_range(1..=6usize);
                (0..unit_len).map(|_| random_base(&mut rng, 0.5)).collect()
            })
            .collect();

        for i in 0..spec.num_background {
            let len = rng.random_range(spec.background_len.clone());
            let mut seq = random_seq(&mut rng, len, spec.gc_content, spec.wildcard_rate);
            if spec.repeat_prob > 0.0 && rng.random_bool(spec.repeat_prob) {
                let unit = &repeat_units[rng.random_range(0..repeat_units.len())];
                seq = splice_repeat(&seq, unit, spec.repeat_len.clone(), &mut rng);
            }
            tagged.push((
                None,
                GeneratedRecord {
                    id: format!("bg{i:06}"),
                    seq,
                },
            ));
        }

        // Tag meaning: (family, Some(range)) = member with its embedded
        // region; (family, None) = decoy.
        let mut parents = Vec::with_capacity(spec.num_families);
        for f in 0..spec.num_families {
            let parent_len = rng.random_range(spec.parent_len.clone());
            let parent = random_seq(&mut rng, parent_len, spec.gc_content, 0.0);
            for m in 0..spec.family_size {
                let core = spec.mutation.apply(&parent, &mut rng);
                let left = rng.random_range(spec.flank_len.clone());
                let right = rng.random_range(spec.flank_len.clone());
                let mut seq = random_seq(&mut rng, left, spec.gc_content, spec.wildcard_rate);
                let start = seq.len();
                seq.extend_from(&core);
                let end = seq.len();
                let flank = random_seq(&mut rng, right, spec.gc_content, spec.wildcard_rate);
                seq.extend_from(&flank);
                tagged.push((
                    Some((f, Some(start..end))),
                    GeneratedRecord {
                        id: format!("fam{f:02}m{m}"),
                        seq,
                    },
                ));
            }
            for d in 0..spec.decoys_per_family {
                let shuffled = shuffle_blocks(&parent, spec.decoy_block.max(1), &mut rng);
                let left = rng.random_range(spec.flank_len.clone());
                let right = rng.random_range(spec.flank_len.clone());
                let mut seq = random_seq(&mut rng, left, spec.gc_content, spec.wildcard_rate);
                seq.extend_from(&shuffled);
                let flank = random_seq(&mut rng, right, spec.gc_content, spec.wildcard_rate);
                seq.extend_from(&flank);
                tagged.push((
                    Some((f, None)),
                    GeneratedRecord {
                        id: format!("dec{f:02}d{d}"),
                        seq,
                    },
                ));
            }
            parents.push(parent);
        }

        tagged.shuffle(&mut rng);

        let mut families: Vec<HomologFamily> = parents
            .into_iter()
            .map(|parent| HomologFamily {
                parent,
                member_ids: Vec::with_capacity(spec.family_size),
                embedded_ranges: Vec::with_capacity(spec.family_size),
                decoy_ids: Vec::with_capacity(spec.decoys_per_family),
            })
            .collect();

        let mut records = Vec::with_capacity(tagged.len());
        for (idx, (tag, record)) in tagged.into_iter().enumerate() {
            match tag {
                Some((f, Some(range))) => {
                    families[f].member_ids.push(idx as u32);
                    families[f].embedded_ranges.push(range);
                }
                Some((f, None)) => families[f].decoy_ids.push(idx as u32),
                None => {}
            }
            records.push(record);
        }

        SyntheticCollection {
            records,
            families,
            repeat_units,
            seed: spec.seed,
        }
    }

    /// Total bases across all records.
    pub fn total_bases(&self) -> usize {
        self.records.iter().map(|r| r.seq.len()).sum()
    }

    /// Derive a query for family `f`: a mutated fragment of the parent,
    /// `frac` of its length, generated deterministically from the
    /// collection seed and `f`.
    pub fn query_for_family(&self, f: usize, frac: f64, model: &MutationModel) -> DnaSeq {
        let parent = &self.families[f].parent;
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x9e37_79b9_7f4a_7c15 ^ f as u64);
        let take = ((parent.len() as f64 * frac) as usize).clamp(1, parent.len());
        let start = if take == parent.len() {
            0
        } else {
            rng.random_range(0..parent.len() - take)
        };
        model.apply(&parent.subseq(start..start + take), &mut rng)
    }

    /// A query unrelated to every planted family (background noise).
    pub fn random_query(&self, len: usize) -> DnaSeq {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x5851_f42d_4c95_7f2d);
        random_seq(&mut rng, len, 0.5, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = CollectionSpec::tiny(7);
        let a = SyntheticCollection::generate(&spec);
        let b = SyntheticCollection::generate(&spec);
        assert_eq!(a.records.len(), b.records.len());
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.seq, y.seq);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticCollection::generate(&CollectionSpec::tiny(1));
        let b = SyntheticCollection::generate(&CollectionSpec::tiny(2));
        let differs = a
            .records
            .iter()
            .zip(&b.records)
            .any(|(x, y)| x.seq != y.seq);
        assert!(differs);
    }

    #[test]
    fn counts_match_spec() {
        let spec = CollectionSpec::tiny(3);
        let coll = SyntheticCollection::generate(&spec);
        assert_eq!(
            coll.records.len(),
            spec.num_background + spec.num_families * spec.family_size
        );
        assert_eq!(coll.families.len(), spec.num_families);
        for family in &coll.families {
            assert_eq!(family.member_ids.len(), spec.family_size);
            assert_eq!(family.embedded_ranges.len(), spec.family_size);
        }
    }

    #[test]
    fn member_ids_point_at_family_records() {
        let coll = SyntheticCollection::generate(&CollectionSpec::tiny(11));
        for (f, family) in coll.families.iter().enumerate() {
            for (&id, range) in family.member_ids.iter().zip(&family.embedded_ranges) {
                let record = &coll.records[id as usize];
                assert!(
                    record.id.starts_with(&format!("fam{f:02}")),
                    "{}",
                    record.id
                );
                assert!(range.end <= record.seq.len());
                assert!(range.end - range.start > 0);
            }
        }
    }

    #[test]
    fn embedded_region_resembles_parent() {
        // With 10% divergence, the embedded copy should agree with the
        // parent on the vast majority of positions (identity-aligned
        // prefix check is a weak proxy that tolerates indels by sampling
        // only the prefix before the first length drift).
        let spec = CollectionSpec {
            mutation: MutationModel::substitutions(0.05),
            ..CollectionSpec::tiny(13)
        };
        let coll = SyntheticCollection::generate(&spec);
        let family = &coll.families[0];
        let record = &coll.records[family.member_ids[0] as usize];
        let range = family.embedded_ranges[0].clone();
        let embedded = record.seq.subseq(range);
        assert_eq!(embedded.len(), family.parent.len()); // substitutions only
        let agree = embedded
            .iter()
            .zip(family.parent.iter())
            .filter(|(a, b)| a == b)
            .count();
        assert!(
            agree as f64 / family.parent.len() as f64 > 0.85,
            "only {agree}/{} positions agree",
            family.parent.len()
        );
    }

    #[test]
    fn mutation_identity_is_identity() {
        let mut rng = StdRng::seed_from_u64(0);
        let seq = random_seq(&mut rng, 500, 0.5, 0.01);
        let same = MutationModel::identity().apply(&seq, &mut rng);
        assert_eq!(same, seq);
    }

    #[test]
    fn substitution_rate_is_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(99);
        let seq = random_seq(&mut rng, 20_000, 0.5, 0.0);
        let mutated = MutationModel::substitutions(0.2).apply(&seq, &mut rng);
        assert_eq!(mutated.len(), seq.len());
        let diff = seq
            .iter()
            .zip(mutated.iter())
            .filter(|(a, b)| a != b)
            .count();
        let rate = diff as f64 / seq.len() as f64;
        assert!((0.15..0.25).contains(&rate), "observed rate {rate}");
    }

    #[test]
    fn indels_change_length() {
        let mut rng = StdRng::seed_from_u64(5);
        let seq = random_seq(&mut rng, 5_000, 0.5, 0.0);
        let model = MutationModel {
            substitution_rate: 0.0,
            insertion_rate: 0.1,
            deletion_rate: 0.0,
        };
        let longer = model.apply(&seq, &mut rng);
        assert!(longer.len() > seq.len());
        let model = MutationModel {
            substitution_rate: 0.0,
            insertion_rate: 0.0,
            deletion_rate: 0.1,
        };
        let shorter = model.apply(&seq, &mut rng);
        assert!(shorter.len() < seq.len());
    }

    #[test]
    fn gc_content_is_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(17);
        let seq = random_seq(&mut rng, 50_000, 0.7, 0.0);
        let gc = seq
            .iter()
            .filter(|c| {
                let b = c.representative();
                b == Base::G || b == Base::C
            })
            .count();
        let rate = gc as f64 / seq.len() as f64;
        assert!((0.67..0.73).contains(&rate), "observed GC {rate}");
    }

    #[test]
    fn wildcard_rate_is_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(23);
        let seq = random_seq(&mut rng, 100_000, 0.5, 0.01);
        let rate = seq.wildcard_count() as f64 / seq.len() as f64;
        assert!(
            (0.005..0.02).contains(&rate),
            "observed wildcard rate {rate}"
        );
    }

    #[test]
    fn sized_spec_hits_target_roughly() {
        let spec = CollectionSpec::sized(1, 1_000_000);
        let coll = SyntheticCollection::generate(&spec);
        let total = coll.total_bases() as f64;
        assert!(
            (0.8..1.2).contains(&(total / 1_000_000.0)),
            "total bases {total}"
        );
    }

    #[test]
    fn splice_repeat_tiles_a_unit() {
        let mut rng = StdRng::seed_from_u64(77);
        let seq = random_seq(&mut rng, 500, 0.5, 0.0);
        let unit = [Base::A, Base::C, Base::T];
        let with_repeat = splice_repeat(&seq, &unit, 100..101, &mut rng);
        assert_eq!(with_repeat.len(), seq.len());
        // Some 100-base window must tile the unit with period 3.
        let codes = with_repeat.codes();
        let found = (0..codes.len() - 100).any(|start| {
            (start..start + 97).all(|i| codes[i] == codes[i + 3])
                && codes[start].representative() != codes[start + 1].representative()
        });
        assert!(found, "no period-3 segment found");
    }

    #[test]
    fn splice_repeat_on_empty_is_noop() {
        let mut rng = StdRng::seed_from_u64(1);
        let empty = DnaSeq::new();
        assert_eq!(splice_repeat(&empty, &[Base::A], 10..20, &mut rng), empty);
        let seq = random_seq(&mut rng, 50, 0.5, 0.0);
        assert_eq!(splice_repeat(&seq, &[], 10..20, &mut rng), seq);
    }

    #[test]
    fn repeats_skew_interval_frequencies() {
        // With repeats enabled, the most frequent 8-mer should occur in a
        // large share of records; without, document frequency stays flat.
        use crate::kmer::KmerIter;
        use std::collections::HashMap;
        let df_of_most_common = |spec: &CollectionSpec| -> f64 {
            let coll = SyntheticCollection::generate(spec);
            let mut dfs: HashMap<u64, u32> = HashMap::new();
            for record in &coll.records {
                let bases = record.seq.representative_bases();
                let mut seen: Vec<u64> = KmerIter::new(&bases, 8).map(|(_, c)| c).collect();
                seen.sort_unstable();
                seen.dedup();
                for code in seen {
                    *dfs.entry(code).or_insert(0) += 1;
                }
            }
            *dfs.values().max().unwrap() as f64 / coll.records.len() as f64
        };
        let plain = CollectionSpec {
            num_background: 100,
            ..CollectionSpec::tiny(55)
        };
        let repeaty = CollectionSpec {
            repeat_prob: 0.5,
            ..plain.clone()
        };
        let plain_df = df_of_most_common(&plain);
        let repeat_df = df_of_most_common(&repeaty);
        assert!(
            repeat_df > plain_df * 2.0,
            "repeats did not skew dfs: {repeat_df} vs {plain_df}"
        );
    }

    #[test]
    fn shuffle_blocks_preserves_content() {
        let mut rng = StdRng::seed_from_u64(9);
        let seq = random_seq(&mut rng, 300, 0.5, 0.0);
        let shuffled = shuffle_blocks(&seq, 25, &mut rng);
        assert_eq!(shuffled.len(), seq.len());
        // Same multiset of codes.
        let mut a = seq.codes().to_vec();
        let mut b = shuffled.codes().to_vec();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        // But not the same sequence (overwhelmingly likely with 12 blocks).
        assert_ne!(shuffled, seq);
    }

    #[test]
    fn decoys_are_planted_and_tracked() {
        let spec = CollectionSpec {
            decoys_per_family: 2,
            ..CollectionSpec::tiny(66)
        };
        let coll = SyntheticCollection::generate(&spec);
        assert_eq!(
            coll.records.len(),
            spec.num_background + spec.num_families * (spec.family_size + 2)
        );
        for (f, family) in coll.families.iter().enumerate() {
            assert_eq!(family.decoy_ids.len(), 2);
            for &d in &family.decoy_ids {
                let record = &coll.records[d as usize];
                assert!(
                    record.id.starts_with(&format!("dec{f:02}")),
                    "{}",
                    record.id
                );
                // The decoy contains the parent's bases (flanks aside):
                // it must be at least as long as the parent.
                assert!(record.seq.len() >= family.parent.len());
            }
        }
    }

    #[test]
    fn family_query_is_deterministic_and_sized() {
        let coll = SyntheticCollection::generate(&CollectionSpec::tiny(31));
        let q1 = coll.query_for_family(0, 0.5, &MutationModel::substitutions(0.05));
        let q2 = coll.query_for_family(0, 0.5, &MutationModel::substitutions(0.05));
        assert_eq!(q1, q2);
        let parent_len = coll.families[0].parent.len();
        assert!(q1.len() >= parent_len / 2 - parent_len / 10);
    }
}
