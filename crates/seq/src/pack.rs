//! Lossless *direct coding* of nucleotide sequences.
//!
//! This is the purpose-built compression scheme the CAFE system uses for its
//! sequence store (distributed by the authors as `cino`): each base is stored
//! in **two bits**, and the rare IUPAC wildcards are recorded in a separate
//! *exception list* of `(position, code)` pairs while the 2-bit payload holds
//! a representative base at the wildcard's position. The scheme is
//!
//! * **lossless** — bases *and* wildcards survive a round trip,
//! * **model-free** — no statistics pass over the collection is needed,
//! * **independently addressable** — any record can be unpacked without
//!   touching its neighbours, which matters because fine search visits
//!   records in relevance order, not storage order, and
//! * **extremely fast to decompress** — unpacking is a table lookup per
//!   packed byte (four bases at a time).
//!
//! The follow-up CAFE work reports that switching the store to direct coding
//! cut overall retrieval time by more than 20%; experiment **E6** reproduces
//! that comparison.

use crate::alphabet::{Base, IupacCode};
use crate::error::SeqError;
use crate::seq::DnaSeq;

/// Decode table: packed byte → four ASCII bases.
static ASCII_QUADS: [[u8; 4]; 256] = build_ascii_quads();

const fn build_ascii_quads() -> [[u8; 4]; 256] {
    const LETTERS: [u8; 4] = [b'A', b'C', b'G', b'T'];
    let mut table = [[0u8; 4]; 256];
    let mut byte = 0usize;
    while byte < 256 {
        let mut slot = 0usize;
        while slot < 4 {
            table[byte][slot] = LETTERS[(byte >> (2 * slot)) & 0b11];
            slot += 1;
        }
        byte += 1;
    }
    table
}

/// A wildcard exception: the packed payload holds a representative base at
/// `position`; the original code was `code`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exception {
    /// Position of the wildcard within the sequence.
    pub position: u32,
    /// The original IUPAC code at that position.
    pub code: IupacCode,
}

/// A direct-coded (2-bit packed) nucleotide sequence with a wildcard
/// exception list.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PackedSeq {
    len: u32,
    /// 2-bit codes, four per byte, base `i` at bits `2*(i % 4)` of byte `i/4`.
    payload: Vec<u8>,
    /// Sorted by position, at most one entry per position.
    exceptions: Vec<Exception>,
}

impl PackedSeq {
    /// Pack a sequence. Wildcards go to the exception list; the payload
    /// stores their representative base so alignment over the payload alone
    /// still sees a plausible sequence.
    pub fn pack(seq: &DnaSeq) -> PackedSeq {
        let len = seq.len();
        assert!(
            len <= u32::MAX as usize,
            "sequence too long for packed form"
        );
        let mut payload = vec![0u8; len.div_ceil(4)];
        let mut exceptions = Vec::new();
        for (i, code) in seq.iter().enumerate() {
            let base = code.representative();
            payload[i / 4] |= base.code() << (2 * (i % 4));
            if code.is_wildcard() {
                exceptions.push(Exception {
                    position: i as u32,
                    code,
                });
            }
        }
        PackedSeq {
            len: len as u32,
            payload,
            exceptions,
        }
    }

    /// Sequence length in bases.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Is the sequence empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of wildcard exceptions.
    #[inline]
    pub fn exception_count(&self) -> usize {
        self.exceptions.len()
    }

    /// The raw 2-bit payload.
    #[inline]
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// The wildcard exceptions, sorted by position.
    #[inline]
    pub fn exceptions(&self) -> &[Exception] {
        &self.exceptions
    }

    /// In-memory compressed size in bytes (payload + exception list), the
    /// quantity experiment E6 compares against one-byte-per-base storage.
    pub fn packed_bytes(&self) -> usize {
        self.payload.len() + self.exceptions.len() * 5
    }

    /// The representative base at `index` (wildcards collapse).
    #[inline]
    pub fn base_at(&self, index: usize) -> Base {
        debug_assert!(index < self.len());
        Base::from_code(self.payload[index / 4] >> (2 * (index % 4)))
    }

    /// The exact IUPAC code at `index`, consulting the exception list.
    pub fn code_at(&self, index: usize) -> IupacCode {
        match self
            .exceptions
            .binary_search_by_key(&(index as u32), |e| e.position)
        {
            Ok(hit) => self.exceptions[hit].code,
            Err(_) => IupacCode::from(self.base_at(index)),
        }
    }

    /// Unpack to representative bases only (the fast path used by alignment
    /// and interval extraction; wildcards collapse to representatives).
    pub fn unpack_bases(&self) -> Vec<Base> {
        let mut out = Vec::with_capacity(self.len());
        for &byte in &self.payload {
            // Four bases per packed byte; the tail is trimmed below.
            out.push(Base::from_code(byte));
            out.push(Base::from_code(byte >> 2));
            out.push(Base::from_code(byte >> 4));
            out.push(Base::from_code(byte >> 6));
        }
        out.truncate(self.len());
        out
    }

    /// Unpack to ASCII using the quad lookup table. This is the hot
    /// decompression path; a packed byte yields four letters per lookup.
    pub fn unpack_ascii(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.payload.len() * 4);
        for &byte in &self.payload {
            out.extend_from_slice(&ASCII_QUADS[byte as usize]);
        }
        out.truncate(self.len());
        for e in &self.exceptions {
            out[e.position as usize] = e.code.to_ascii();
        }
        out
    }

    /// Full lossless unpack, restoring wildcards.
    pub fn unpack(&self) -> DnaSeq {
        let mut codes: Vec<IupacCode> = self
            .unpack_bases()
            .into_iter()
            .map(IupacCode::from)
            .collect();
        for e in &self.exceptions {
            codes[e.position as usize] = e.code;
        }
        DnaSeq::from_codes(codes)
    }

    /// Serialize to a compact byte blob:
    /// `len:u32 | n_exc:u32 | (pos:u32, mask:u8)* | payload`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.exceptions.len() * 5 + self.payload.len());
        out.extend_from_slice(&self.len.to_le_bytes());
        out.extend_from_slice(&(self.exceptions.len() as u32).to_le_bytes());
        for e in &self.exceptions {
            out.extend_from_slice(&e.position.to_le_bytes());
            out.push(e.code.mask());
        }
        out.extend_from_slice(&self.payload);
        out
    }

    /// Deserialize a blob produced by [`PackedSeq::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<PackedSeq, SeqError> {
        let header = SeqError::corrupt;
        if bytes.len() < 8 {
            return Err(header("truncated header"));
        }
        let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
        let n_exc = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
        let exc_end = 8 + n_exc * 5;
        if bytes.len() < exc_end {
            return Err(header("truncated exception list"));
        }
        let mut exceptions = Vec::with_capacity(n_exc);
        let mut prev: Option<u32> = None;
        for chunk in bytes[8..exc_end].chunks_exact(5) {
            let position = u32::from_le_bytes(chunk[0..4].try_into().unwrap());
            if position >= len {
                return Err(header("exception position out of range"));
            }
            if prev.is_some_and(|p| p >= position) {
                return Err(header("exception positions not strictly increasing"));
            }
            prev = Some(position);
            let code =
                IupacCode::from_mask(chunk[4]).ok_or(header("empty IUPAC mask in exception"))?;
            exceptions.push(Exception { position, code });
        }
        let payload = bytes[exc_end..].to_vec();
        if payload.len() != (len as usize).div_ceil(4) {
            return Err(header("payload length does not match sequence length"));
        }
        Ok(PackedSeq {
            len,
            payload,
            exceptions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(ascii: &[u8]) {
        let seq = DnaSeq::from_ascii(ascii).unwrap();
        let packed = PackedSeq::pack(&seq);
        assert_eq!(packed.unpack(), seq, "round trip failed for {:?}", ascii);
        assert_eq!(packed.unpack_ascii(), seq.to_ascii_vec());
    }

    #[test]
    fn round_trip_plain() {
        round_trip(b"");
        round_trip(b"A");
        round_trip(b"ACG");
        round_trip(b"ACGT");
        round_trip(b"ACGTA");
        round_trip(b"ACGTACGTACGTACGTT");
    }

    #[test]
    fn round_trip_with_wildcards() {
        round_trip(b"N");
        round_trip(b"NNNN");
        round_trip(b"ACGTNACGT");
        round_trip(b"RYSWKMBDHVN");
        round_trip(b"NACGTACGTACGTACGN");
    }

    #[test]
    fn packed_size_is_quarter_plus_exceptions() {
        let seq = DnaSeq::from_ascii(&[b'A'; 1000]).unwrap();
        let packed = PackedSeq::pack(&seq);
        assert_eq!(packed.packed_bytes(), 250);
        assert_eq!(packed.exception_count(), 0);

        let mut ascii = vec![b'C'; 1000];
        ascii[10] = b'N';
        ascii[500] = b'R';
        let seq = DnaSeq::from_ascii(&ascii).unwrap();
        let packed = PackedSeq::pack(&seq);
        assert_eq!(packed.exception_count(), 2);
        assert_eq!(packed.packed_bytes(), 250 + 10);
    }

    #[test]
    fn base_at_matches_unpack() {
        let seq = DnaSeq::from_ascii(b"ACGTTGCAACGTN").unwrap();
        let packed = PackedSeq::pack(&seq);
        let bases = packed.unpack_bases();
        for (i, &base) in bases.iter().enumerate() {
            assert_eq!(packed.base_at(i), base, "position {i}");
        }
    }

    #[test]
    fn code_at_restores_wildcards() {
        let seq = DnaSeq::from_ascii(b"ACGNT").unwrap();
        let packed = PackedSeq::pack(&seq);
        assert_eq!(packed.code_at(3), IupacCode::N);
        assert_eq!(packed.code_at(0), IupacCode::A);
        assert_eq!(packed.code_at(4), IupacCode::T);
    }

    #[test]
    fn serialization_round_trip() {
        for ascii in [&b"ACGTNACGTRYACGT"[..], b"", b"N", b"ACGT"] {
            let seq = DnaSeq::from_ascii(ascii).unwrap();
            let packed = PackedSeq::pack(&seq);
            let bytes = packed.to_bytes();
            let back = PackedSeq::from_bytes(&bytes).unwrap();
            assert_eq!(back, packed);
            assert_eq!(back.unpack(), seq);
        }
    }

    #[test]
    fn from_bytes_rejects_truncation() {
        let seq = DnaSeq::from_ascii(b"ACGTNACGT").unwrap();
        let bytes = PackedSeq::pack(&seq).to_bytes();
        for cut in [0, 4, 7, bytes.len() - 1] {
            assert!(
                PackedSeq::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
    }

    #[test]
    fn from_bytes_rejects_bad_exception() {
        let seq = DnaSeq::from_ascii(b"ACGN").unwrap();
        let mut bytes = PackedSeq::pack(&seq).to_bytes();
        // Exception position (bytes 8..12) beyond the sequence length.
        bytes[8..12].copy_from_slice(&100u32.to_le_bytes());
        assert!(PackedSeq::from_bytes(&bytes).is_err());
    }

    #[test]
    fn from_bytes_rejects_empty_mask() {
        let seq = DnaSeq::from_ascii(b"ACGN").unwrap();
        let mut bytes = PackedSeq::pack(&seq).to_bytes();
        bytes[12] = 0; // the exception's IUPAC mask
        assert!(PackedSeq::from_bytes(&bytes).is_err());
    }

    #[test]
    fn representative_payload_is_plausible() {
        // The payload under a wildcard must be a member of its ambiguity set,
        // so alignment over representatives is meaningful.
        let seq = DnaSeq::from_ascii(b"RYSWKMBDHVN").unwrap();
        let packed = PackedSeq::pack(&seq);
        for (i, code) in seq.iter().enumerate() {
            assert!(code.matches(packed.base_at(i)), "position {i}");
        }
    }
}
