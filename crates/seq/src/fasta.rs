//! FASTA parsing and writing.
//!
//! FASTA was (and remains) the interchange format for nucleotide
//! collections; GenBank distributions of the era that the paper indexes are
//! FASTA-convertible. The reader is streaming — it holds one record at a
//! time — so collections larger than memory can be indexed record by record,
//! matching the paper's setting where the collection does *not* fit in
//! main memory.

use std::io::{BufRead, Write};

use crate::error::SeqError;
use crate::seq::DnaSeq;

/// One FASTA record: `>id description` followed by sequence lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastaRecord {
    /// The identifier: the header up to the first whitespace.
    pub id: String,
    /// The remainder of the header line (may be empty).
    pub description: String,
    /// The sequence.
    pub seq: DnaSeq,
}

impl FastaRecord {
    /// Convenience constructor.
    pub fn new(id: impl Into<String>, seq: DnaSeq) -> FastaRecord {
        FastaRecord {
            id: id.into(),
            description: String::new(),
            seq,
        }
    }
}

/// Streaming FASTA reader: an iterator of records.
pub struct FastaReader<R: BufRead> {
    input: R,
    /// Header line of the *next* record, already consumed from the stream.
    pending_header: Option<String>,
    line: String,
    started: bool,
}

impl<R: BufRead> FastaReader<R> {
    /// Wrap a buffered reader.
    pub fn new(input: R) -> FastaReader<R> {
        FastaReader {
            input,
            pending_header: None,
            line: String::new(),
            started: false,
        }
    }

    fn read_record(&mut self) -> Result<Option<FastaRecord>, SeqError> {
        let header = match self.pending_header.take() {
            Some(h) => h,
            None => {
                // Scan for the first header line, skipping leading blanks.
                loop {
                    self.line.clear();
                    if self.input.read_line(&mut self.line)? == 0 {
                        return Ok(None);
                    }
                    let trimmed = self.line.trim_end();
                    if trimmed.is_empty() {
                        continue;
                    }
                    if !trimmed.starts_with('>') {
                        return Err(SeqError::MissingHeader);
                    }
                    break self.line.trim_end().to_string();
                }
            }
        };
        self.started = true;

        let body = header[1..].trim();
        let (id, description) = match body.split_once(char::is_whitespace) {
            Some((id, rest)) => (id.to_string(), rest.trim().to_string()),
            None => (body.to_string(), String::new()),
        };

        let mut ascii: Vec<u8> = Vec::new();
        loop {
            self.line.clear();
            if self.input.read_line(&mut self.line)? == 0 {
                break;
            }
            let trimmed = self.line.trim_end();
            if trimmed.is_empty() {
                continue;
            }
            if trimmed.starts_with('>') {
                self.pending_header = Some(trimmed.to_string());
                break;
            }
            ascii.extend(trimmed.bytes().filter(|b| !b.is_ascii_whitespace()));
        }

        if ascii.is_empty() {
            return Err(SeqError::EmptyRecord { id });
        }
        let seq = DnaSeq::from_ascii(&ascii)?;
        Ok(Some(FastaRecord {
            id,
            description,
            seq,
        }))
    }
}

impl<R: BufRead> Iterator for FastaReader<R> {
    type Item = Result<FastaRecord, SeqError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.read_record().transpose()
    }
}

/// FASTA writer with configurable line wrapping.
pub struct FastaWriter<W: Write> {
    output: W,
    line_width: usize,
}

impl<W: Write> FastaWriter<W> {
    /// Default 70-column wrapping.
    pub fn new(output: W) -> FastaWriter<W> {
        FastaWriter {
            output,
            line_width: 70,
        }
    }

    /// Custom wrapping width (0 means no wrapping).
    pub fn with_line_width(output: W, line_width: usize) -> FastaWriter<W> {
        FastaWriter { output, line_width }
    }

    /// Write one record.
    pub fn write_record(&mut self, record: &FastaRecord) -> Result<(), SeqError> {
        if record.description.is_empty() {
            writeln!(self.output, ">{}", record.id)?;
        } else {
            writeln!(self.output, ">{} {}", record.id, record.description)?;
        }
        let ascii = record.seq.to_ascii_vec();
        if self.line_width == 0 {
            self.output.write_all(&ascii)?;
            writeln!(self.output)?;
        } else {
            for chunk in ascii.chunks(self.line_width) {
                self.output.write_all(chunk)?;
                writeln!(self.output)?;
            }
        }
        Ok(())
    }

    /// Flush and recover the inner writer.
    pub fn into_inner(mut self) -> Result<W, SeqError> {
        self.output.flush()?;
        Ok(self.output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn read_all(text: &str) -> Result<Vec<FastaRecord>, SeqError> {
        FastaReader::new(Cursor::new(text)).collect()
    }

    #[test]
    fn single_record() {
        let records = read_all(">seq1 a test\nACGT\nACGT\n").unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].id, "seq1");
        assert_eq!(records[0].description, "a test");
        assert_eq!(records[0].seq.to_ascii_vec(), b"ACGTACGT");
    }

    #[test]
    fn multiple_records_and_blank_lines() {
        let records = read_all("\n>a\nAC\nGT\n\n>b desc here\nNNN\n").unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].id, "a");
        assert_eq!(records[0].seq.to_ascii_vec(), b"ACGT");
        assert_eq!(records[1].id, "b");
        assert_eq!(records[1].description, "desc here");
        assert_eq!(records[1].seq.to_ascii_vec(), b"NNN");
    }

    #[test]
    fn missing_header_is_an_error() {
        assert!(matches!(read_all("ACGT\n"), Err(SeqError::MissingHeader)));
    }

    #[test]
    fn empty_record_is_an_error() {
        match read_all(">ghost\n>real\nACGT\n") {
            Err(SeqError::EmptyRecord { id }) => assert_eq!(id, "ghost"),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn empty_input_yields_nothing() {
        assert!(read_all("").unwrap().is_empty());
        assert!(read_all("\n\n").unwrap().is_empty());
    }

    #[test]
    fn invalid_base_surfaces() {
        assert!(matches!(
            read_all(">x\nACXT\n"),
            Err(SeqError::InvalidBase { byte: b'X', .. })
        ));
    }

    #[test]
    fn crlf_input() {
        let records = read_all(">w desc\r\nACGT\r\nTT\r\n").unwrap();
        assert_eq!(records[0].seq.to_ascii_vec(), b"ACGTTT");
        assert_eq!(records[0].description, "desc");
    }

    #[test]
    fn writer_wraps_lines() {
        let record = FastaRecord::new("s", DnaSeq::from_ascii(&[b'A'; 10]).unwrap());
        let mut writer = FastaWriter::with_line_width(Vec::new(), 4);
        writer.write_record(&record).unwrap();
        let text = String::from_utf8(writer.into_inner().unwrap()).unwrap();
        assert_eq!(text, ">s\nAAAA\nAAAA\nAA\n");
    }

    #[test]
    fn writer_no_wrap() {
        let record = FastaRecord::new("s", DnaSeq::from_ascii(&[b'G'; 5]).unwrap());
        let mut writer = FastaWriter::with_line_width(Vec::new(), 0);
        writer.write_record(&record).unwrap();
        let text = String::from_utf8(writer.into_inner().unwrap()).unwrap();
        assert_eq!(text, ">s\nGGGGG\n");
    }

    #[test]
    fn write_read_round_trip() {
        let original = vec![
            FastaRecord::new("one", DnaSeq::from_ascii(b"ACGTACGTNN").unwrap()),
            FastaRecord {
                id: "two".into(),
                description: "with description".into(),
                seq: DnaSeq::from_ascii(b"TTTT").unwrap(),
            },
        ];
        let mut writer = FastaWriter::new(Vec::new());
        for r in &original {
            writer.write_record(r).unwrap();
        }
        let text = writer.into_inner().unwrap();
        let back: Vec<FastaRecord> = FastaReader::new(Cursor::new(text))
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(back, original);
    }
}
