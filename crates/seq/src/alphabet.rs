//! The nucleotide alphabet: the four bases plus the IUPAC ambiguity codes.
//!
//! Nucleotide databases are dominated by the four bases `A`, `C`, `G`, `T`,
//! but real collections (GenBank among them) also contain *wildcards* — the
//! IUPAC ambiguity codes such as `N` ("any base") or `R` ("purine: A or G").
//! The direct-coding compression scheme in [`crate::pack`] stores the four
//! bases in two bits each and records wildcards in an exception list, so the
//! alphabet layer distinguishes the two kinds explicitly.

use crate::error::SeqError;

/// One of the four unambiguous nucleotide bases.
///
/// The discriminants are the 2-bit codes used by the packed representation
/// and by interval (k-mer) coding in the index layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Base {
    /// Adenine.
    A = 0,
    /// Cytosine.
    C = 1,
    /// Guanine.
    G = 2,
    /// Thymine.
    T = 3,
}

impl Base {
    /// All four bases in 2-bit-code order.
    pub const ALL: [Base; 4] = [Base::A, Base::C, Base::G, Base::T];

    /// Construct from a 2-bit code. Values above 3 are masked.
    #[inline]
    pub fn from_code(code: u8) -> Base {
        match code & 0b11 {
            0 => Base::A,
            1 => Base::C,
            2 => Base::G,
            _ => Base::T,
        }
    }

    /// The 2-bit code of this base.
    #[inline]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Parse from an ASCII byte (case-insensitive). `U` is accepted as `T`
    /// so RNA input can be searched against a DNA collection.
    #[inline]
    pub fn from_ascii(byte: u8) -> Option<Base> {
        match byte {
            b'A' | b'a' => Some(Base::A),
            b'C' | b'c' => Some(Base::C),
            b'G' | b'g' => Some(Base::G),
            b'T' | b't' | b'U' | b'u' => Some(Base::T),
            _ => None,
        }
    }

    /// Upper-case ASCII representation.
    #[inline]
    pub fn to_ascii(self) -> u8 {
        match self {
            Base::A => b'A',
            Base::C => b'C',
            Base::G => b'G',
            Base::T => b'T',
        }
    }

    /// Watson–Crick complement.
    #[inline]
    pub fn complement(self) -> Base {
        match self {
            Base::A => Base::T,
            Base::C => Base::G,
            Base::G => Base::C,
            Base::T => Base::A,
        }
    }
}

/// An IUPAC nucleotide code: a base or an ambiguity (wildcard) code.
///
/// The representation is a 4-bit mask with one bit per possible base
/// (`A=1, C=2, G=4, T=8`); an ambiguity code is the union of the bases it
/// may stand for. This makes [`IupacCode::matches`] a single AND.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IupacCode(u8);

impl IupacCode {
    /// Adenine.
    pub const A: IupacCode = IupacCode(0b0001);
    /// Cytosine.
    pub const C: IupacCode = IupacCode(0b0010);
    /// Guanine.
    pub const G: IupacCode = IupacCode(0b0100);
    /// Thymine.
    pub const T: IupacCode = IupacCode(0b1000);
    /// Purine (A or G).
    pub const R: IupacCode = IupacCode(0b0101);
    /// Pyrimidine (C or T).
    pub const Y: IupacCode = IupacCode(0b1010);
    /// Strong (G or C).
    pub const S: IupacCode = IupacCode(0b0110);
    /// Weak (A or T).
    pub const W: IupacCode = IupacCode(0b1001);
    /// Keto (G or T).
    pub const K: IupacCode = IupacCode(0b1100);
    /// Amino (A or C).
    pub const M: IupacCode = IupacCode(0b0011);
    /// Not A (C, G or T).
    pub const B: IupacCode = IupacCode(0b1110);
    /// Not C (A, G or T).
    pub const D: IupacCode = IupacCode(0b1101);
    /// Not G (A, C or T).
    pub const H: IupacCode = IupacCode(0b1011);
    /// Not T (A, C or G).
    pub const V: IupacCode = IupacCode(0b0111);
    /// Any base.
    pub const N: IupacCode = IupacCode(0b1111);

    /// The eleven ambiguity codes (everything except the four plain bases).
    pub const WILDCARDS: [IupacCode; 11] = [
        IupacCode::R,
        IupacCode::Y,
        IupacCode::S,
        IupacCode::W,
        IupacCode::K,
        IupacCode::M,
        IupacCode::B,
        IupacCode::D,
        IupacCode::H,
        IupacCode::V,
        IupacCode::N,
    ];

    /// Parse from an ASCII byte (case-insensitive, `U` as `T`).
    #[inline]
    pub fn from_ascii(byte: u8) -> Option<IupacCode> {
        Some(match byte {
            b'A' | b'a' => IupacCode::A,
            b'C' | b'c' => IupacCode::C,
            b'G' | b'g' => IupacCode::G,
            b'T' | b't' | b'U' | b'u' => IupacCode::T,
            b'R' | b'r' => IupacCode::R,
            b'Y' | b'y' => IupacCode::Y,
            b'S' | b's' => IupacCode::S,
            b'W' | b'w' => IupacCode::W,
            b'K' | b'k' => IupacCode::K,
            b'M' | b'm' => IupacCode::M,
            b'B' | b'b' => IupacCode::B,
            b'D' | b'd' => IupacCode::D,
            b'H' | b'h' => IupacCode::H,
            b'V' | b'v' => IupacCode::V,
            b'N' | b'n' => IupacCode::N,
            _ => return None,
        })
    }

    /// Parse, reporting position information for error messages.
    #[inline]
    pub fn try_from_ascii(byte: u8, position: usize) -> Result<IupacCode, SeqError> {
        IupacCode::from_ascii(byte).ok_or(SeqError::InvalidBase { byte, position })
    }

    /// Upper-case ASCII representation.
    pub fn to_ascii(self) -> u8 {
        const TABLE: [u8; 16] = [
            b'?', b'A', b'C', b'M', b'G', b'R', b'S', b'V', b'T', b'W', b'Y', b'H', b'K', b'D',
            b'B', b'N',
        ];
        TABLE[(self.0 & 0x0f) as usize]
    }

    /// The raw 4-bit base mask.
    #[inline]
    pub fn mask(self) -> u8 {
        self.0
    }

    /// Reconstruct from a 4-bit mask. Returns `None` for the empty mask.
    #[inline]
    pub fn from_mask(mask: u8) -> Option<IupacCode> {
        let mask = mask & 0x0f;
        if mask == 0 {
            None
        } else {
            Some(IupacCode(mask))
        }
    }

    /// Is this one of the four unambiguous bases?
    #[inline]
    pub fn is_base(self) -> bool {
        self.0.count_ones() == 1
    }

    /// Is this an ambiguity (wildcard) code?
    #[inline]
    pub fn is_wildcard(self) -> bool {
        !self.is_base()
    }

    /// Convert to a plain [`Base`] if unambiguous.
    #[inline]
    pub fn to_base(self) -> Option<Base> {
        match self {
            IupacCode::A => Some(Base::A),
            IupacCode::C => Some(Base::C),
            IupacCode::G => Some(Base::G),
            IupacCode::T => Some(Base::T),
            _ => None,
        }
    }

    /// Number of bases this code may stand for (1 for a plain base, 4 for `N`).
    #[inline]
    pub fn cardinality(self) -> u32 {
        self.0.count_ones()
    }

    /// Does `base` fall within this code's ambiguity set?
    #[inline]
    pub fn matches(self, base: Base) -> bool {
        self.0 & (1 << base.code()) != 0
    }

    /// Do two codes share at least one possible base? (Used by wildcard-aware
    /// matching: `N` is compatible with everything.)
    #[inline]
    pub fn compatible(self, other: IupacCode) -> bool {
        self.0 & other.0 != 0
    }

    /// IUPAC complement: complement each base in the ambiguity set.
    pub fn complement(self) -> IupacCode {
        let mut out = 0u8;
        for base in Base::ALL {
            if self.matches(base) {
                out |= 1 << base.complement().code();
            }
        }
        IupacCode(out)
    }

    /// The bases in this code's ambiguity set, in 2-bit-code order.
    pub fn bases(self) -> impl Iterator<Item = Base> {
        let mask = self.0;
        Base::ALL
            .into_iter()
            .filter(move |b| mask & (1 << b.code()) != 0)
    }

    /// A canonical representative base for this code, used by the packed
    /// representation and by the index layer (which treats wildcards as
    /// their representative when forming intervals). Plain bases represent
    /// themselves; wildcards are represented by their lowest-coded base.
    #[inline]
    pub fn representative(self) -> Base {
        debug_assert!(self.0 != 0, "empty IUPAC mask");
        Base::from_code(self.0.trailing_zeros() as u8)
    }
}

impl From<Base> for IupacCode {
    #[inline]
    fn from(base: Base) -> IupacCode {
        IupacCode(1 << base.code())
    }
}

impl std::fmt::Display for Base {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_ascii() as char)
    }
}

impl std::fmt::Display for IupacCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_ascii() as char)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_ascii_round_trip() {
        for base in Base::ALL {
            assert_eq!(Base::from_ascii(base.to_ascii()), Some(base));
            assert_eq!(
                Base::from_ascii(base.to_ascii().to_ascii_lowercase()),
                Some(base)
            );
        }
    }

    #[test]
    fn base_code_round_trip() {
        for base in Base::ALL {
            assert_eq!(Base::from_code(base.code()), base);
        }
    }

    #[test]
    fn uracil_reads_as_thymine() {
        assert_eq!(Base::from_ascii(b'U'), Some(Base::T));
        assert_eq!(Base::from_ascii(b'u'), Some(Base::T));
        assert_eq!(IupacCode::from_ascii(b'U'), Some(IupacCode::T));
    }

    #[test]
    fn complement_is_involutive() {
        for base in Base::ALL {
            assert_eq!(base.complement().complement(), base);
        }
    }

    #[test]
    fn complement_pairs() {
        assert_eq!(Base::A.complement(), Base::T);
        assert_eq!(Base::G.complement(), Base::C);
    }

    #[test]
    fn iupac_ascii_round_trip_all_15() {
        let mut seen = 0;
        for byte in b"ACGTRYSWKMBDHVN" {
            let code = IupacCode::from_ascii(*byte).unwrap();
            assert_eq!(code.to_ascii(), *byte);
            seen += 1;
        }
        assert_eq!(seen, 15);
    }

    #[test]
    fn invalid_bytes_rejected() {
        for byte in [b'X', b'Z', b'!', b' ', b'0', 0u8, 0xff] {
            assert_eq!(IupacCode::from_ascii(byte), None, "byte {byte:?}");
            assert_eq!(Base::from_ascii(byte), None, "byte {byte:?}");
        }
    }

    #[test]
    fn wildcard_classification() {
        assert!(IupacCode::A.is_base());
        assert!(!IupacCode::A.is_wildcard());
        assert!(IupacCode::N.is_wildcard());
        assert!(IupacCode::R.is_wildcard());
        for wc in IupacCode::WILDCARDS {
            assert!(wc.is_wildcard(), "{wc}");
            assert!(wc.to_base().is_none());
        }
    }

    #[test]
    fn n_matches_everything() {
        for base in Base::ALL {
            assert!(IupacCode::N.matches(base));
        }
    }

    #[test]
    fn r_is_purines() {
        assert!(IupacCode::R.matches(Base::A));
        assert!(IupacCode::R.matches(Base::G));
        assert!(!IupacCode::R.matches(Base::C));
        assert!(!IupacCode::R.matches(Base::T));
        assert_eq!(IupacCode::R.cardinality(), 2);
    }

    #[test]
    fn compatibility_is_symmetric_and_reflexive() {
        let all: Vec<IupacCode> = b"ACGTRYSWKMBDHVN"
            .iter()
            .map(|&b| IupacCode::from_ascii(b).unwrap())
            .collect();
        for &x in &all {
            assert!(x.compatible(x));
            for &y in &all {
                assert_eq!(x.compatible(y), y.compatible(x));
            }
        }
    }

    #[test]
    fn iupac_complement_involutive_and_consistent() {
        for byte in b"ACGTRYSWKMBDHVN" {
            let code = IupacCode::from_ascii(*byte).unwrap();
            assert_eq!(code.complement().complement(), code);
            // The complement's set is exactly the complements of the set.
            for base in Base::ALL {
                assert_eq!(
                    code.matches(base),
                    code.complement().matches(base.complement())
                );
            }
        }
    }

    #[test]
    fn iupac_complement_fixed_points() {
        // S (G/C) and W (A/T) and N are their own complements.
        assert_eq!(IupacCode::S.complement(), IupacCode::S);
        assert_eq!(IupacCode::W.complement(), IupacCode::W);
        assert_eq!(IupacCode::N.complement(), IupacCode::N);
        // R (A/G) complements to Y (T/C).
        assert_eq!(IupacCode::R.complement(), IupacCode::Y);
    }

    #[test]
    fn representative_of_plain_base_is_itself() {
        for base in Base::ALL {
            assert_eq!(IupacCode::from(base).representative(), base);
        }
    }

    #[test]
    fn representative_of_wildcard_is_member() {
        for wc in IupacCode::WILDCARDS {
            assert!(wc.matches(wc.representative()));
        }
    }

    #[test]
    fn bases_iterator_matches_cardinality() {
        for byte in b"ACGTRYSWKMBDHVN" {
            let code = IupacCode::from_ascii(*byte).unwrap();
            assert_eq!(code.bases().count() as u32, code.cardinality());
            for base in code.bases() {
                assert!(code.matches(base));
            }
        }
    }

    #[test]
    fn mask_round_trip() {
        for byte in b"ACGTRYSWKMBDHVN" {
            let code = IupacCode::from_ascii(*byte).unwrap();
            assert_eq!(IupacCode::from_mask(code.mask()), Some(code));
        }
        assert_eq!(IupacCode::from_mask(0), None);
    }
}
