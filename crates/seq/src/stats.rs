//! Composition and collection statistics.
//!
//! The index layer needs collection statistics (record count, total bases)
//! to size accumulators and to choose the Golomb parameter for postings
//! compression; the experiment harnesses report them alongside results.

use crate::alphabet::Base;
use crate::seq::DnaSeq;

/// Base composition of a single sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Composition {
    /// Counts of the four bases (by representative for wildcards).
    pub counts: [usize; 4],
    /// Number of wildcard positions.
    pub wildcards: usize,
}

impl Composition {
    /// Measure a sequence.
    pub fn of(seq: &DnaSeq) -> Composition {
        let mut comp = Composition::default();
        for code in seq.iter() {
            comp.counts[code.representative().code() as usize] += 1;
            if code.is_wildcard() {
                comp.wildcards += 1;
            }
        }
        comp
    }

    /// Total length.
    pub fn len(&self) -> usize {
        self.counts.iter().sum()
    }

    /// True if no bases counted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fraction of G+C (0.0 for the empty sequence).
    pub fn gc_fraction(&self) -> f64 {
        let len = self.len();
        if len == 0 {
            return 0.0;
        }
        let gc = self.counts[Base::G.code() as usize] + self.counts[Base::C.code() as usize];
        gc as f64 / len as f64
    }
}

/// Aggregate statistics over a collection of sequences.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SequenceStats {
    /// Number of records.
    pub records: usize,
    /// Total bases over all records.
    pub total_bases: usize,
    /// Shortest record length (0 if there are no records).
    pub min_len: usize,
    /// Longest record length.
    pub max_len: usize,
    /// Total wildcard positions.
    pub wildcards: usize,
}

impl SequenceStats {
    /// Accumulate one record.
    pub fn add(&mut self, seq: &DnaSeq) {
        let len = seq.len();
        if self.records == 0 {
            self.min_len = len;
            self.max_len = len;
        } else {
            self.min_len = self.min_len.min(len);
            self.max_len = self.max_len.max(len);
        }
        self.records += 1;
        self.total_bases += len;
        self.wildcards += seq.wildcard_count();
    }

    /// Measure a whole collection.
    pub fn of<'a>(seqs: impl IntoIterator<Item = &'a DnaSeq>) -> SequenceStats {
        let mut stats = SequenceStats::default();
        for seq in seqs {
            stats.add(seq);
        }
        stats
    }

    /// Mean record length (0.0 if there are no records).
    pub fn mean_len(&self) -> f64 {
        if self.records == 0 {
            0.0
        } else {
            self.total_bases as f64 / self.records as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composition_counts() {
        let seq = DnaSeq::from_ascii(b"AACCCGN").unwrap();
        let comp = Composition::of(&seq);
        assert_eq!(comp.counts[Base::A.code() as usize], 3); // N represents as A
        assert_eq!(comp.counts[Base::C.code() as usize], 3);
        assert_eq!(comp.counts[Base::G.code() as usize], 1);
        assert_eq!(comp.counts[Base::T.code() as usize], 0);
        assert_eq!(comp.wildcards, 1);
        assert_eq!(comp.len(), 7);
    }

    #[test]
    fn gc_fraction() {
        let comp = Composition::of(&DnaSeq::from_ascii(b"GGCC").unwrap());
        assert!((comp.gc_fraction() - 1.0).abs() < 1e-12);
        let comp = Composition::of(&DnaSeq::from_ascii(b"ATGC").unwrap());
        assert!((comp.gc_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(Composition::default().gc_fraction(), 0.0);
    }

    #[test]
    fn stats_aggregate() {
        let seqs = [
            DnaSeq::from_ascii(b"ACGT").unwrap(),
            DnaSeq::from_ascii(b"AANAA").unwrap(),
            DnaSeq::from_ascii(b"GG").unwrap(),
        ];
        let stats = SequenceStats::of(seqs.iter());
        assert_eq!(stats.records, 3);
        assert_eq!(stats.total_bases, 11);
        assert_eq!(stats.min_len, 2);
        assert_eq!(stats.max_len, 5);
        assert_eq!(stats.wildcards, 1);
        assert!((stats.mean_len() - 11.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats() {
        let stats = SequenceStats::default();
        assert_eq!(stats.mean_len(), 0.0);
        assert_eq!(stats.min_len, 0);
    }
}
