//! Low-complexity detection and masking (a DUST-style filter).
//!
//! Low-complexity sequence — homopolymer runs, microsatellites — is the
//! enemy of interval indexing twice over: it bloats the index (addressed
//! by *stopping*, on the collection side) and it floods coarse search
//! with meaningless hits when the *query* contains it. The standard
//! defence on the query side is masking: detect windows whose triplet
//! composition is far more repetitive than chance and exclude them from
//! seeding.
//!
//! The score is the classic DUST statistic: over a window of `w` bases
//! with triplet counts `c_t`,
//!
//! ```text
//! score = Σ_t c_t (c_t − 1) / 2  ÷  (w − 3)
//! ```
//!
//! A random window scores ≈ 0.5; a pure homopolymer window of length 64
//! scores ≈ 31. The conventional threshold is 2.

use std::ops::Range;

use crate::alphabet::Base;

/// Parameters of the masking filter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DustParams {
    /// Window length in bases (≥ 4).
    pub window: usize,
    /// Windows scoring above this are masked (2.0 is the classic value).
    pub threshold: f64,
}

impl Default for DustParams {
    fn default() -> DustParams {
        DustParams {
            window: 64,
            threshold: 2.0,
        }
    }
}

/// The DUST score of one window (any slice of ≥ 4 bases; shorter slices
/// score 0).
pub fn dust_score(window: &[Base]) -> f64 {
    if window.len() < 4 {
        return 0.0;
    }
    let mut counts = [0u32; 64];
    for triple in window.windows(3) {
        let code = ((triple[0].code() as usize) << 4)
            | ((triple[1].code() as usize) << 2)
            | triple[2].code() as usize;
        counts[code] += 1;
    }
    let repeats: u64 = counts
        .iter()
        .map(|&c| (c as u64 * (c as u64).saturating_sub(1)) / 2)
        .sum();
    repeats as f64 / (window.len() - 3) as f64
}

/// Find the low-complexity regions of `bases`: windows (stepped by half a
/// window) scoring above the threshold, merged into maximal ranges whose
/// boundaries are then trimmed back to the repetitive core (a window that
/// straddles a repeat edge scores high even though half of it is unique
/// sequence; without trimming that unique half would be lost to seeding).
pub fn mask_regions(bases: &[Base], params: &DustParams) -> Vec<Range<usize>> {
    let window = params.window.max(4);
    let mut regions: Vec<Range<usize>> = Vec::new();
    if bases.len() < 4 {
        return regions;
    }
    let step = (window / 2).max(1);
    let mut start = 0usize;
    loop {
        let end = (start + window).min(bases.len());
        if dust_score(&bases[start..end]) > params.threshold {
            match regions.last_mut() {
                Some(last) if last.end >= start => last.end = end,
                _ => regions.push(start..end),
            }
        }
        if end == bases.len() {
            break;
        }
        start += step;
    }

    // Trim each region's edges: advance past leading/trailing stretches
    // whose local sub-window is not itself repetitive. The sub-window
    // must be long enough that the longest repeat period we care about
    // (6, per the unit library) still scores above threshold: with 36
    // bases a period-6 repeat holds ~5–6 copies of each of its 6
    // triplets, scoring ≈ 2.4.
    const SUB: usize = 36;
    const TRIM_STEP: usize = 6;
    regions.retain_mut(|region| {
        while region.len() > SUB
            && dust_score(&bases[region.start..region.start + SUB]) <= params.threshold
        {
            region.start += TRIM_STEP;
        }
        while region.len() > SUB
            && dust_score(&bases[region.end - SUB..region.end]) <= params.threshold
        {
            region.end -= TRIM_STEP;
        }
        // A region that trims to a sub-window that still is not
        // repetitive was a boundary artefact.
        region.len() > SUB || dust_score(&bases[region.clone()]) > params.threshold
    });
    regions
}

/// Fraction of `bases` covered by masked regions.
pub fn masked_fraction(bases: &[Base], params: &DustParams) -> f64 {
    if bases.is_empty() {
        return 0.0;
    }
    let masked: usize = mask_regions(bases, params).iter().map(|r| r.len()).sum();
    masked as f64 / bases.len() as f64
}

/// True if `position` lies inside any of the (sorted, disjoint) `regions`.
#[inline]
pub fn is_masked(regions: &[Range<usize>], position: usize) -> bool {
    // Regions are few; partition_point finds the candidate region.
    let idx = regions.partition_point(|r| r.end <= position);
    regions.get(idx).is_some_and(|r| r.contains(&position))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::random_seq;
    use crate::seq::DnaSeq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bases(ascii: &[u8]) -> Vec<Base> {
        DnaSeq::from_ascii(ascii).unwrap().representative_bases()
    }

    #[test]
    fn homopolymer_scores_high() {
        let poly_a = bases(&[b'A'; 64]);
        assert!(dust_score(&poly_a) > 25.0, "{}", dust_score(&poly_a));
    }

    #[test]
    fn random_scores_low() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10 {
            let w = random_seq(&mut rng, 64, 0.5, 0.0).representative_bases();
            let score = dust_score(&w);
            assert!(score < 2.0, "random window scored {score}");
        }
    }

    #[test]
    fn dinucleotide_repeat_scores_high() {
        let acac: Vec<Base> = bases(&b"AC".repeat(32));
        assert!(dust_score(&acac) > 10.0);
    }

    #[test]
    fn short_windows_score_zero() {
        assert_eq!(dust_score(&bases(b"ACG")), 0.0);
        assert_eq!(dust_score(&[]), 0.0);
    }

    #[test]
    fn masks_planted_repeat_only() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seq = random_seq(&mut rng, 300, 0.5, 0.0).representative_bases();
        // Splice a 120-base poly-T run into the middle.
        for slot in &mut seq[120..240] {
            *slot = Base::T;
        }
        let regions = mask_regions(&seq, &DustParams::default());
        assert_eq!(regions.len(), 1, "{regions:?}");
        let region = &regions[0];
        // The region covers the repeat (window-step granularity allowed).
        assert!(
            region.start <= 120 + 32 && region.end >= 240 - 32,
            "{region:?}"
        );
        // The random flanks are not fully masked.
        let masked = masked_fraction(&seq, &DustParams::default());
        assert!(masked < 0.7, "masked fraction {masked}");
        assert!(masked > 0.2);
    }

    #[test]
    fn random_sequence_unmasked() {
        let mut rng = StdRng::seed_from_u64(12);
        let seq = random_seq(&mut rng, 1000, 0.5, 0.0).representative_bases();
        assert_eq!(masked_fraction(&seq, &DustParams::default()), 0.0);
    }

    #[test]
    fn adjacent_windows_merge() {
        let long_repeat = bases(&b"AG".repeat(200));
        let regions = mask_regions(&long_repeat, &DustParams::default());
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0], 0..400);
    }

    #[test]
    fn is_masked_lookup() {
        let regions = vec![10..20, 40..60];
        assert!(!is_masked(&regions, 9));
        assert!(is_masked(&regions, 10));
        assert!(is_masked(&regions, 19));
        assert!(!is_masked(&regions, 20));
        assert!(is_masked(&regions, 59));
        assert!(!is_masked(&regions, 60));
        assert!(!is_masked(&[], 5));
    }

    #[test]
    fn empty_input() {
        assert!(mask_regions(&[], &DustParams::default()).is_empty());
        assert_eq!(masked_fraction(&[], &DustParams::default()), 0.0);
    }
}
