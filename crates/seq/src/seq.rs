//! The owned DNA sequence type used throughout the system.

use crate::alphabet::{Base, IupacCode};
use crate::error::SeqError;

/// An owned nucleotide sequence over the IUPAC alphabet.
///
/// The in-memory working representation is one [`IupacCode`] per position;
/// the compact storage representation lives in [`crate::pack::PackedSeq`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct DnaSeq {
    codes: Vec<IupacCode>,
}

impl DnaSeq {
    /// An empty sequence.
    pub fn new() -> DnaSeq {
        DnaSeq { codes: Vec::new() }
    }

    /// An empty sequence with reserved capacity.
    pub fn with_capacity(capacity: usize) -> DnaSeq {
        DnaSeq {
            codes: Vec::with_capacity(capacity),
        }
    }

    /// Parse from ASCII. Case-insensitive; accepts the 15 IUPAC codes and
    /// `U` (read as `T`). Whitespace is *not* accepted here — FASTA line
    /// handling belongs to [`crate::fasta`].
    pub fn from_ascii(ascii: &[u8]) -> Result<DnaSeq, SeqError> {
        let mut codes = Vec::with_capacity(ascii.len());
        for (position, &byte) in ascii.iter().enumerate() {
            codes.push(IupacCode::try_from_ascii(byte, position)?);
        }
        Ok(DnaSeq { codes })
    }

    /// Build from a slice of plain bases.
    pub fn from_bases(bases: &[Base]) -> DnaSeq {
        DnaSeq {
            codes: bases.iter().map(|&b| IupacCode::from(b)).collect(),
        }
    }

    /// Build from IUPAC codes.
    pub fn from_codes(codes: Vec<IupacCode>) -> DnaSeq {
        DnaSeq { codes }
    }

    /// Sequence length in bases.
    #[inline]
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Is the sequence empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The IUPAC codes of the sequence.
    #[inline]
    pub fn codes(&self) -> &[IupacCode] {
        &self.codes
    }

    /// The code at `index`.
    #[inline]
    pub fn get(&self, index: usize) -> Option<IupacCode> {
        self.codes.get(index).copied()
    }

    /// Append a code.
    #[inline]
    pub fn push(&mut self, code: IupacCode) {
        self.codes.push(code);
    }

    /// Append a plain base.
    #[inline]
    pub fn push_base(&mut self, base: Base) {
        self.codes.push(IupacCode::from(base));
    }

    /// Upper-case ASCII rendering of the sequence.
    pub fn to_ascii_vec(&self) -> Vec<u8> {
        self.codes.iter().map(|c| c.to_ascii()).collect()
    }

    /// The sequence as representative plain bases (wildcards collapse to
    /// their canonical representative — see [`IupacCode::representative`]).
    /// This is the view the interval extractor in the index layer uses, and
    /// it matches the behaviour of the packed 2-bit payload.
    pub fn representative_bases(&self) -> Vec<Base> {
        self.codes.iter().map(|c| c.representative()).collect()
    }

    /// Number of wildcard positions.
    pub fn wildcard_count(&self) -> usize {
        self.codes.iter().filter(|c| c.is_wildcard()).count()
    }

    /// A copy of positions `range.start..range.end`.
    pub fn subseq(&self, range: std::ops::Range<usize>) -> DnaSeq {
        DnaSeq {
            codes: self.codes[range].to_vec(),
        }
    }

    /// The reverse complement of the sequence (IUPAC-aware).
    pub fn reverse_complement(&self) -> DnaSeq {
        DnaSeq {
            codes: self.codes.iter().rev().map(|c| c.complement()).collect(),
        }
    }

    /// Concatenate `other` onto the end of this sequence.
    pub fn extend_from(&mut self, other: &DnaSeq) {
        self.codes.extend_from_slice(&other.codes);
    }

    /// Iterate over the codes.
    pub fn iter(&self) -> impl Iterator<Item = IupacCode> + '_ {
        self.codes.iter().copied()
    }
}

impl std::ops::Index<usize> for DnaSeq {
    type Output = IupacCode;

    #[inline]
    fn index(&self, index: usize) -> &IupacCode {
        &self.codes[index]
    }
}

impl std::fmt::Display for DnaSeq {
    /// Renders as upper-case ASCII; long sequences are elided in the middle.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        const HEAD: usize = 32;
        if self.len() <= 2 * HEAD {
            for code in &self.codes {
                write!(f, "{code}")?;
            }
        } else {
            for code in &self.codes[..HEAD] {
                write!(f, "{code}")?;
            }
            write!(f, "...[{} bases]...", self.len() - 2 * HEAD)?;
            for code in &self.codes[self.len() - HEAD..] {
                write!(f, "{code}")?;
            }
        }
        Ok(())
    }
}

impl FromIterator<Base> for DnaSeq {
    fn from_iter<I: IntoIterator<Item = Base>>(iter: I) -> DnaSeq {
        DnaSeq {
            codes: iter.into_iter().map(IupacCode::from).collect(),
        }
    }
}

impl FromIterator<IupacCode> for DnaSeq {
    fn from_iter<I: IntoIterator<Item = IupacCode>>(iter: I) -> DnaSeq {
        DnaSeq {
            codes: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_round_trip() {
        let seq = DnaSeq::from_ascii(b"ACGTNRYacgt").unwrap();
        assert_eq!(seq.len(), 11);
        assert_eq!(seq.to_ascii_vec(), b"ACGTNRYACGT");
    }

    #[test]
    fn invalid_ascii_reports_position() {
        match DnaSeq::from_ascii(b"ACGTXACGT") {
            Err(SeqError::InvalidBase {
                byte: b'X',
                position: 4,
            }) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn empty_sequence() {
        let seq = DnaSeq::from_ascii(b"").unwrap();
        assert!(seq.is_empty());
        assert_eq!(seq.len(), 0);
        assert_eq!(seq.reverse_complement(), seq);
    }

    #[test]
    fn reverse_complement_simple() {
        let seq = DnaSeq::from_ascii(b"AACGT").unwrap();
        assert_eq!(seq.reverse_complement().to_ascii_vec(), b"ACGTT");
    }

    #[test]
    fn reverse_complement_involutive() {
        let seq = DnaSeq::from_ascii(b"ACGTNRSWKMBDHVY").unwrap();
        assert_eq!(seq.reverse_complement().reverse_complement(), seq);
    }

    #[test]
    fn reverse_complement_iupac() {
        // R (A/G) complements to Y (C/T).
        let seq = DnaSeq::from_ascii(b"RN").unwrap();
        assert_eq!(seq.reverse_complement().to_ascii_vec(), b"NY");
    }

    #[test]
    fn subseq_extracts_range() {
        let seq = DnaSeq::from_ascii(b"ACGTACGT").unwrap();
        assert_eq!(seq.subseq(2..6).to_ascii_vec(), b"GTAC");
    }

    #[test]
    fn wildcard_count() {
        let seq = DnaSeq::from_ascii(b"ACGTNANRT").unwrap();
        assert_eq!(seq.wildcard_count(), 3);
    }

    #[test]
    fn representative_bases_length_preserved() {
        let seq = DnaSeq::from_ascii(b"ACGTN").unwrap();
        let bases = seq.representative_bases();
        assert_eq!(bases.len(), 5);
        assert_eq!(bases[0], Base::A);
        assert_eq!(bases[4], IupacCode::N.representative());
    }

    #[test]
    fn display_short_and_elided() {
        let short = DnaSeq::from_ascii(b"ACGT").unwrap();
        assert_eq!(short.to_string(), "ACGT");
        let long = DnaSeq::from_bases(&[Base::A; 200]);
        let shown = long.to_string();
        assert!(shown.contains("[136 bases]"), "{shown}");
    }

    #[test]
    fn from_iterators() {
        let from_bases: DnaSeq = [Base::A, Base::C].into_iter().collect();
        assert_eq!(from_bases.to_ascii_vec(), b"AC");
        let from_codes: DnaSeq = [IupacCode::N, IupacCode::G].into_iter().collect();
        assert_eq!(from_codes.to_ascii_vec(), b"NG");
    }

    #[test]
    fn extend_concatenates() {
        let mut a = DnaSeq::from_ascii(b"AC").unwrap();
        let b = DnaSeq::from_ascii(b"GT").unwrap();
        a.extend_from(&b);
        assert_eq!(a.to_ascii_vec(), b"ACGT");
    }

    #[test]
    fn index_operator() {
        let seq = DnaSeq::from_ascii(b"ACGT").unwrap();
        assert_eq!(seq[2], IupacCode::G);
    }
}
