//! Fixed-length substring (k-mer) packing.
//!
//! The paper's indexing unit is the *interval*: a fixed-length substring of
//! a sequence. With a four-letter alphabet an interval of length `k ≤ 32`
//! packs into a `u64` (2 bits per base), so interval identity is integer
//! equality and the interval vocabulary is at most `4^k`. Both the index
//! layer (interval extraction) and the alignment heuristics (FASTA k-tuple
//! and BLAST word lookup) share this representation.
//!
//! Extraction runs over *representative bases* (wildcards collapse to a
//! canonical member of their ambiguity set, as in the packed store), so a
//! sequence of length `L` yields exactly `L - k + 1` intervals.

use crate::alphabet::Base;

/// Maximum supported interval length (2 bits per base in a `u64`).
pub const MAX_K: usize = 32;

/// Pack `bases` (length ≤ [`MAX_K`]) into an integer code: the first base
/// occupies the most significant position, so codes sort lexicographically.
#[inline]
pub fn pack_kmer(bases: &[Base]) -> u64 {
    debug_assert!(bases.len() <= MAX_K);
    let mut code = 0u64;
    for &b in bases {
        code = (code << 2) | b.code() as u64;
    }
    code
}

/// Unpack a code produced by [`pack_kmer`] back into `k` bases.
pub fn unpack_kmer(code: u64, k: usize) -> Vec<Base> {
    debug_assert!(k <= MAX_K);
    (0..k)
        .rev()
        .map(|i| Base::from_code((code >> (2 * i)) as u8))
        .collect()
}

/// Number of distinct intervals of length `k` (the vocabulary bound `4^k`).
#[inline]
pub fn vocabulary_size(k: usize) -> u64 {
    debug_assert!(k <= MAX_K);
    if k >= 32 {
        u64::MAX // 4^32 does not fit; callers treat ≥32 as unbounded
    } else {
        1u64 << (2 * k)
    }
}

/// Iterator over all overlapping k-mer codes of a base slice, produced by
/// a rolling update (one shift and mask per position).
pub struct KmerIter<'a> {
    bases: &'a [Base],
    k: usize,
    mask: u64,
    /// Code of the window ending just before `next`; valid once primed.
    code: u64,
    next: usize,
}

impl<'a> KmerIter<'a> {
    /// Iterate over `bases` with window length `k` (1..=[`MAX_K`]).
    pub fn new(bases: &'a [Base], k: usize) -> KmerIter<'a> {
        assert!((1..=MAX_K).contains(&k), "k out of range");
        let mask = if k == 32 {
            u64::MAX
        } else {
            (1u64 << (2 * k)) - 1
        };
        KmerIter {
            bases,
            k,
            mask,
            code: 0,
            next: 0,
        }
    }
}

impl Iterator for KmerIter<'_> {
    /// `(start_position, packed_code)` for each window.
    type Item = (usize, u64);

    fn next(&mut self) -> Option<(usize, u64)> {
        if self.next == 0 {
            // Prime the first full window.
            if self.bases.len() < self.k {
                self.next = usize::MAX; // exhausted
                return None;
            }
            self.code = pack_kmer(&self.bases[..self.k]);
            self.next = self.k;
            return Some((0, self.code));
        }
        if self.next == usize::MAX || self.next >= self.bases.len() {
            return None;
        }
        self.code = ((self.code << 2) | self.bases[self.next].code() as u64) & self.mask;
        self.next += 1;
        Some((self.next - self.k, self.code))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // Windows produced so far = next - k + 1 (0 before priming), out
        // of len - k + 1 total.
        let remaining = if self.next == usize::MAX {
            0
        } else if self.next == 0 {
            (self.bases.len() + 1).saturating_sub(self.k)
        } else {
            self.bases.len() - self.next
        };
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for KmerIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::DnaSeq;

    fn bases(ascii: &[u8]) -> Vec<Base> {
        DnaSeq::from_ascii(ascii).unwrap().representative_bases()
    }

    #[test]
    fn pack_unpack_round_trip() {
        for ascii in [
            &b"A"[..],
            b"ACGT",
            b"TTTT",
            b"GATTACA",
            b"ACGTACGTACGTACGTACGTACGTACGTACGT",
        ] {
            let b = bases(ascii);
            assert_eq!(unpack_kmer(pack_kmer(&b), b.len()), b);
        }
    }

    #[test]
    fn codes_sort_lexicographically() {
        let a = pack_kmer(&bases(b"AACG"));
        let b = pack_kmer(&bases(b"AACT"));
        let c = pack_kmer(&bases(b"CAAA"));
        assert!(a < b && b < c);
    }

    #[test]
    fn known_code() {
        // A=0, C=1, G=2, T=3; "ACGT" = 0b00_01_10_11 = 0x1B.
        assert_eq!(pack_kmer(&bases(b"ACGT")), 0x1b);
    }

    #[test]
    fn vocabulary_sizes() {
        assert_eq!(vocabulary_size(1), 4);
        assert_eq!(vocabulary_size(8), 65_536);
        assert_eq!(vocabulary_size(12), 16_777_216);
        assert_eq!(vocabulary_size(0), 1);
        assert_eq!(vocabulary_size(32), u64::MAX);
    }

    #[test]
    fn iterator_matches_naive_extraction() {
        let b = bases(b"ACGTACGTTGCA");
        for k in 1..=b.len() {
            let rolling: Vec<(usize, u64)> = KmerIter::new(&b, k).collect();
            let naive: Vec<(usize, u64)> = (0..=b.len() - k)
                .map(|i| (i, pack_kmer(&b[i..i + k])))
                .collect();
            assert_eq!(rolling, naive, "k = {k}");
        }
    }

    #[test]
    fn short_input_yields_nothing() {
        let b = bases(b"ACG");
        assert_eq!(KmerIter::new(&b, 4).count(), 0);
        assert_eq!(KmerIter::new(&[], 4).count(), 0);
    }

    #[test]
    fn exact_size_hint() {
        let b = bases(b"ACGTACGT");
        let mut iter = KmerIter::new(&b, 3);
        assert_eq!(iter.len(), 6);
        iter.next();
        assert_eq!(iter.len(), 5);
        for _ in iter.by_ref() {}
        assert_eq!(iter.len(), 0);
    }

    #[test]
    fn k32_window_works() {
        let b = bases(&[b'G'; 40]);
        let codes: Vec<(usize, u64)> = KmerIter::new(&b, 32).collect();
        assert_eq!(codes.len(), 9);
        // All windows identical: G repeated.
        let expect = pack_kmer(&b[..32]);
        assert!(codes.iter().all(|&(_, c)| c == expect));
    }

    #[test]
    #[should_panic(expected = "k out of range")]
    fn k_zero_rejected() {
        KmerIter::new(&[], 0);
    }
}
