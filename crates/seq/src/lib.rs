//! # nucdb-seq
//!
//! Sequence substrate for the `nucdb` partitioned-search system: the
//! nucleotide alphabet (including IUPAC wildcard codes), an owned sequence
//! type, lossless 2-bit *direct coding* compression of nucleotide data
//! (the scheme the CAFE papers call "direct coding": two bits per base with
//! an exception list for wildcards, giving compact storage and extremely
//! fast decompression), FASTA parsing and writing, and deterministic
//! synthetic collection generation with planted homolog families.
//!
//! Everything in this crate is independent of indexing and alignment; the
//! higher layers (`nucdb-index`, `nucdb-align`, `nucdb`) build on it.
//!
//! ## Quick example
//!
//! ```
//! use nucdb_seq::{DnaSeq, PackedSeq};
//!
//! let seq = DnaSeq::from_ascii(b"ACGTNACGT").unwrap();
//! let packed = PackedSeq::pack(&seq);
//! assert_eq!(packed.unpack(), seq);
//! assert!(packed.packed_bytes() < seq.len());
//! ```

#![warn(missing_docs)]

pub mod alphabet;
pub mod complexity;
pub mod error;
pub mod fasta;
pub mod kmer;
pub mod pack;
pub mod random;
pub mod seq;
pub mod stats;

pub use alphabet::{Base, IupacCode};
pub use complexity::DustParams;
pub use error::SeqError;
pub use fasta::{FastaReader, FastaRecord, FastaWriter};
pub use kmer::{pack_kmer, unpack_kmer, KmerIter};
pub use pack::PackedSeq;
pub use random::{CollectionSpec, HomologFamily, MutationModel, SyntheticCollection};
pub use seq::DnaSeq;
pub use stats::{Composition, SequenceStats};
