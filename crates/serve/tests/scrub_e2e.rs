//! End-to-end tests for the background scrubber and readiness gate:
//! `/readyz` flips only after the first structural scrub pass, injected
//! on-disk corruption bumps `nucdb_scrub_errors_total`, search answers
//! are bit-identical with the scrubber on and off, and the
//! flight-recorder occupancy gauges appear on `/metrics`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use nucdb::{Database, DbConfig, IndexVariant, OnDiskStore, SearchParams, StoreVariant};
use nucdb_index::OnDiskIndex;
use nucdb_obs::json::{self, Value};
use nucdb_obs::{Forensics, ForensicsConfig, MetricsRegistry};
use nucdb_seq::random::{CollectionSpec, MutationModel, SyntheticCollection};
use nucdb_serve::{start, ServeConfig, ServerHandle};

static DIR_NONCE: AtomicU64 = AtomicU64::new(0);

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "nucdb_scrub_e2e_{name}_{}_{}",
        std::process::id(),
        DIR_NONCE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn collection() -> SyntheticCollection {
    let mut spec = CollectionSpec::sized(0xD15C, 60_000);
    spec.mutation = MutationModel::standard(0.06);
    SyntheticCollection::generate(&spec)
}

/// Persist `coll` as an on-disk index + store pair in `dir`.
fn persist(coll: &SyntheticCollection, dir: &PathBuf) -> (PathBuf, PathBuf) {
    let idx = dir.join("idx.nucidx");
    let sto = dir.join("sto.nucsto");
    let db = Database::build(
        coll.records.iter().map(|r| (r.id.clone(), r.seq.clone())),
        &DbConfig::default(),
    );
    let db = db.with_disk_index(&idx).unwrap();
    let _ = db.with_disk_store(&sto).unwrap();
    (idx, sto)
}

fn open_disk_db(idx: &PathBuf, sto: &PathBuf) -> Database {
    Database::from_variants(
        StoreVariant::Disk(OnDiskStore::open(sto).unwrap()),
        IndexVariant::Disk(OnDiskIndex::open(idx).unwrap()),
    )
}

fn start_server(db: Database, scrub_bytes_per_sec: u64) -> ServerHandle {
    let config = ServeConfig {
        threads: 2,
        scrub_bytes_per_sec,
        ..ServeConfig::default()
    };
    start(
        "127.0.0.1:0",
        db,
        MetricsRegistry::new(),
        SearchParams::default(),
        config,
    )
    .unwrap()
}

/// One raw HTTP/1.1 exchange. Returns (status, body).
fn http(
    addr: std::net::SocketAddr,
    request_head: &str,
    body: &[u8],
) -> std::io::Result<(u16, Vec<u8>)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.write_all(request_head.as_bytes())?;
    stream.write_all(body)?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("no header terminator");
    let head = std::str::from_utf8(&raw[..head_end]).expect("non-UTF8 head");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("bad status line");
    Ok((status, raw[head_end + 4..].to_vec()))
}

fn get(addr: std::net::SocketAddr, path: &str) -> (u16, Vec<u8>) {
    let head = format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    http(addr, &head, &[]).unwrap()
}

fn post_search(addr: std::net::SocketAddr, body: &str) -> (u16, Vec<u8>) {
    let head = format!(
        "POST /search HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    http(addr, &head, body.as_bytes()).unwrap()
}

fn wait_until(what: &str, timeout: Duration, mut check: impl FnMut() -> bool) {
    let start = Instant::now();
    while start.elapsed() < timeout {
        if check() {
            return;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    panic!("timed out after {timeout:?} waiting for {what}");
}

#[test]
fn readyz_gates_on_the_first_structural_scrub_pass() {
    let coll = collection();
    let dir = temp_dir("readyz");
    let (idx, sto) = persist(&coll, &dir);

    // A 1-byte/sec budget makes the header pass take hours: the server
    // must report not-ready for as long as we care to look.
    let starved = start_server(open_disk_db(&idx, &sto), 1);
    assert!(!starved.is_ready());
    let (status, body) = get(starved.addr(), "/readyz");
    assert_eq!(status, 503, "starved scrubber must hold /readyz at 503");
    assert!(std::str::from_utf8(&body).unwrap().contains("not ready"));
    // But liveness stays green throughout.
    assert_eq!(get(starved.addr(), "/healthz").0, 200);
    starved.shutdown();

    // A realistic budget completes the header/TOC pass almost at once.
    let healthy = start_server(open_disk_db(&idx, &sto), 64 << 20);
    wait_until("readyz to flip", Duration::from_secs(10), || {
        healthy.is_ready()
    });
    assert_eq!(get(healthy.addr(), "/readyz").0, 200);
    healthy.shutdown();

    // Scrubber disabled: nothing to wait for, ready immediately.
    let unscrubbed = start_server(open_disk_db(&idx, &sto), 0);
    assert!(unscrubbed.is_ready());
    assert_eq!(get(unscrubbed.addr(), "/readyz").0, 200);
    unscrubbed.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scrub_finds_corruption_the_query_path_has_not_touched() {
    let coll = collection();
    let dir = temp_dir("corrupt");
    let (idx, sto) = persist(&coll, &dir);

    // Damage one payload byte on disk, far from the header so open()
    // still succeeds — exactly the cold-region rot the scrubber exists
    // to find.
    let blob_start = OnDiskIndex::open(&idx).unwrap().blob_start();
    let mut bytes = std::fs::read(&idx).unwrap();
    let victim = blob_start as usize + (bytes.len() - blob_start as usize) / 2;
    bytes[victim] ^= 0x40;
    std::fs::write(&idx, &bytes).unwrap();

    let handle = start_server(open_disk_db(&idx, &sto), 256 << 20);
    wait_until(
        "scrubber to find the flipped byte",
        Duration::from_secs(30),
        || handle.scrub_errors() > 0,
    );

    // The finding is visible on /metrics and in /stats' scrub block.
    let (status, body) = get(handle.addr(), "/metrics");
    assert_eq!(status, 200);
    let text = std::str::from_utf8(&body).unwrap();
    let errors_line = text
        .lines()
        .find(|l| l.starts_with("nucdb_scrub_errors_total"))
        .expect("nucdb_scrub_errors_total missing from /metrics");
    let count: f64 = errors_line
        .split_whitespace()
        .last()
        .unwrap()
        .parse()
        .unwrap();
    assert!(count >= 1.0, "bad errors line: {errors_line}");
    assert!(text.contains("nucdb_scrub_bytes_total"));

    let (_, body) = get(handle.addr(), "/stats");
    let stats = json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    let scrub = stats.get("scrub").expect("no scrub block in /stats");
    assert_eq!(scrub.get("enabled"), Some(&Value::Bool(true)));
    let last_error = scrub.get("last_error").expect("no last_error field");
    assert!(
        matches!(last_error, Value::Str(s) if s.contains("index")),
        "unhelpful last_error: {}",
        last_error.render()
    );
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn answers_are_bit_identical_with_the_scrubber_running() {
    let coll = collection();
    let dir = temp_dir("identity");
    let (idx, sto) = persist(&coll, &dir);

    let with_scrub = start_server(open_disk_db(&idx, &sto), 64 << 20);
    let without = start_server(open_disk_db(&idx, &sto), 0);
    wait_until("first scrub cycle", Duration::from_secs(10), || {
        with_scrub.is_ready()
    });

    for family in 0..coll.families.len().min(4) {
        let query = coll.query_for_family(family, 0.5, &MutationModel::standard(0.06));
        let fasta: String = format!(
            ">q{family}\n{}\n",
            query
                .representative_bases()
                .iter()
                .map(|b| b.to_ascii() as char)
                .collect::<String>()
        );
        let (status_a, body_a) = post_search(with_scrub.addr(), &fasta);
        let (status_b, body_b) = post_search(without.addr(), &fasta);
        assert_eq!((status_a, status_b), (200, 200));
        // Per-query stats carry wall times, which legitimately differ
        // between servers; the ranked answers must not.
        let results = |body: &[u8]| -> Vec<String> {
            let doc = json::parse(std::str::from_utf8(body).unwrap()).unwrap();
            let Some(Value::Arr(per_query)) = doc.get("results") else {
                panic!("no results array in {}", doc.render());
            };
            per_query
                .iter()
                .map(|q| q.get("answers").expect("no answers array").render())
                .collect()
        };
        assert_eq!(
            results(&body_a),
            results(&body_b),
            "family {family}: scrubber changed an answer"
        );
    }
    with_scrub.shutdown();
    without.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stats_exposes_index_stats_and_metrics_expose_flight_occupancy() {
    let coll = collection();
    let dir = temp_dir("gauges");
    let (idx, sto) = persist(&coll, &dir);
    let mut db = open_disk_db(&idx, &sto);
    db.set_forensics(Forensics::new(ForensicsConfig {
        recent_capacity: 4,
        slow_capacity: 2,
        ..ForensicsConfig::default()
    }));
    let handle = start_server(db, 64 << 20);

    // /stats carries the on-disk index shape.
    let (_, body) = get(handle.addr(), "/stats");
    let stats = json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    let index_stats = stats.get("index_stats").expect("no index_stats block");
    assert_eq!(
        index_stats.get("format").and_then(Value::as_str),
        Some("NUCIDX03")
    );
    assert!(index_stats.get("distinct_intervals").is_some());

    // Six searches through a capacity-4 recent ring: occupancy pins at
    // 4 and the eviction counter records the overflow.
    let query = coll.query_for_family(0, 0.5, &MutationModel::standard(0.06));
    let fasta = format!(
        ">q\n{}\n",
        query
            .representative_bases()
            .iter()
            .map(|b| b.to_ascii() as char)
            .collect::<String>()
    );
    for _ in 0..6 {
        assert_eq!(post_search(handle.addr(), &fasta).0, 200);
    }
    let (_, body) = get(handle.addr(), "/metrics");
    let text = std::str::from_utf8(&body).unwrap();
    let metric = |name: &str| -> f64 {
        text.lines()
            .find(|l| l.starts_with(name) && !l.starts_with('#'))
            .unwrap_or_else(|| panic!("{name} missing from /metrics:\n{text}"))
            .split_whitespace()
            .last()
            .unwrap()
            .parse()
            .unwrap()
    };
    assert_eq!(metric("nucdb_flight_recent_entries"), 4.0);
    assert_eq!(metric("nucdb_flight_slow_entries"), 0.0);
    assert_eq!(metric("nucdb_flight_dropped_total"), 2.0);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
