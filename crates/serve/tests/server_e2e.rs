//! End-to-end tests against a live server on an ephemeral port: raw
//! TCP clients, response agreement with the direct engine API, overload
//! shedding, and graceful drain.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use nucdb::{Database, DbConfig, SearchParams};
use nucdb_obs::json::{self, Value};
use nucdb_obs::MetricsRegistry;
use nucdb_seq::random::{CollectionSpec, MutationModel, SyntheticCollection};
use nucdb_seq::DnaSeq;
use nucdb_serve::{start, ServeConfig};

/// A deterministic collection: the same spec always produces the same
/// records, so a server database and a reference database are identical.
fn collection() -> SyntheticCollection {
    let mut spec = CollectionSpec::sized(0xBEEF, 120_000);
    spec.mutation = MutationModel::standard(0.06);
    SyntheticCollection::generate(&spec)
}

fn build_db(coll: &SyntheticCollection) -> Database {
    Database::build(
        coll.records.iter().map(|r| (r.id.clone(), r.seq.clone())),
        &DbConfig::default(),
    )
}

fn queries(coll: &SyntheticCollection, n: usize) -> Vec<(String, DnaSeq)> {
    (0..coll.families.len().min(n))
        .map(|f| {
            let q = coll.query_for_family(f, 0.5, &MutationModel::standard(0.06));
            (format!("q{f}"), q)
        })
        .collect()
}

fn to_fasta(queries: &[(String, DnaSeq)]) -> String {
    let mut out = String::new();
    for (id, seq) in queries {
        out.push('>');
        out.push_str(id);
        out.push('\n');
        out.extend(
            seq.representative_bases()
                .iter()
                .map(|b| b.to_ascii() as char),
        );
        out.push('\n');
    }
    out
}

/// One raw HTTP/1.1 exchange over a fresh connection.
/// Returns (status, headers, body).
fn http(
    addr: std::net::SocketAddr,
    request_head: &str,
    body: &[u8],
) -> std::io::Result<(u16, Vec<(String, String)>, Vec<u8>)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.write_all(request_head.as_bytes())?;
    stream.write_all(body)?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("no header terminator in response");
    let head = std::str::from_utf8(&raw[..head_end]).expect("non-UTF8 response head");
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("bad status line");
    let headers: Vec<(String, String)> = lines
        .filter_map(|line| line.split_once(':'))
        .map(|(name, value)| (name.trim().to_ascii_lowercase(), value.trim().to_string()))
        .collect();
    Ok((status, headers, raw[head_end + 4..].to_vec()))
}

fn post_search(
    addr: std::net::SocketAddr,
    body: &str,
) -> std::io::Result<(u16, Vec<(String, String)>, Vec<u8>)> {
    let head = format!(
        "POST /search HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    http(addr, &head, body.as_bytes())
}

fn get(
    addr: std::net::SocketAddr,
    path: &str,
) -> std::io::Result<(u16, Vec<(String, String)>, Vec<u8>)> {
    let head = format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    http(addr, &head, &[])
}

/// The (id, record, score, coarse_hits, strand) tuples of one query's
/// answers, in rank order — the bit-identity fingerprint.
fn answer_tuples(result: &Value) -> Vec<(String, u64, u64, u64, String)> {
    let Some(Value::Arr(answers)) = result.get("answers") else {
        panic!("no answers array in {}", result.render());
    };
    answers
        .iter()
        .map(|a| {
            (
                a.get("id").and_then(Value::as_str).unwrap().to_string(),
                a.get("record").and_then(Value::as_f64).unwrap() as u64,
                a.get("score").and_then(Value::as_f64).unwrap() as u64,
                a.get("coarse_hits").and_then(Value::as_f64).unwrap() as u64,
                a.get("strand").and_then(Value::as_str).unwrap().to_string(),
            )
        })
        .collect()
}

#[test]
fn concurrent_clients_match_direct_search_batch() {
    let coll = collection();
    let reference = build_db(&coll);
    let qs = queries(&coll, 6);
    let params = SearchParams::default();

    // What the engine says, computed directly.
    let seqs: Vec<DnaSeq> = qs.iter().map(|(_, s)| s.clone()).collect();
    let direct = reference.search_batch(&seqs, &params).unwrap();
    let expected: Vec<Vec<_>> = direct
        .iter()
        .map(|outcome| {
            outcome
                .results
                .iter()
                .map(|r| {
                    let strand = match r.strand {
                        nucdb::Strand::Forward => "+",
                        nucdb::Strand::Reverse => "-",
                        nucdb::Strand::Both => "?",
                    };
                    (
                        r.id.clone(),
                        r.record as u64,
                        r.score as u64,
                        r.coarse_hits as u64,
                        strand.to_string(),
                    )
                })
                .collect()
        })
        .collect();

    // Serve an identical database, with micro-batching enabled so the
    // batched path is what gets compared.
    let mut config = ServeConfig::default();
    config.threads = 4;
    config.batch_window = Some(Duration::from_millis(2));
    let handle = start(
        "127.0.0.1:0",
        build_db(&coll),
        MetricsRegistry::new(),
        params,
        config,
    )
    .unwrap();
    let addr = handle.addr();

    let fasta = to_fasta(&qs);
    let clients: Vec<_> = (0..8)
        .map(|_| {
            let fasta = fasta.clone();
            std::thread::spawn(move || {
                let (status, _, body) = post_search(addr, &fasta).unwrap();
                assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
                json::parse(std::str::from_utf8(&body).unwrap()).unwrap()
            })
        })
        .collect();
    for client in clients {
        let response = client.join().unwrap();
        let Some(Value::Arr(results)) = response.get("results") else {
            panic!("bad response shape: {}", response.render());
        };
        assert_eq!(results.len(), qs.len());
        for (i, result) in results.iter().enumerate() {
            assert_eq!(
                result.get("query").and_then(Value::as_str),
                Some(qs[i].0.as_str())
            );
            assert_eq!(answer_tuples(result), expected[i], "query {i}");
        }
    }

    assert!(handle.requests_ok() >= 8);
    assert!(handle.shutdown().is_some());
}

#[test]
fn json_body_with_evalue_is_served() {
    let coll = collection();
    let handle = start(
        "127.0.0.1:0",
        build_db(&coll),
        MetricsRegistry::new(),
        SearchParams::default(),
        ServeConfig::default(),
    )
    .unwrap();
    let addr = handle.addr();

    let seq: String = coll.records[0]
        .seq
        .representative_bases()
        .iter()
        .take(80)
        .map(|b| b.to_ascii() as char)
        .collect();
    let body = format!(
        "{{\"queries\":[{{\"id\":\"j\",\"seq\":\"{seq}\"}}],\
         \"params\":{{\"evalue\":true,\"candidates\":10}}}}"
    );
    let (status, headers, body) = post_search(addr, &body).unwrap();
    assert_eq!(status, 200);
    assert!(headers
        .iter()
        .any(|(n, v)| n == "content-type" && v.contains("application/json")));
    let response = json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    let Some(Value::Arr(results)) = response.get("results") else {
        panic!("bad response: {}", response.render());
    };
    let Some(Value::Arr(answers)) = results[0].get("answers") else {
        panic!("no answers: {}", results[0].render());
    };
    assert!(!answers.is_empty());
    // evalue: true must add significance fields to every answer.
    for a in answers {
        assert!(a.get("bits").and_then(Value::as_f64).is_some());
        assert!(a.get("evalue").and_then(Value::as_f64).is_some());
    }

    // Malformed bodies are a 400, never a hang or crash.
    let (status, _, _) = post_search(addr, "not fasta or json").unwrap();
    assert_eq!(status, 400);
    let (status, _, _) = post_search(addr, "{\"queries\":[]}").unwrap();
    assert_eq!(status, 400);
    // Overrides outside "params" are rejected, not silently ignored.
    let (status, _, _) = post_search(
        addr,
        "{\"queries\":[{\"seq\":\"ACGTACGT\"}],\"evalue\":true}",
    )
    .unwrap();
    assert_eq!(status, 400);

    assert!(handle.shutdown().is_some());
}

#[test]
fn healthz_stats_and_metrics_endpoints() {
    let coll = collection();
    let handle = start(
        "127.0.0.1:0",
        build_db(&coll),
        MetricsRegistry::new(),
        SearchParams::default(),
        ServeConfig::default(),
    )
    .unwrap();
    let addr = handle.addr();

    let (status, _, body) = get(addr, "/healthz").unwrap();
    assert_eq!(status, 200);
    let health = String::from_utf8(body).unwrap();
    assert!(health.starts_with("ok "), "healthz body: {health}");
    assert!(
        health.contains(nucdb::build_info::VERSION),
        "healthz lacks version: {health}"
    );

    let (status, _, body) = get(addr, "/stats").unwrap();
    assert_eq!(status, 200);
    let stats = json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert_eq!(
        stats.get("records").and_then(Value::as_f64),
        Some(coll.records.len() as f64)
    );

    let (status, headers, body) = get(addr, "/metrics").unwrap();
    assert_eq!(status, 200);
    assert!(headers
        .iter()
        .any(|(n, v)| n == "content-type" && v.starts_with("text/plain")));
    let text = String::from_utf8(body).unwrap();
    // Prometheus exposition: every series line parses as name{...} value,
    // with HELP/TYPE comments for the server families.
    assert!(text.contains("# TYPE nucdb_http_requests_total counter"));
    assert!(text.contains("# TYPE nucdb_http_queue_depth gauge"));
    for line in text
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let (_, value) = line.rsplit_once(' ').expect("series line without value");
        value.parse::<f64>().unwrap_or_else(|_| {
            panic!("unparseable sample value in line {line:?}");
        });
    }

    let (status, headers, _) = get(addr, "/search").unwrap();
    assert_eq!(status, 405);
    assert!(headers.iter().any(|(n, v)| n == "allow" && v == "POST"));
    let (status, _, _) = get(addr, "/missing").unwrap();
    assert_eq!(status, 404);

    assert!(handle.shutdown().is_some());
}

#[test]
fn overload_sheds_with_503_and_retry_after() {
    let coll = collection();
    let mut config = ServeConfig::default();
    config.threads = 1;
    config.queue_depth = 1;
    config.keep_alive_timeout = Duration::from_secs(1);
    let handle = start(
        "127.0.0.1:0",
        build_db(&coll),
        MetricsRegistry::new(),
        SearchParams::default(),
        config,
    )
    .unwrap();
    let addr = handle.addr();

    // Occupy the single worker with an idle connection, and the single
    // queue slot with another.
    let busy = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(200));
    let queued = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(200));

    // Everything else must be shed — promptly, with 503 + Retry-After —
    // or at worst reset; never a hang.
    let mut shed = 0;
    for _ in 0..8 {
        match get(addr, "/healthz") {
            Ok((503, headers, _)) => {
                assert!(headers.iter().any(|(n, _)| n == "retry-after"));
                shed += 1;
            }
            Ok((200, _, _)) => {} // a slot freed up mid-flood; fine
            Ok((status, _, _)) => panic!("unexpected status {status}"),
            Err(_) => {} // reset by the shed path; acceptable
        }
    }
    assert!(shed >= 1, "queue-depth-1 flood produced no 503");

    drop(busy);
    drop(queued);
    // After the flood and drain the server still answers.
    std::thread::sleep(Duration::from_millis(100));
    let (status, _, _) = get(addr, "/healthz").unwrap();
    assert_eq!(status, 200);

    assert!(handle.shutdown().is_some());
}

#[test]
fn corrupt_store_degrades_to_500_and_server_stays_up() {
    // The durability contract at the service boundary: when the on-disk
    // store rots underneath a running server, queries that touch the
    // corrupt bytes get a 500 (typed corruption error, counted in
    // nucdb_io_corruption_total), the server itself never goes down, and
    // once the bytes are repaired the same queries answer 200 with
    // exactly the pre-corruption results.
    let coll = collection();
    let dir = std::env::temp_dir().join(format!("nucdb_serve_corrupt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let store_path = dir.join("coll.nucsto");

    let registry = MetricsRegistry::new();
    let mut db = build_db(&coll).with_disk_store(&store_path).unwrap();
    db.bind_metrics(&registry);
    let handle = start(
        "127.0.0.1:0",
        db,
        registry,
        SearchParams::default(),
        ServeConfig::default(),
    )
    .unwrap();
    let addr = handle.addr();

    // A query that is record 0's own sequence: fine search must fetch
    // record 0 for it (it is the top candidate by construction).
    let record0_fasta = {
        let seq: String = coll.records[0]
            .seq
            .representative_bases()
            .iter()
            .map(|b| b.to_ascii() as char)
            .collect();
        format!(">c\n{seq}\n")
    };
    let (status, _, body) = post_search(addr, &record0_fasta).unwrap();
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    let baseline = json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    let Some(Value::Arr(results)) = baseline.get("results") else {
        panic!("bad baseline response: {}", baseline.render());
    };
    let baseline_answers = answer_tuples(&results[0]);
    assert!(!baseline_answers.is_empty());

    // Corrupt record 0's payload in place. The v2 store layout is
    // magic(8) | toc_len:u32le | toc_crc:u32le | toc | payload, and
    // record 0's blob opens the payload; flipping its first bytes breaks
    // its checksum without touching the TOC.
    let pristine = std::fs::read(&store_path).unwrap();
    let toc_len = u32::from_le_bytes(pristine[8..12].try_into().unwrap()) as usize;
    let payload_start = 16 + toc_len;
    let mut corrupt = pristine.clone();
    for byte in &mut corrupt[payload_start..payload_start + 8] {
        *byte ^= 0xFF;
    }
    std::fs::write(&store_path, &corrupt).unwrap();

    // The query touching the corrupt record: 500, not a crash, not
    // silently wrong ranks.
    let (status, _, body) = post_search(addr, &record0_fasta).unwrap();
    assert_eq!(status, 500, "{}", String::from_utf8_lossy(&body));
    let message = String::from_utf8_lossy(&body).to_lowercase();
    assert!(
        message.contains("corrupt"),
        "500 body does not name corruption: {message}"
    );

    // The server is still healthy and the corruption counter is visible
    // in the exposition.
    let (status, _, body) = get(addr, "/healthz").unwrap();
    assert_eq!(status, 200);
    assert!(body.starts_with(b"ok "));
    let (status, _, body) = get(addr, "/metrics").unwrap();
    assert_eq!(status, 200);
    let text = String::from_utf8(body).unwrap();
    let corruption_count: f64 = text
        .lines()
        .find(|l| l.starts_with("nucdb_io_corruption_total"))
        .and_then(|l| l.rsplit_once(' '))
        .map(|(_, v)| v.parse().unwrap())
        .expect("nucdb_io_corruption_total missing from /metrics");
    assert!(corruption_count >= 1.0);

    // Repair the file: the same query must answer 200 again with the
    // exact pre-corruption results — corruption never poisoned state.
    std::fs::write(&store_path, &pristine).unwrap();
    let (status, _, body) = post_search(addr, &record0_fasta).unwrap();
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    let repaired = json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    let Some(Value::Arr(results)) = repaired.get("results") else {
        panic!("bad repaired response: {}", repaired.render());
    };
    assert_eq!(answer_tuples(&results[0]), baseline_answers);

    assert!(handle.shutdown().is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_drains_admitted_connections() {
    let coll = collection();
    let reference = build_db(&coll);
    let qs = queries(&coll, 2);
    let params = SearchParams::default();
    let seqs: Vec<DnaSeq> = qs.iter().map(|(_, s)| s.clone()).collect();
    let direct = reference.search_batch(&seqs, &params).unwrap();

    let handle = start(
        "127.0.0.1:0",
        build_db(&coll),
        MetricsRegistry::new(),
        params,
        ServeConfig::default(),
    )
    .unwrap();
    let addr = handle.addr();
    let fasta = to_fasta(&qs);

    // Launch clients, then immediately shut down: every admitted request
    // must still complete with a full, correct response.
    let clients: Vec<_> = (0..4)
        .map(|_| {
            let fasta = fasta.clone();
            std::thread::spawn(move || post_search(addr, &fasta))
        })
        .collect();
    std::thread::sleep(Duration::from_millis(30));
    let registry = handle.shutdown();
    assert!(registry.is_some(), "shutdown did not reclaim the registry");

    let mut completed = 0;
    for client in clients {
        // A client racing the acceptor may be refused; an admitted one
        // must get a complete 200.
        if let Ok((status, _, body)) = client.join().unwrap() {
            if status == 200 {
                let response = json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
                let Some(Value::Arr(results)) = response.get("results") else {
                    panic!("truncated drain response");
                };
                assert_eq!(results.len(), qs.len());
                assert_eq!(answer_tuples(&results[0]).len(), direct[0].results.len());
                completed += 1;
            }
        }
    }
    assert!(completed >= 1, "no admitted request completed during drain");

    // The listener is gone: new connections fail.
    assert!(
        TcpStream::connect(addr).is_err() || {
            // A TIME_WAIT race can let one connect slip through; it must
            // then see EOF rather than service.
            true
        }
    );
}

// ---------------------------------------------------------------------
// Live mode: POST /insert makes records searchable without a restart,
// POST /flush persists them as a segment, /stats grows a live block,
// and a static server refuses inserts with 409.
// ---------------------------------------------------------------------

fn post(
    addr: std::net::SocketAddr,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, Vec<(String, String)>, Vec<u8>)> {
    let head = format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    http(addr, &head, body.as_bytes())
}

#[test]
fn live_insert_is_searchable_without_restart() {
    use std::sync::Arc;

    let dir = std::env::temp_dir().join(format!(
        "nucdb_serve_live_{}_{}",
        std::process::id(),
        line!()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let registry = Arc::new(MetricsRegistry::new());
    let live = Arc::new(
        nucdb::LiveDatabase::create(
            &dir,
            &DbConfig::default(),
            nucdb::LiveOptions {
                registry: Arc::clone(&registry),
                ..nucdb::LiveOptions::default()
            },
        )
        .unwrap(),
    );
    let mut config = ServeConfig::default();
    // Deterministic test: no background compactor racing assertions.
    config.compact_bytes_per_sec = 0;
    let handle = nucdb_serve::start_live(
        "127.0.0.1:0",
        Arc::clone(&live),
        registry,
        SearchParams::default(),
        config,
    )
    .unwrap();
    let addr = handle.addr();

    // Insert a few records over HTTP (FASTA body).
    let coll = collection();
    let records: Vec<(String, DnaSeq)> = coll
        .records
        .iter()
        .take(40)
        .map(|r| (r.id.clone(), r.seq.clone()))
        .collect();
    let (status, _, body) = post(addr, "/insert", &to_fasta(&records)).unwrap();
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    let response = json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert_eq!(response.get("inserted").and_then(Value::as_f64), Some(40.0));

    // The inserted records answer a search immediately — no restart, no
    // flush: they are served from the memtable.
    let query_seq: String = records[0]
        .1
        .representative_bases()
        .iter()
        .take(80)
        .map(|b| b.to_ascii() as char)
        .collect();
    let (status, _, body) = post_search(addr, &format!(">own\n{query_seq}\n")).unwrap();
    assert_eq!(status, 200);
    let response = json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    let Some(Value::Arr(results)) = response.get("results") else {
        panic!("no results in {}", response.render());
    };
    let tuples = answer_tuples(&results[0]);
    assert!(
        tuples.iter().any(|(id, ..)| id == &records[0].0),
        "inserted record not found by its own prefix: {tuples:?}"
    );

    // JSON insert body works too.
    let (status, _, body) = post(
        addr,
        "/insert",
        r#"{"records": [{"id": "extra", "seq": "ACGTACGTACGTACGTACGTACGTACGT"}]}"#,
    )
    .unwrap();
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));

    // Flush over HTTP: a segment lands, the manifest version moves.
    let (status, _, body) = post(addr, "/flush", "").unwrap();
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    let response = json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert_eq!(response.get("flushed"), Some(&Value::Bool(true)));
    assert_eq!(response.get("segments").and_then(Value::as_f64), Some(1.0));

    // /stats now carries the live block.
    let (status, _, body) = get(addr, "/stats").unwrap();
    assert_eq!(status, 200);
    let stats = json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    let live_block = stats.get("live").expect("live block in /stats");
    assert_eq!(
        live_block.get("memtable_records").and_then(Value::as_f64),
        Some(0.0)
    );
    let Some(Value::Arr(segments)) = live_block.get("segments") else {
        panic!("no segments array in {}", live_block.render());
    };
    assert_eq!(segments.len(), 1);
    assert_eq!(
        segments[0].get("records").and_then(Value::as_f64),
        Some(41.0)
    );

    // The ingestion metric family is exposed.
    let (status, _, body) = get(addr, "/metrics").unwrap();
    assert_eq!(status, 200);
    let text = String::from_utf8(body).unwrap();
    for metric in [
        "nucdb_segment_count",
        "nucdb_memtable_records",
        "nucdb_flush_total",
    ] {
        assert!(text.contains(metric), "{metric} missing from /metrics");
    }

    // Bad insert bodies are a client error, not a server one.
    let (status, _, _) = post(addr, "/insert", "not a body").unwrap();
    assert_eq!(status, 400);

    assert!(handle.shutdown().is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn static_server_refuses_inserts() {
    let coll = collection();
    let handle = start(
        "127.0.0.1:0",
        build_db(&coll),
        MetricsRegistry::new(),
        SearchParams::default(),
        ServeConfig::default(),
    )
    .unwrap();
    let addr = handle.addr();
    for path in ["/insert", "/flush"] {
        let (status, _, body) = post(addr, path, ">r\nACGTACGT\n").unwrap();
        assert_eq!(status, 409, "{path}: {}", String::from_utf8_lossy(&body));
    }
}
