//! End-to-end tests for the query-forensics surface of the server:
//! request-id echo on every status class, `/debug/queries` and
//! `/debug/slow`, the flight recorder's bounded ring under flood, and
//! the `/stats` schema additions.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use nucdb::{Database, DbConfig, SearchParams};
use nucdb_obs::json::{self, Value};
use nucdb_obs::{Forensics, ForensicsConfig, MetricsRegistry};
use nucdb_seq::random::{CollectionSpec, MutationModel, SyntheticCollection};
use nucdb_serve::{start, ServeConfig, ServerHandle};

fn collection() -> SyntheticCollection {
    let mut spec = CollectionSpec::sized(0xF0E1, 60_000);
    spec.mutation = MutationModel::standard(0.06);
    SyntheticCollection::generate(&spec)
}

fn build_db(coll: &SyntheticCollection) -> Database {
    Database::build(
        coll.records.iter().map(|r| (r.id.clone(), r.seq.clone())),
        &DbConfig::default(),
    )
}

fn start_with_forensics(config: ForensicsConfig) -> (ServerHandle, SyntheticCollection) {
    let coll = collection();
    let mut db = build_db(&coll);
    db.set_forensics(Forensics::new(config));
    let handle = start(
        "127.0.0.1:0",
        db,
        MetricsRegistry::new(),
        SearchParams::default(),
        ServeConfig::default(),
    )
    .unwrap();
    (handle, coll)
}

/// One raw HTTP/1.1 exchange. Returns (status, headers, body); header
/// names are lowercased.
fn http(
    addr: std::net::SocketAddr,
    head: &str,
    body: &[u8],
) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("no header terminator");
    let text = std::str::from_utf8(&raw[..head_end]).unwrap();
    let mut lines = text.split("\r\n");
    let status: u16 = lines
        .next()
        .unwrap()
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap();
    let headers = lines
        .filter_map(|line| line.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    (status, headers, raw[head_end + 4..].to_vec())
}

fn get(addr: std::net::SocketAddr, path: &str) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let head = format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    http(addr, &head, &[])
}

fn post_search(
    addr: std::net::SocketAddr,
    body: &str,
    request_id: Option<&str>,
) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let id_header = request_id.map_or(String::new(), |id| format!("X-Request-Id: {id}\r\n"));
    let head = format!(
        "POST /search HTTP/1.1\r\nHost: t\r\n{id_header}Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    http(addr, &head, body.as_bytes())
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

fn fasta_query(coll: &SyntheticCollection) -> String {
    let q = coll.query_for_family(0, 0.5, &MutationModel::standard(0.06));
    let bases: String = q
        .representative_bases()
        .iter()
        .map(|b| b.to_ascii() as char)
        .collect();
    format!(">q0\n{bases}\n")
}

#[test]
fn request_id_is_echoed_on_every_status_class() {
    let (handle, coll) = start_with_forensics(ForensicsConfig::default());
    let addr = handle.addr();

    // 200: a generated id lands in the header AND the JSON body.
    let (status, headers, body) = post_search(addr, &fasta_query(&coll), None);
    assert_eq!(status, 200);
    let echoed = header(&headers, "x-request-id").expect("no X-Request-Id on 200");
    let doc = json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert_eq!(
        doc.get("request_id").and_then(Value::as_str),
        Some(echoed),
        "body request_id must match the header"
    );
    assert!(echoed.starts_with("req-"), "generated id shape: {echoed}");

    // A sane client-supplied id is echoed verbatim.
    let (status, headers, body) = post_search(addr, &fasta_query(&coll), Some("client-abc-123"));
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-request-id"), Some("client-abc-123"));
    let doc = json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert_eq!(
        doc.get("request_id").and_then(Value::as_str),
        Some("client-abc-123")
    );

    // An unprintable or oversized client id is replaced, not echoed.
    let long_id = "x".repeat(65);
    let (_, headers, _) = post_search(addr, &fasta_query(&coll), Some(&long_id));
    let replaced = header(&headers, "x-request-id").unwrap();
    assert_ne!(replaced, long_id);
    assert!(replaced.starts_with("req-"));

    // 400 (unparseable body): header still carries the id and the error
    // text names it.
    let (status, headers, body) = post_search(addr, "not fasta or json", Some("bad-body-id"));
    assert_eq!(status, 400);
    assert_eq!(header(&headers, "x-request-id"), Some("bad-body-id"));
    assert!(String::from_utf8(body).unwrap().contains("bad-body-id"));

    // 404 and 405 are routed responses: id echoed.
    let (status, headers, _) = get(addr, "/no-such-path");
    assert_eq!(status, 404);
    assert!(header(&headers, "x-request-id").is_some());
    let (status, headers, _) = get(addr, "/search");
    assert_eq!(status, 405);
    assert!(header(&headers, "x-request-id").is_some());

    assert!(handle.shutdown().is_some());
}

#[test]
fn stats_exposes_build_info_and_forensics_blocks() {
    let (handle, _) = start_with_forensics(ForensicsConfig {
        recent_capacity: 32,
        slow_capacity: 8,
        slow_threshold_ns: 5_000_000_000,
        ..ForensicsConfig::default()
    });
    let addr = handle.addr();

    let (status, _, body) = get(addr, "/stats");
    assert_eq!(status, 200);
    let stats = json::parse(std::str::from_utf8(&body).unwrap()).unwrap();

    let build = stats.get("build_info").expect("stats lacks build_info");
    assert_eq!(
        build.get("version").and_then(Value::as_str),
        Some(nucdb::build_info::VERSION)
    );
    assert!(build.get("git").and_then(Value::as_str).is_some());
    assert!(build.get("codecs").and_then(Value::as_str).is_some());

    let forensics = stats.get("forensics").expect("stats lacks forensics");
    assert_eq!(forensics.get("enabled"), Some(&Value::Bool(true)));
    assert_eq!(
        forensics.get("recent_capacity").and_then(Value::as_f64),
        Some(32.0)
    );
    assert_eq!(
        forensics.get("slow_capacity").and_then(Value::as_f64),
        Some(8.0)
    );
    assert_eq!(
        forensics.get("slow_threshold_ns").and_then(Value::as_f64),
        Some(5e9)
    );

    // The build-info gauge is on /metrics too.
    let (status, _, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let text = String::from_utf8(body).unwrap();
    assert!(
        text.contains("nucdb_build_info"),
        "metrics lack nucdb_build_info:\n{text}"
    );

    assert!(handle.shutdown().is_some());
}

#[test]
fn debug_queries_returns_flight_entries_with_client_request_id() {
    let (handle, coll) = start_with_forensics(ForensicsConfig::default());
    let addr = handle.addr();

    let (status, _, _) = post_search(addr, &fasta_query(&coll), Some("find-me-later"));
    assert_eq!(status, 200);

    let (status, _, body) = get(addr, "/debug/queries");
    assert_eq!(status, 200);
    let doc = json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert_eq!(
        doc.get("capacity").and_then(Value::as_f64),
        Some(256.0),
        "default recent capacity"
    );
    let Some(Value::Arr(entries)) = doc.get("queries") else {
        panic!("no queries array in {}", doc.render());
    };
    let found = entries.iter().any(|e| {
        e.get("request_id").and_then(Value::as_str) == Some("find-me-later")
            && e.get("total_ns").and_then(Value::as_f64).unwrap_or(0.0) > 0.0
            && e.get("spans").is_some()
    });
    assert!(
        found,
        "flight recorder lacks the client's query: {}",
        doc.render()
    );

    // POST on the debug endpoints is a 405.
    let head =
        "POST /debug/queries HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\nConnection: close\r\n\r\n";
    let (status, _, _) = http(addr, head, &[]);
    assert_eq!(status, 405);

    assert!(handle.shutdown().is_some());
}

#[test]
fn slow_queries_always_land_in_debug_slow_with_the_echoed_id() {
    // Injected latency guarantees every query crosses the threshold, so
    // capture is deterministic — no timing luck involved.
    let (handle, coll) = start_with_forensics(ForensicsConfig {
        slow_threshold_ns: 1_000_000, // 1ms
        inject_delay_ns: 2_000_000,   // every query sleeps 2ms
        ..ForensicsConfig::default()
    });
    let addr = handle.addr();

    let (status, headers, _) = post_search(addr, &fasta_query(&coll), Some("slow-one"));
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-request-id"), Some("slow-one"));

    let (status, _, body) = get(addr, "/debug/slow");
    assert_eq!(status, 200);
    let doc = json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    let Some(Value::Arr(entries)) = doc.get("queries") else {
        panic!("no queries array in {}", doc.render());
    };
    let entry = entries
        .iter()
        .find(|e| e.get("request_id").and_then(Value::as_str) == Some("slow-one"))
        .unwrap_or_else(|| panic!("slow query not captured: {}", doc.render()));
    assert_eq!(entry.get("reason").and_then(Value::as_str), Some("slow"));
    assert!(entry.get("total_ns").and_then(Value::as_f64).unwrap() >= 1e6);

    assert!(handle.shutdown().is_some());
}

#[test]
fn flight_recorder_stays_capped_under_flood() {
    let (handle, coll) = start_with_forensics(ForensicsConfig {
        recent_capacity: 4,
        ..ForensicsConfig::default()
    });
    let addr = handle.addr();
    let body = fasta_query(&coll);

    for i in 0..12 {
        let id = format!("flood-{i}");
        let (status, _, _) = post_search(addr, &body, Some(&id));
        assert_eq!(status, 200);
    }

    let (status, _, resp) = get(addr, "/debug/queries");
    assert_eq!(status, 200);
    let doc = json::parse(std::str::from_utf8(&resp).unwrap()).unwrap();
    assert_eq!(doc.get("capacity").and_then(Value::as_f64), Some(4.0));
    let Some(Value::Arr(entries)) = doc.get("queries") else {
        panic!("no queries array");
    };
    assert!(
        entries.len() <= 4,
        "ring overflowed: {} entries",
        entries.len()
    );
    // The survivors are the newest queries (highest sequence numbers).
    let ids: Vec<&str> = entries
        .iter()
        .filter_map(|e| e.get("request_id").and_then(Value::as_str))
        .collect();
    assert!(ids.contains(&"flood-11"), "newest query evicted: {ids:?}");
    assert!(
        !ids.contains(&"flood-0"),
        "oldest query survived a full ring: {ids:?}"
    );

    assert!(handle.shutdown().is_some());
}
