//! End-to-end tests for serving a sharded root: bit-identity of the
//! scatter-gather HTTP answer against the joint engine, hedged dispatch
//! overtaking an injected straggler, and degraded mode answering 200
//! with partial coverage (never a 500) when a shard is corrupt.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use nucdb::{Database, DbConfig, SearchParams, ShardSet, ShardSetConfig};
use nucdb_obs::json::{self, Value};
use nucdb_obs::MetricsRegistry;
use nucdb_seq::random::{CollectionSpec, MutationModel, SyntheticCollection};
use nucdb_seq::DnaSeq;
use nucdb_serve::{start_sharded, ServeConfig};

fn collection() -> SyntheticCollection {
    let mut spec = CollectionSpec::sized(0xD1CE, 100_000);
    spec.mutation = MutationModel::standard(0.06);
    SyntheticCollection::generate(&spec)
}

fn records(coll: &SyntheticCollection) -> Vec<(String, DnaSeq)> {
    coll.records
        .iter()
        .map(|r| (r.id.clone(), r.seq.clone()))
        .collect()
}

fn queries(coll: &SyntheticCollection, n: usize) -> Vec<(String, DnaSeq)> {
    (0..coll.families.len().min(n))
        .map(|f| {
            let q = coll.query_for_family(f, 0.5, &MutationModel::standard(0.06));
            (format!("q{f}"), q)
        })
        .collect()
}

fn to_fasta(queries: &[(String, DnaSeq)]) -> String {
    let mut out = String::new();
    for (id, seq) in queries {
        out.push('>');
        out.push_str(id);
        out.push('\n');
        out.extend(
            seq.representative_bases()
                .iter()
                .map(|b| b.to_ascii() as char),
        );
        out.push('\n');
    }
    out
}

/// A unique temp directory per test invocation.
fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "nucdb_shard_e2e_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id(),
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One raw HTTP/1.1 exchange over a fresh connection.
fn http(
    addr: std::net::SocketAddr,
    request_head: &str,
    body: &[u8],
) -> std::io::Result<(u16, Vec<u8>)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.write_all(request_head.as_bytes())?;
    stream.write_all(body)?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("no header terminator in response");
    let head = std::str::from_utf8(&raw[..head_end]).expect("non-UTF8 response head");
    let status: u16 = head
        .split("\r\n")
        .next()
        .unwrap()
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("bad status line");
    Ok((status, raw[head_end + 4..].to_vec()))
}

fn post_search(addr: std::net::SocketAddr, body: &str) -> (u16, Vec<u8>) {
    let head = format!(
        "POST /search HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    http(addr, &head, body.as_bytes()).unwrap()
}

fn get(addr: std::net::SocketAddr, path: &str) -> (u16, Vec<u8>) {
    let head = format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    http(addr, &head, &[]).unwrap()
}

/// The (id, record, score, coarse_hits, strand) tuples of one query's
/// answers, in rank order — the bit-identity fingerprint.
fn answer_tuples(result: &Value) -> Vec<(String, u64, u64, u64, String)> {
    let Some(Value::Arr(answers)) = result.get("answers") else {
        panic!("no answers array in {}", result.render());
    };
    answers
        .iter()
        .map(|a| {
            (
                a.get("id").and_then(Value::as_str).unwrap().to_string(),
                a.get("record").and_then(Value::as_f64).unwrap() as u64,
                a.get("score").and_then(Value::as_f64).unwrap() as u64,
                a.get("coarse_hits").and_then(Value::as_f64).unwrap() as u64,
                a.get("strand").and_then(Value::as_str).unwrap().to_string(),
            )
        })
        .collect()
}

/// The joint (unsharded) engine's answer tuples for each query.
fn joint_tuples(
    coll: &SyntheticCollection,
    qs: &[(String, DnaSeq)],
    params: &SearchParams,
) -> Vec<Vec<(String, u64, u64, u64, String)>> {
    let db = Database::build(records(coll).into_iter(), &DbConfig::default());
    qs.iter()
        .map(|(_, seq)| {
            db.search(seq, params)
                .unwrap()
                .results
                .iter()
                .map(|r| {
                    let strand = match r.strand {
                        nucdb::Strand::Forward => "+",
                        nucdb::Strand::Reverse => "-",
                        nucdb::Strand::Both => "?",
                    };
                    (
                        r.id.clone(),
                        r.record as u64,
                        r.score as u64,
                        r.coarse_hits as u64,
                        strand.to_string(),
                    )
                })
                .collect()
        })
        .collect()
}

/// The `coverage` object of one per-query result document.
fn coverage_of(result: &Value) -> (u64, u64, Vec<String>) {
    let coverage = result.get("coverage").expect("no coverage object");
    let ok = coverage
        .get("shards_ok")
        .and_then(Value::as_f64)
        .expect("no shards_ok") as u64;
    let total = coverage
        .get("shards_total")
        .and_then(Value::as_f64)
        .expect("no shards_total") as u64;
    let Some(Value::Arr(failures)) = coverage.get("failures") else {
        panic!("no failures array");
    };
    let failed = failures
        .iter()
        .map(|f| f.get("shard").and_then(Value::as_str).unwrap().to_string())
        .collect();
    (ok, total, failed)
}

/// A straggling shard is overtaken by the hedge: answers over HTTP stay
/// bit-identical to the joint build at full coverage, the hedge and
/// hedge-win counters move, and the per-shard latency histograms fill.
#[test]
fn hedged_sharded_server_is_bit_identical_to_joint_build() {
    let coll = collection();
    let qs = queries(&coll, 4);
    let params = SearchParams::default();
    let expected = joint_tuples(&coll, &qs, &params);

    let root = temp_dir("hedge");
    nucdb::build_sharded_root(&root, records(&coll), 3, &DbConfig::default()).unwrap();
    let registry = Arc::new(MetricsRegistry::new());
    let shard_config = ShardSetConfig {
        shard_deadline: Duration::from_secs(30),
        hedge_after: Some(Duration::from_millis(30)),
    };
    let set = Arc::new(ShardSet::open_root(&root, shard_config, &registry).unwrap());
    // Shard 1's primary worker sleeps 300 ms per phase; the hedge fires
    // at 30 ms and is never delayed, so it deterministically wins.
    set.inject_delay_ns(1, 300_000_000);

    let handle = start_sharded(
        "127.0.0.1:0",
        Arc::clone(&set),
        registry,
        params,
        ServeConfig::default(),
    )
    .unwrap();
    let addr = handle.addr();

    let (status, body) = post_search(addr, &to_fasta(&qs));
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    let response = json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    let Some(Value::Arr(results)) = response.get("results") else {
        panic!("bad response shape: {}", response.render());
    };
    assert_eq!(results.len(), qs.len());
    for (i, result) in results.iter().enumerate() {
        assert_eq!(answer_tuples(result), expected[i], "query {i}");
        let (ok, total, failed) = coverage_of(result);
        assert_eq!((ok, total), (3, 3), "hedged query {i} lost coverage");
        assert!(failed.is_empty());
    }

    // The per-shard metric families are in the exposition: the straggler
    // was hedged (and the hedge won), and every shard's latency
    // histogram recorded phases.
    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let text = String::from_utf8(metrics).unwrap();
    let counter = |name: &str, shard: &str| -> u64 {
        let needle = format!("{name}{{shard=\"{shard}\"}}");
        text.lines()
            .find(|l| l.starts_with(&needle))
            .unwrap_or_else(|| panic!("{needle} not in /metrics"))
            .rsplit(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap()
    };
    assert!(counter("nucdb_shard_hedges_total", "shard-001") >= 1);
    assert!(counter("nucdb_shard_hedge_wins_total", "shard-001") >= 1);
    for shard in ["shard-000", "shard-001", "shard-002"] {
        assert!(counter("nucdb_shard_queries_total", shard) >= 1);
        assert!(
            counter("nucdb_shard_latency_ns_count", shard) >= 1,
            "latency histogram for {shard} is empty"
        );
    }

    handle.shutdown();
}

/// A corrupt shard degrades the answer instead of erroring it: the
/// server answers 200 with `coverage < 1` naming the dead shard, the
/// per-shard error metric is visible, and /stats reports the dead row.
#[test]
fn corrupt_shard_degrades_to_partial_coverage_not_500() {
    let coll = collection();
    let qs = queries(&coll, 3);
    let params = SearchParams::default();

    let root = temp_dir("degraded");
    nucdb::build_sharded_root(&root, records(&coll), 3, &DbConfig::default()).unwrap();
    // Truncate shard 1's index below its header: the shard is dead at
    // open, but the SHARDS manifest keeps every other shard's id base.
    let victim = root.join("shard-001").join("index.nucidx");
    let full = std::fs::read(&victim).unwrap();
    std::fs::write(&victim, &full[..8]).unwrap();

    let registry = Arc::new(MetricsRegistry::new());
    let set = Arc::new(ShardSet::open_root(&root, ShardSetConfig::default(), &registry).unwrap());
    let handle = start_sharded(
        "127.0.0.1:0",
        Arc::clone(&set),
        registry,
        params,
        ServeConfig::default(),
    )
    .unwrap();
    let addr = handle.addr();

    // Ready immediately (no scrubber in sharded mode), and every query
    // answers 200 — degraded, never a 500.
    let (status, _) = get(addr, "/readyz");
    assert_eq!(status, 200);
    let (status, body) = post_search(addr, &to_fasta(&qs));
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    let response = json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    let Some(Value::Arr(results)) = response.get("results") else {
        panic!("bad response shape: {}", response.render());
    };
    assert_eq!(results.len(), qs.len());
    for result in results {
        let (ok, total, failed) = coverage_of(result);
        assert_eq!((ok, total), (2, 3));
        assert_eq!(failed, vec!["shard-001".to_string()]);
    }

    // /stats names the dead shard and its manifest-recorded size.
    let (status, stats) = get(addr, "/stats");
    assert_eq!(status, 200);
    let stats = json::parse(std::str::from_utf8(&stats).unwrap()).unwrap();
    let sharded = stats.get("sharded").expect("no sharded block");
    assert_eq!(sharded.get("shards").and_then(Value::as_f64), Some(3.0));
    let Some(Value::Arr(rows)) = sharded.get("rows") else {
        panic!("no shard rows");
    };
    let dead: Vec<&Value> = rows
        .iter()
        .filter(|r| !matches!(r.get("error"), Some(Value::Null) | None))
        .collect();
    assert_eq!(dead.len(), 1);
    assert_eq!(
        dead[0].get("shard").and_then(Value::as_str),
        Some("shard-001")
    );

    // The degraded-query counter moved once per query.
    let (_, metrics) = get(addr, "/metrics");
    let text = String::from_utf8(metrics).unwrap();
    let degraded = text
        .lines()
        .find(|l| l.starts_with("nucdb_shard_degraded_queries_total"))
        .expect("no degraded counter in /metrics")
        .rsplit(' ')
        .next()
        .unwrap()
        .parse::<u64>()
        .unwrap();
    assert!(degraded >= qs.len() as u64);

    handle.shutdown();
}
