//! A strict, bounded HTTP/1.1 request parser and response writer.
//!
//! The server fronts a long-lived database process, so the parser is
//! written for hostile input: every limit is enforced while reading
//! (never after buffering), malformed input maps to a 4xx/5xx status
//! instead of a panic, and a connection can never make the parser read
//! an unbounded amount of memory. Only what the query API needs is
//! implemented: `GET`/`POST`, `Content-Length` bodies (no chunked
//! transfer coding), HTTP/1.0 and 1.1 with 1.1-style keep-alive.

use std::io::{self, BufRead, Write};

/// Hard limits applied while reading a request.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes of request line + headers (CRLFs included).
    pub max_head_bytes: usize,
    /// Maximum declared and read body size.
    pub max_body_bytes: usize,
    /// Maximum number of header fields.
    pub max_headers: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 8 * 1024 * 1024,
            max_headers: 64,
        }
    }
}

/// Request methods the server understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// `GET`.
    Get,
    /// `POST`.
    Post,
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// The method.
    pub method: Method,
    /// Request path with any `?query` suffix removed.
    pub path: String,
    /// The raw `?query` suffix (without the `?`), if present.
    pub query: Option<String>,
    /// Header fields, names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// Does the client want the connection kept open afterwards?
    pub keep_alive: bool,
}

impl Request {
    /// First header value for `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed. Every variant except [`ParseError::Io`]
/// maps to a definite HTTP status via [`ParseError::status`].
#[derive(Debug)]
pub enum ParseError {
    /// Socket-level failure (timeout, reset, early EOF mid-request).
    /// There is nobody to answer; the connection is simply dropped.
    Io(io::Error),
    /// Syntactically invalid request (400).
    BadRequest(&'static str),
    /// Request line + headers exceeded [`Limits::max_head_bytes`] (431).
    HeadTooLarge,
    /// Declared body exceeds [`Limits::max_body_bytes`] (413).
    BodyTooLarge,
    /// `POST` without a `Content-Length` (411).
    LengthRequired,
    /// A method other than GET/POST (405), or a transfer coding we do
    /// not speak (501).
    MethodUnknown,
    /// `Transfer-Encoding` present: only identity bodies are spoken (501).
    NotImplemented(&'static str),
    /// HTTP version other than 1.0/1.1 (505).
    VersionUnsupported,
}

impl ParseError {
    /// The status code + reason to answer with, or `None` when the
    /// connection should be dropped silently (I/O failure).
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            ParseError::Io(_) => None,
            ParseError::BadRequest(_) => Some((400, "Bad Request")),
            ParseError::HeadTooLarge => Some((431, "Request Header Fields Too Large")),
            ParseError::BodyTooLarge => Some((413, "Payload Too Large")),
            ParseError::LengthRequired => Some((411, "Length Required")),
            ParseError::MethodUnknown => Some((405, "Method Not Allowed")),
            ParseError::NotImplemented(_) => Some((501, "Not Implemented")),
            ParseError::VersionUnsupported => Some((505, "HTTP Version Not Supported")),
        }
    }

    /// Human-readable detail for the error body.
    pub fn detail(&self) -> String {
        match self {
            ParseError::Io(e) => format!("i/o: {e}"),
            ParseError::BadRequest(what) => (*what).to_string(),
            ParseError::HeadTooLarge => "request head too large".to_string(),
            ParseError::BodyTooLarge => "request body too large".to_string(),
            ParseError::LengthRequired => "POST requires Content-Length".to_string(),
            ParseError::MethodUnknown => "method not allowed".to_string(),
            ParseError::NotImplemented(what) => (*what).to_string(),
            ParseError::VersionUnsupported => "unsupported HTTP version".to_string(),
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.detail())
    }
}

impl std::error::Error for ParseError {}

/// Read one line terminated by `\n` into `line`, counting against the
/// shared head budget. Returns false on clean EOF before any byte.
fn read_line_bounded(
    reader: &mut impl BufRead,
    line: &mut Vec<u8>,
    budget: &mut usize,
) -> Result<bool, ParseError> {
    line.clear();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(false);
                }
                return Err(ParseError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside request head",
                )));
            }
            Ok(_) => {
                if *budget == 0 {
                    return Err(ParseError::HeadTooLarge);
                }
                *budget -= 1;
                if byte[0] == b'\n' {
                    // Tolerate bare LF; strip an optional trailing CR.
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return Ok(true);
                }
                line.push(byte[0]);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ParseError::Io(e)),
        }
    }
}

/// Read and parse one request. `Ok(None)` means the peer closed the
/// connection cleanly before sending anything (normal keep-alive end).
pub fn read_request(
    reader: &mut impl BufRead,
    limits: &Limits,
) -> Result<Option<Request>, ParseError> {
    let mut budget = limits.max_head_bytes;
    let mut line = Vec::new();
    if !read_line_bounded(reader, &mut line, &mut budget)? {
        return Ok(None);
    }
    let request_line =
        std::str::from_utf8(&line).map_err(|_| ParseError::BadRequest("request line not UTF-8"))?;
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(ParseError::BadRequest("malformed request line"));
    };
    let method = match method {
        "GET" => Method::Get,
        "POST" => Method::Post,
        m if m.chars().all(|c| c.is_ascii_uppercase()) && !m.is_empty() => {
            return Err(ParseError::MethodUnknown)
        }
        _ => return Err(ParseError::BadRequest("malformed method")),
    };
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        v if v.starts_with("HTTP/") => return Err(ParseError::VersionUnsupported),
        _ => return Err(ParseError::BadRequest("malformed HTTP version")),
    };
    if target.is_empty() || !target.starts_with('/') {
        return Err(ParseError::BadRequest("target must be an absolute path"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };

    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        if !read_line_bounded(reader, &mut line, &mut budget)? {
            return Err(ParseError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "eof inside headers",
            )));
        }
        if line.is_empty() {
            break; // end of head
        }
        if headers.len() == limits.max_headers {
            return Err(ParseError::HeadTooLarge);
        }
        let text =
            std::str::from_utf8(&line).map_err(|_| ParseError::BadRequest("header not UTF-8"))?;
        let Some((name, value)) = text.split_once(':') else {
            return Err(ParseError::BadRequest("header without colon"));
        };
        if name.is_empty()
            || name
                .chars()
                .any(|c| c.is_ascii_whitespace() || c.is_ascii_control())
        {
            return Err(ParseError::BadRequest("malformed header name"));
        }
        let value = value.trim();
        if value.chars().any(|c| c.is_ascii_control()) {
            return Err(ParseError::BadRequest("control bytes in header value"));
        }
        headers.push((name.to_ascii_lowercase(), value.to_string()));
    }

    let find = |name: &str| {
        headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    };
    if find("transfer-encoding").is_some() {
        return Err(ParseError::NotImplemented(
            "transfer codings are not supported; send Content-Length",
        ));
    }
    let content_length = match find("content-length") {
        Some(raw) => Some(
            raw.parse::<usize>()
                .map_err(|_| ParseError::BadRequest("unparseable Content-Length"))?,
        ),
        None => None,
    };
    let body_len = match (method, content_length) {
        (Method::Post, None) => return Err(ParseError::LengthRequired),
        (Method::Get, None) => 0,
        (_, Some(n)) if n > limits.max_body_bytes => return Err(ParseError::BodyTooLarge),
        (_, Some(n)) => n,
    };
    let mut body = vec![0u8; body_len];
    if body_len > 0 {
        reader.read_exact(&mut body).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                ParseError::BadRequest("body shorter than Content-Length")
            } else {
                ParseError::Io(e)
            }
        })?;
    }

    let keep_alive = match find("connection").map(str::to_ascii_lowercase) {
        Some(c) if c == "close" => false,
        Some(c) if c == "keep-alive" => true,
        _ => http11,
    };
    Ok(Some(Request {
        method,
        path,
        query,
        headers,
        body,
        keep_alive,
    }))
}

/// A response under construction.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: &'static str,
    /// Extra headers (Content-Type etc.). Content-Length and Connection
    /// are written automatically.
    pub headers: Vec<(&'static str, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A response with an empty body.
    pub fn new(status: u16, reason: &'static str) -> Response {
        Response {
            status,
            reason,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Shorthand: `200 OK`.
    pub fn ok() -> Response {
        Response::new(200, "OK")
    }

    /// Attach a plain-text body.
    pub fn text(mut self, body: impl Into<String>) -> Response {
        self.headers
            .push(("Content-Type", "text/plain; charset=utf-8".to_string()));
        self.body = body.into().into_bytes();
        self
    }

    /// Attach a JSON body.
    pub fn json(mut self, body: impl Into<String>) -> Response {
        self.headers
            .push(("Content-Type", "application/json".to_string()));
        self.body = body.into().into_bytes();
        self
    }

    /// Add a header.
    pub fn header(mut self, name: &'static str, value: impl Into<String>) -> Response {
        self.headers.push((name, value.into()));
        self
    }

    /// Serialize to the wire. `keep_alive` controls the Connection header.
    pub fn write_to(&self, writer: &mut impl Write, keep_alive: bool) -> io::Result<()> {
        let mut head = format!("HTTP/1.1 {} {}\r\n", self.status, self.reason);
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        head.push_str(if keep_alive {
            "Connection: keep-alive\r\n"
        } else {
            "Connection: close\r\n"
        });
        head.push_str("\r\n");
        writer.write_all(head.as_bytes())?;
        writer.write_all(&self.body)?;
        writer.flush()
    }
}

/// The standard reason phrase for the statuses this server emits.
pub fn reason_for(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(text: &[u8]) -> Result<Option<Request>, ParseError> {
        read_request(&mut Cursor::new(text.to_vec()), &Limits::default())
    }

    fn parse_with(text: &[u8], limits: &Limits) -> Result<Option<Request>, ParseError> {
        read_request(&mut Cursor::new(text.to_vec()), limits)
    }

    #[test]
    fn parses_get() {
        let req = parse(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.path, "/metrics");
        assert_eq!(req.query, None);
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.keep_alive);
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_body_and_query() {
        let req = parse(b"POST /search?limit=5 HTTP/1.1\r\nContent-Length: 4\r\n\r\nACGT")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.path, "/search");
        assert_eq!(req.query.as_deref(), Some("limit=5"));
        assert_eq!(req.body, b"ACGT");
    }

    #[test]
    fn http10_defaults_to_close_and_11_to_keep_alive() {
        let old = parse(b"GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!old.keep_alive);
        let new = parse(b"GET / HTTP/1.1\r\n\r\n").unwrap().unwrap();
        assert!(new.keep_alive);
        let closed = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!closed.keep_alive);
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(parse(b"").unwrap().is_none());
    }

    #[test]
    fn truncated_head_is_io_error() {
        for text in [
            b"GET".as_slice(),
            b"GET / HTTP/1.1\r\n".as_slice(),
            b"GET / HTTP/1.1\r\nHost: x".as_slice(),
        ] {
            match parse(text) {
                Err(ParseError::Io(_)) => {}
                other => panic!("{text:?} gave {other:?}"),
            }
        }
    }

    #[test]
    fn malformed_requests_are_400() {
        for text in [
            b"GET/HTTP/1.1\r\n\r\n".as_slice(),
            b"GET / HTTP/1.1 extra\r\n\r\n".as_slice(),
            b"GET relative HTTP/1.1\r\n\r\n".as_slice(),
            b"get / HTTP/1.1\r\n\r\n".as_slice(),
            b"GET / banana\r\n\r\n".as_slice(),
            b"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n".as_slice(),
            b"GET / HTTP/1.1\r\nBad Name: x\r\n\r\n".as_slice(),
            b"POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n".as_slice(),
            b"POST / HTTP/1.1\r\nContent-Length: -4\r\n\r\nACGT".as_slice(),
        ] {
            match parse(text) {
                Err(e) => assert_eq!(
                    e.status().map(|(code, _)| code),
                    Some(400),
                    "{:?} gave {e:?}",
                    String::from_utf8_lossy(text)
                ),
                other => panic!("{:?} gave {other:?}", String::from_utf8_lossy(text)),
            }
        }
    }

    #[test]
    fn body_shorter_than_content_length_is_400() {
        match parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nAC") {
            Err(e) => assert_eq!(e.status().map(|(c, _)| c), Some(400)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn post_without_length_is_411() {
        match parse(b"POST /search HTTP/1.1\r\n\r\n") {
            Err(ParseError::LengthRequired) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn oversized_body_is_413_without_reading_it() {
        let limits = Limits {
            max_body_bytes: 8,
            ..Limits::default()
        };
        // Declared length is over the limit; the parser must refuse
        // before allocating or reading the body.
        match parse_with(
            b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789",
            &limits,
        ) {
            Err(ParseError::BodyTooLarge) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn oversized_head_is_431() {
        let limits = Limits {
            max_head_bytes: 64,
            ..Limits::default()
        };
        let mut text = b"GET / HTTP/1.1\r\n".to_vec();
        text.extend_from_slice(format!("X-Pad: {}\r\n\r\n", "y".repeat(200)).as_bytes());
        match parse_with(&text, &limits) {
            Err(ParseError::HeadTooLarge) => {}
            other => panic!("{other:?}"),
        }
        let many: String = (0..100).map(|i| format!("H{i}: v\r\n")).collect();
        let text = format!("GET / HTTP/1.1\r\n{many}\r\n");
        match parse(text.as_bytes()) {
            Err(ParseError::HeadTooLarge) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_method_and_version_and_te() {
        match parse(b"DELETE / HTTP/1.1\r\n\r\n") {
            Err(ParseError::MethodUnknown) => {}
            other => panic!("{other:?}"),
        }
        match parse(b"GET / HTTP/2.0\r\n\r\n") {
            Err(ParseError::VersionUnsupported) => {}
            other => panic!("{other:?}"),
        }
        match parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n") {
            Err(ParseError::NotImplemented(_)) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn keep_alive_requests_parse_sequentially() {
        let text = b"GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi";
        let mut cursor = Cursor::new(text.to_vec());
        let a = read_request(&mut cursor, &Limits::default())
            .unwrap()
            .unwrap();
        assert_eq!(a.path, "/a");
        let b = read_request(&mut cursor, &Limits::default())
            .unwrap()
            .unwrap();
        assert_eq!(b.path, "/b");
        assert_eq!(b.body, b"hi");
        assert!(read_request(&mut cursor, &Limits::default())
            .unwrap()
            .is_none());
    }

    #[test]
    fn pipelined_garbage_after_valid_request_is_rejected() {
        let text = b"GET /a HTTP/1.1\r\n\r\n\x00\x01\x02garbage\r\n\r\n";
        let mut cursor = Cursor::new(text.to_vec());
        assert!(read_request(&mut cursor, &Limits::default())
            .unwrap()
            .is_some());
        match read_request(&mut cursor, &Limits::default()) {
            Err(e) => assert!(e.status().is_some(), "garbage must map to a status"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn response_serializes_with_length_and_connection() {
        let mut out = Vec::new();
        Response::ok()
            .json("{}")
            .header("Retry-After", "1")
            .write_to(&mut out, false)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    /// Deterministic pseudo-random byte soup: the parser must always
    /// return (never hang) and never panic, and any error must either be
    /// an I/O condition or carry a definite status.
    #[test]
    fn random_bytes_never_panic_or_hang() {
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..500 {
            let len = (next() % 300) as usize;
            let mut bytes: Vec<u8> = (0..len).map(|_| (next() >> 33) as u8).collect();
            if round % 3 == 0 {
                // Half-plausible prefixes stress later parse stages.
                let mut prefixed = b"GET / HTTP/1.1\r\n".to_vec();
                prefixed.extend_from_slice(&bytes);
                bytes = prefixed;
            }
            match parse(&bytes) {
                Ok(_) => {}
                Err(ParseError::Io(_)) => {}
                Err(e) => {
                    let (code, _) = e.status().expect("parse errors carry a status");
                    assert!((400..=599).contains(&code));
                }
            }
        }
    }
}
