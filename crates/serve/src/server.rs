//! The server proper: acceptor, bounded admission queue, worker pool,
//! optional micro-batching collector, and graceful shutdown.
//!
//! # Threading model
//!
//! One **acceptor** thread blocks in `accept()`. Each accepted
//! connection is stamped and pushed into a [`BoundedQueue`]; when the
//! queue is full the acceptor itself answers `503 + Retry-After` and
//! closes — overload is shed at the door, before any parsing or query
//! work. A fixed pool of **worker** threads pops connections, drops
//! those whose queue wait already exceeded the deadline (a client that
//! has given up is not worth serving), then runs the connection's
//! keep-alive request loop to completion. Workers never spawn threads
//! per connection: concurrency is bounded by `threads + queue_depth`.
//!
//! With a batching window configured, workers hand `/search` query
//! batches to a single **collector** thread that coalesces everything
//! arriving within the window into one
//! [`Database::search_batch_parallel`] call (grouped by identical
//! parameters, so results stay bit-identical to sequential evaluation).
//!
//! Shutdown: a flag flips, the acceptor is woken by a self-connection
//! and exits, the queue closes (already-admitted connections drain),
//! workers finish and exit, the collector drains its pending batches,
//! and the trace sink is flushed. No request that was admitted is
//! abandoned.

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use nucdb::{
    build_info, CoarseScratch, Database, IndexVariant, LiveDatabase, RecordSource, SearchOutcome,
    SearchParams, ShardSet, ShardedOutcome,
};
use nucdb_align::calibrate_gumbel;
use nucdb_obs::json::{num, Value};
use nucdb_obs::{Counter, FlightEntry, Gauge, MetricsRegistry};
use nucdb_seq::DnaSeq;

use crate::api::{self, SearchRequest, Significance};
use crate::http::{self, Limits, Method, Request, Response};
use crate::metrics::HttpMetrics;
use crate::queue::BoundedQueue;
use crate::scrub::{scrub_loop, ScrubState};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads handling connections.
    pub threads: usize,
    /// Admission queue capacity; connections beyond it are shed with 503.
    pub queue_depth: usize,
    /// Maximum queue wait before a request is dropped at dequeue.
    pub deadline: Duration,
    /// Micro-batching window; `None` evaluates queries directly on the
    /// worker thread.
    pub batch_window: Option<Duration>,
    /// Stop collecting a batch once this many queries are pending, even
    /// if the window has not elapsed.
    pub batch_max_queries: usize,
    /// Threads used inside one batched `search_batch_parallel` call.
    pub search_threads: usize,
    /// Maximum queries accepted in one `/search` request.
    pub max_queries_per_request: usize,
    /// Idle timeout on a keep-alive connection.
    pub keep_alive_timeout: Duration,
    /// HTTP parsing limits.
    pub limits: Limits,
    /// Background scrubber I/O budget in bytes per second; `0` disables
    /// the scrubber entirely (readiness is then immediate).
    pub scrub_bytes_per_sec: u64,
    /// Background compaction input budget in bytes per second (live mode
    /// only); `0` disables the compaction thread.
    pub compact_bytes_per_sec: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            threads: 4,
            queue_depth: 64,
            deadline: Duration::from_secs(5),
            batch_window: None,
            batch_max_queries: 64,
            search_threads: 4,
            max_queries_per_request: 256,
            keep_alive_timeout: Duration::from_secs(5),
            limits: Limits::default(),
            scrub_bytes_per_sec: 4 << 20,
            compact_bytes_per_sec: 8 << 20,
        }
    }
}

// ---------------------------------------------------------------------
// Request ids
// ---------------------------------------------------------------------

/// Generate a process-unique request id: a per-process nonce (so ids
/// from different server runs never collide in a shared log) plus a
/// monotonic sequence number.
fn generate_request_id() -> String {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    static NONCE: OnceLock<u32> = OnceLock::new();
    let nonce = *NONCE.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_nanos() as u64);
        let mixed = nanos ^ (u64::from(std::process::id()) << 32);
        (mixed as u32) ^ ((mixed >> 32) as u32)
    });
    let seq = COUNTER.fetch_add(1, Ordering::Relaxed);
    format!("req-{nonce:08x}-{seq}")
}

/// A client-supplied `X-Request-Id` is honoured when it is short and
/// printable; anything else is replaced with a generated id (the header
/// lands in logs and trace lines, so it must be safe to echo).
fn sanitize_request_id(raw: &str) -> Option<String> {
    let trimmed = raw.trim();
    let ok =
        !trimmed.is_empty() && trimmed.len() <= 64 && trimmed.chars().all(|c| c.is_ascii_graphic());
    ok.then(|| trimmed.to_string())
}

/// The id for one parsed request: the client's sanitized `X-Request-Id`
/// if it sent one, a generated id otherwise.
fn request_id_for(request: &Request) -> String {
    request
        .header("x-request-id")
        .and_then(sanitize_request_id)
        .unwrap_or_else(generate_request_id)
}

/// Where queries come from: a fixed database, or a live (ingesting)
/// one whose query snapshot is re-fetched per request.
enum DbSource {
    /// Immutable database, shared read-only for the server's lifetime.
    Static(Arc<Database>),
    /// Live database: inserts arrive via `POST /insert`; every request
    /// snapshots the current segmented view.
    Live(Arc<LiveDatabase>),
    /// Sharded database: every query scatters across the set's per-shard
    /// workers and gathers one globally merged answer. Responses carry a
    /// `coverage` object and degrade to partial answers when shards fail.
    Sharded(Arc<ShardSet>),
}

/// Everything the acceptor, workers, and collector share.
struct Shared {
    source: DbSource,
    registry: Arc<MetricsRegistry>,
    metrics: HttpMetrics,
    defaults: SearchParams,
    config: ServeConfig,
    shutdown: AtomicBool,
    batcher: Option<Batcher>,
    started: Instant,
    scrub: ScrubState,
    /// `nucdb_flight_recent_entries`: occupancy of the recent ring,
    /// refreshed at `/metrics` scrape time.
    flight_recent_entries: Gauge,
    /// `nucdb_flight_slow_entries`: occupancy of the slow/error ring.
    flight_slow_entries: Gauge,
    /// `nucdb_flight_dropped_total`: captures evicted from either ring.
    flight_dropped: Counter,
}

impl Shared {
    /// The database to answer this request from. Static mode hands back
    /// the one shared instance; live mode snapshots the current
    /// segmented view (cheap: one `RwLock` read + `Arc` clone), which
    /// stays consistent for the whole request even as inserts land.
    fn db(&self) -> Arc<Database> {
        match &self.source {
            DbSource::Static(db) => Arc::clone(db),
            DbSource::Live(live) => live.snapshot(),
            // Every call site branches on `sharded()` first: a shard set
            // has no single-database view to hand back.
            DbSource::Sharded(_) => unreachable!("sharded mode has no single-database view"),
        }
    }

    /// The live database, when serving in live mode.
    fn live(&self) -> Option<&Arc<LiveDatabase>> {
        match &self.source {
            DbSource::Live(live) => Some(live),
            DbSource::Static(_) | DbSource::Sharded(_) => None,
        }
    }

    /// The shard set, when serving in sharded mode.
    fn sharded(&self) -> Option<&Arc<ShardSet>> {
        match &self.source {
            DbSource::Sharded(set) => Some(set),
            DbSource::Static(_) | DbSource::Live(_) => None,
        }
    }
}

/// A running server. Dropping the handle does *not* stop the server;
/// call [`ServerHandle::shutdown`].
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    queue: Arc<BoundedQueue<TcpStream>>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    collector: Option<JoinHandle<()>>,
    scrubber: Option<JoinHandle<()>>,
    compactor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The configuration the server is running with.
    pub fn config(&self) -> &ServeConfig {
        &self.shared.config
    }

    /// Queries served so far (the `200` response count).
    pub fn requests_ok(&self) -> u64 {
        self.shared.metrics.requests_for(200)
    }

    /// Has shutdown been requested?
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Is the server ready (`GET /readyz` would answer 200)? True once
    /// the first scrub pass over the header and TOC completes, or
    /// immediately when the scrubber is disabled.
    pub fn is_ready(&self) -> bool {
        self.shared.scrub.is_ready()
    }

    /// Scrub corruption findings so far (the
    /// `nucdb_scrub_errors_total` counter).
    pub fn scrub_errors(&self) -> u64 {
        self.shared.scrub.errors.get()
    }

    /// Graceful shutdown: stop accepting, drain every admitted
    /// connection and pending batch, join all threads, flush the trace
    /// sink. Returns once the server is fully stopped, handing back the
    /// metrics registry (now quiescent) so the caller can write a final
    /// snapshot that includes the drained tail.
    pub fn shutdown(mut self) -> Option<Arc<MetricsRegistry>> {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // The acceptor blocks in accept(); a throwaway connection wakes
        // it so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Close the queue: workers drain what was admitted, then exit.
        self.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Workers are done, so no new batch jobs can arrive: drain the
        // collector.
        if let Some(batcher) = &self.shared.batcher {
            batcher.close();
        }
        if let Some(collector) = self.collector.take() {
            let _ = collector.join();
        }
        // The scrubber and compactor poll the shutdown flag between
        // units of work and inside every throttle sleep, so these joins
        // are prompt.
        if let Some(scrubber) = self.scrubber.take() {
            let _ = scrubber.join();
        }
        if let Some(compactor) = self.compactor.take() {
            let _ = compactor.join();
        }
        if self.shared.sharded().is_none() {
            let db = self.shared.db();
            db.metrics().trace.flush();
            db.metrics().forensics.flush();
        }
        // Every thread has been joined, so this handle holds the last
        // strong reference; `None` only if a connection handler leaked.
        Arc::try_unwrap(self.shared)
            .ok()
            .map(|shared| shared.registry)
    }
}

/// Bind `addr` and start serving `db`. The database is moved into the
/// server and shared read-only across all workers (the query path takes
/// `&self`; see the concurrency notes on [`Database`]).
pub fn start(
    addr: impl ToSocketAddrs,
    db: Database,
    registry: MetricsRegistry,
    defaults: SearchParams,
    config: ServeConfig,
) -> std::io::Result<ServerHandle> {
    start_source(
        addr,
        DbSource::Static(Arc::new(db)),
        Arc::new(registry),
        defaults,
        config,
    )
}

/// Bind `addr` and serve a [`LiveDatabase`]: `POST /insert` and
/// `POST /flush` become available, every query snapshots the current
/// segmented view, and a background compaction thread merges small
/// segments at a bounded I/O rate
/// ([`ServeConfig::compact_bytes_per_sec`]). The registry must be the
/// one the live database was opened with (its [`nucdb::LiveOptions`]),
/// so ingestion and query metrics land in one exposition.
pub fn start_live(
    addr: impl ToSocketAddrs,
    live: Arc<LiveDatabase>,
    registry: Arc<MetricsRegistry>,
    defaults: SearchParams,
    config: ServeConfig,
) -> std::io::Result<ServerHandle> {
    start_source(addr, DbSource::Live(live), registry, defaults, config)
}

/// Bind `addr` and serve a [`ShardSet`]: every `/search` query scatters
/// across the set's per-shard worker pool and gathers one globally
/// merged answer, bit-identical to a joint build at full coverage. Each
/// per-query response document carries a `coverage` object; when shards
/// fail (at open or at query time) the server answers with partial
/// results and `coverage < 1` instead of a 500 — only a query *no*
/// shard could answer errors. The registry must be the one the shard
/// set was assembled with, so the per-shard `nucdb_shard_*` families
/// land in this server's `/metrics` exposition. Micro-batching is
/// forced off (the shard workers are the intra-query parallelism) and
/// the scrubber is skipped (`nucdb fsck` audits sharded roots offline),
/// so readiness is immediate.
pub fn start_sharded(
    addr: impl ToSocketAddrs,
    shards: Arc<ShardSet>,
    registry: Arc<MetricsRegistry>,
    defaults: SearchParams,
    mut config: ServeConfig,
) -> std::io::Result<ServerHandle> {
    config.batch_window = None;
    start_source(addr, DbSource::Sharded(shards), registry, defaults, config)
}

fn start_source(
    addr: impl ToSocketAddrs,
    source: DbSource,
    registry: Arc<MetricsRegistry>,
    defaults: SearchParams,
    config: ServeConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let metrics = HttpMetrics::new(&registry);
    build_info::register(&registry);
    let batcher = config.batch_window.map(|_| Batcher::new());
    // The scrubber walks one fixed pair of on-disk files; a live
    // database's segment set changes underneath it, so live mode skips
    // it (per-segment checksums still verify on every query read).
    let scrub_enabled = config.scrub_bytes_per_sec > 0 && matches!(source, DbSource::Static(_));
    let scrub = ScrubState::new(&registry, scrub_enabled);
    let flight_recent_entries = registry.gauge(
        "nucdb_flight_recent_entries",
        "Entries currently retained in the flight recorder's recent ring",
    );
    let flight_slow_entries = registry.gauge(
        "nucdb_flight_slow_entries",
        "Entries currently retained in the flight recorder's slow/error ring",
    );
    let flight_dropped = registry.counter(
        "nucdb_flight_dropped_total",
        "Flight-recorder captures evicted from the recent or slow ring",
    );
    let shared = Arc::new(Shared {
        source,
        registry,
        metrics,
        defaults,
        config,
        shutdown: AtomicBool::new(false),
        batcher,
        started: Instant::now(),
        scrub,
        flight_recent_entries,
        flight_slow_entries,
        flight_dropped,
    });
    let queue = Arc::new(BoundedQueue::new(shared.config.queue_depth));

    let acceptor = {
        let shared = Arc::clone(&shared);
        let queue = Arc::clone(&queue);
        std::thread::Builder::new()
            .name("nucdb-accept".to_string())
            .spawn(move || accept_loop(&shared, &listener, &queue))?
    };
    let workers = (0..shared.config.threads.max(1))
        .map(|i| {
            let shared = Arc::clone(&shared);
            let queue = Arc::clone(&queue);
            std::thread::Builder::new()
                .name(format!("nucdb-worker-{i}"))
                .spawn(move || worker_loop(&shared, &queue))
        })
        .collect::<std::io::Result<Vec<_>>>()?;
    let collector = if shared.batcher.is_some() {
        let shared = Arc::clone(&shared);
        Some(
            std::thread::Builder::new()
                .name("nucdb-batch".to_string())
                .spawn(move || collector_loop(&shared))?,
        )
    } else {
        None
    };
    let scrubber = if scrub_enabled {
        let shared = Arc::clone(&shared);
        Some(
            std::thread::Builder::new()
                .name("nucdb-scrub".to_string())
                .spawn(move || {
                    let db = shared.db();
                    scrub_loop(
                        &db,
                        &shared.scrub,
                        &shared.shutdown,
                        shared.config.scrub_bytes_per_sec,
                    );
                })?,
        )
    } else {
        None
    };
    let compactor = match (&shared.source, shared.config.compact_bytes_per_sec) {
        (DbSource::Live(live), budget) if budget > 0 => {
            let live = Arc::clone(live);
            let shared = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("nucdb-compact".to_string())
                    .spawn(move || compact_loop(&live, &shared.shutdown, budget))?,
            )
        }
        _ => None,
    };

    Ok(ServerHandle {
        addr,
        shared,
        queue,
        acceptor: Some(acceptor),
        workers,
        collector,
        scrubber,
        compactor,
    })
}

/// How long the compactor idles when the size-tiered policy finds no
/// candidate pair. Short enough that a burst of flushes is merged
/// promptly; long enough that an idle server does not spin.
const COMPACT_PAUSE: Duration = Duration::from_millis(200);

/// The background compaction thread body: repeatedly ask the live
/// database for one size-tiered merge, pacing by *input bytes read*
/// through the same leaky-bucket throttle the scrubber uses, so
/// compaction I/O never exceeds `bytes_per_sec` in the long run. Errors
/// are remembered by the status endpoint's counters staying flat; the
/// thread itself backs off and retries — one failed merge (say, a
/// transient I/O error) must not end background maintenance for good.
fn compact_loop(live: &LiveDatabase, shutdown: &AtomicBool, bytes_per_sec: u64) {
    let mut throttle = crate::scrub::Throttle::new(bytes_per_sec);
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        match live.compact_once() {
            Ok(Some(run)) => {
                if throttle.consume(run.input_bytes, shutdown) {
                    return;
                }
            }
            Ok(None) | Err(_) => {
                if crate::scrub::pause(COMPACT_PAUSE, shutdown) {
                    return;
                }
            }
        }
    }
}

fn accept_loop(shared: &Shared, listener: &TcpListener, queue: &Arc<BoundedQueue<TcpStream>>) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match conn {
            Ok(stream) => stream,
            Err(_) => continue,
        };
        shared.metrics.connections.inc();
        match queue.push(stream) {
            Ok(()) => shared.metrics.queue_depth.set(queue.len() as i64),
            Err((_, stream)) => shed(shared, stream),
        }
    }
}

/// Refuse one connection with `503 + Retry-After`.
fn shed(shared: &Shared, mut stream: TcpStream) {
    shared.metrics.shed.inc();
    // Drain what the client already sent before responding: closing a
    // socket with unread received data sends RST, which can discard the
    // 503 sitting in the send buffer before the client reads it.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut sink = [0u8; 4096];
    let _ = stream.read(&mut sink);
    let response = Response::new(503, "Service Unavailable")
        .header("Retry-After", "1")
        .header("X-Request-Id", generate_request_id())
        .text("admission queue full; retry later\n");
    let _ = response.write_to(&mut stream, false);
    shared.metrics.record_response(503, 0);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.read(&mut sink);
}

fn worker_loop(shared: &Shared, queue: &Arc<BoundedQueue<TcpStream>>) {
    let mut scratch = CoarseScratch::new();
    while let Some((admitted, mut stream)) = queue.pop() {
        shared.metrics.queue_depth.set(queue.len() as i64);
        let waited = admitted.elapsed();
        if waited > shared.config.deadline {
            // The client has likely timed out already; answering with
            // real work would be wasted. Tell it to retry instead.
            shared.metrics.expired.inc();
            let response = Response::new(503, "Service Unavailable")
                .header("Retry-After", "1")
                .header("X-Request-Id", generate_request_id())
                .text("request expired in admission queue\n");
            let _ = response.write_to(&mut stream, false);
            shared
                .metrics
                .record_response(503, waited.as_nanos() as u64);
            continue;
        }
        handle_connection(shared, stream, admitted, &mut scratch);
    }
}

fn handle_connection(
    shared: &Shared,
    stream: TcpStream,
    admitted: Instant,
    scratch: &mut CoarseScratch,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.keep_alive_timeout));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = std::io::BufReader::new(read_half);
    let mut writer = stream;
    let mut first = true;
    loop {
        let request = match http::read_request(&mut reader, &shared.config.limits) {
            Ok(Some(request)) => request,
            Ok(None) => return, // clean keep-alive end
            Err(error) => {
                if let Some((status, reason)) = error.status() {
                    // Even a request too malformed to parse gets an id:
                    // the client can still quote it at the operator.
                    let response = Response::new(status, reason)
                        .header("X-Request-Id", generate_request_id())
                        .text(format!("{}\n", error.detail()));
                    let _ = response.write_to(&mut writer, false);
                    shared.metrics.record_response(status, 0);
                }
                return; // parse errors always end the connection
            }
        };
        // The first request's latency includes its queue wait; later
        // keep-alive requests are timed from arrival.
        let start = if first { admitted } else { Instant::now() };
        first = false;
        let request_id = request_id_for(&request);
        let response =
            route(shared, &request, &request_id, scratch).header("X-Request-Id", request_id);
        let keep = request.keep_alive && !shared.shutdown.load(Ordering::SeqCst);
        let status = response.status;
        if response.write_to(&mut writer, keep).is_err() {
            return;
        }
        shared
            .metrics
            .record_response(status, start.elapsed().as_nanos() as u64);
        if !keep {
            return;
        }
    }
}

fn route(
    shared: &Shared,
    request: &Request,
    request_id: &str,
    scratch: &mut CoarseScratch,
) -> Response {
    match (request.method, request.path.as_str()) {
        (Method::Get, "/healthz") => Response::ok().text(format!("ok {}\n", build_info::human())),
        (Method::Get, "/readyz") => {
            // Liveness (`/healthz`) says "the process answers"; readiness
            // additionally requires the first scrub pass to have proven
            // the index header and store TOC readable through the live
            // file handles.
            if shared.scrub.is_ready() {
                Response::ok().text("ready\n")
            } else {
                Response::new(503, "Service Unavailable")
                    .header("Retry-After", "1")
                    .text("not ready: awaiting first scrub pass over header and TOC\n")
            }
        }
        (Method::Get, "/metrics") => {
            update_flight_gauges(shared);
            let mut response = Response::ok().header("Content-Type", "text/plain; version=0.0.4");
            response.body = shared.registry.snapshot().to_prometheus().into_bytes();
            response
        }
        (Method::Get, "/stats") => Response::ok().json(stats_json(shared).render()),
        (Method::Get, "/debug/queries") => match shared.sharded() {
            // Per-shard flight recorders are not aggregated across the
            // set; answer an empty ring rather than erroring.
            Some(_) => Response::ok().json(debug_json(Vec::new(), 0).render()),
            None => {
                let db = shared.db();
                let forensics = &db.metrics().forensics;
                Response::ok()
                    .json(debug_json(forensics.recent(), forensics.recent_capacity()).render())
            }
        },
        (Method::Get, "/debug/slow") => match shared.sharded() {
            Some(_) => Response::ok().json(debug_json(Vec::new(), 0).render()),
            None => {
                let db = shared.db();
                let forensics = &db.metrics().forensics;
                Response::ok()
                    .json(debug_json(forensics.slow(), forensics.slow_capacity()).render())
            }
        },
        (Method::Post, "/search") => search_endpoint(shared, request, request_id, scratch),
        (Method::Post, "/insert") => insert_endpoint(shared, request, request_id),
        (Method::Post, "/flush") => flush_endpoint(shared, request_id),
        (Method::Get, "/search" | "/insert" | "/flush") => Response::new(405, "Method Not Allowed")
            .header("Allow", "POST")
            .text("use POST\n"),
        (
            Method::Post,
            "/healthz" | "/readyz" | "/metrics" | "/stats" | "/debug/queries" | "/debug/slow",
        ) => Response::new(405, "Method Not Allowed")
            .header("Allow", "GET")
            .text("use GET\n"),
        _ => Response::new(404, "Not Found").text("unknown path\n"),
    }
}

/// `POST /insert`: add records to a live database's memtable. The
/// records are searchable as soon as the 200 comes back; durability
/// arrives with the next flush (automatic once the memtable fills, or
/// explicit via `POST /flush`).
fn insert_endpoint(shared: &Shared, request: &Request, request_id: &str) -> Response {
    let Some(live) = shared.live() else {
        return Response::new(409, "Conflict")
            .text("server is not in live mode; restart with --live to accept inserts\n");
    };
    let records = match api::parse_insert_body(&request.body, shared.config.max_queries_per_request)
    {
        Ok(records) => records,
        Err(error) => {
            return Response::new(400, "Bad Request")
                .text(format!("{error} (request {request_id})\n"));
        }
    };
    match live.insert_batch(records) {
        Ok(outcome) => Response::ok().json(
            Value::Obj(vec![
                ("request_id".to_string(), Value::Str(request_id.to_string())),
                ("inserted".to_string(), num(outcome.inserted as u64)),
                (
                    "memtable_records".to_string(),
                    num(u64::from(outcome.memtable_records)),
                ),
                ("flushed".to_string(), Value::Bool(outcome.flushed)),
            ])
            .render(),
        ),
        Err(error) => Response::new(500, "Internal Server Error")
            .text(format!("{error} (request {request_id})\n")),
    }
}

/// `POST /flush`: persist a live database's memtable as an on-disk
/// segment and swap in a manifest naming it. Idempotent: flushing an
/// empty memtable answers `"flushed": false`.
fn flush_endpoint(shared: &Shared, request_id: &str) -> Response {
    let Some(live) = shared.live() else {
        return Response::new(409, "Conflict")
            .text("server is not in live mode; restart with --live to flush\n");
    };
    match live.flush() {
        Ok(flushed) => {
            let status = live.status();
            Response::ok().json(
                Value::Obj(vec![
                    ("request_id".to_string(), Value::Str(request_id.to_string())),
                    ("flushed".to_string(), Value::Bool(flushed)),
                    ("manifest_version".to_string(), num(status.manifest_version)),
                    ("segments".to_string(), num(status.segments.len() as u64)),
                ])
                .render(),
            )
        }
        Err(error) => Response::new(500, "Internal Server Error")
            .text(format!("{error} (request {request_id})\n")),
    }
}

/// Render one flight-recorder ring as the `/debug/*` response document.
fn debug_json(entries: Vec<FlightEntry>, capacity: usize) -> Value {
    Value::Obj(vec![
        ("capacity".to_string(), num(capacity as u64)),
        ("count".to_string(), num(entries.len() as u64)),
        (
            "queries".to_string(),
            Value::Arr(entries.iter().map(FlightEntry::to_value).collect()),
        ),
    ])
}

/// Refresh the flight-recorder occupancy gauges and eviction counter
/// from the rings' cursors. Called at `/metrics` scrape time: the rings
/// have no registry hooks of their own, and scrape-time refresh keeps
/// the query path free of extra atomics.
fn update_flight_gauges(shared: &Shared) {
    if shared.sharded().is_some() {
        return; // no flight recorder in front of a shard set
    }
    let db = shared.db();
    let forensics = &db.metrics().forensics;
    let recent_recorded = forensics.recent_recorded();
    let slow_recorded = forensics.slow_recorded();
    let recent_capacity = forensics.recent_capacity() as u64;
    let slow_capacity = forensics.slow_capacity() as u64;
    shared
        .flight_recent_entries
        .set(recent_recorded.min(recent_capacity) as i64);
    shared
        .flight_slow_entries
        .set(slow_recorded.min(slow_capacity) as i64);
    let dropped = recent_recorded.saturating_sub(recent_capacity)
        + slow_recorded.saturating_sub(slow_capacity);
    let counted = shared.flight_dropped.get();
    if dropped > counted {
        shared.flight_dropped.add(dropped - counted);
    }
}

fn stats_json(shared: &Shared) -> Value {
    if let Some(set) = shared.sharded() {
        return sharded_stats_json(shared, set);
    }
    let db = shared.db();
    let forensics = &db.metrics().forensics;
    Value::Obj(vec![
        ("records".to_string(), num(db.len() as u64)),
        (
            "total_bases".to_string(),
            num(db.store().total_bases() as u64),
        ),
        (
            "uptime_seconds".to_string(),
            Value::Num(shared.started.elapsed().as_secs_f64()),
        ),
        (
            "batching".to_string(),
            Value::Bool(shared.batcher.is_some()),
        ),
        ("build_info".to_string(), build_info::as_json()),
        (
            "forensics".to_string(),
            Value::Obj(vec![
                ("enabled".to_string(), Value::Bool(forensics.is_enabled())),
                (
                    "recent_capacity".to_string(),
                    num(forensics.recent_capacity() as u64),
                ),
                (
                    "slow_capacity".to_string(),
                    num(forensics.slow_capacity() as u64),
                ),
                (
                    "slow_threshold_ns".to_string(),
                    match forensics.slow_threshold_ns() {
                        Some(ns) if ns < u64::MAX => num(ns),
                        _ => Value::Null,
                    },
                ),
            ]),
        ),
        ("scrub".to_string(), shared.scrub.to_value()),
        ("live".to_string(), live_json(shared)),
        (
            // Shape and on-disk layout of the loaded index (`null` for
            // a memory-resident index — `nucdb stat` covers that case
            // offline — and for a segmented live view, whose `live`
            // block above describes the segments instead). Computed per
            // request from the in-memory vocab; no disk I/O.
            "index_stats".to_string(),
            match db.index() {
                IndexVariant::Disk(index) => nucdb::IndexStatReport::from_disk(index).to_value(),
                IndexVariant::Memory(_) | IndexVariant::Segmented(_) => Value::Null,
            },
        ),
        ("metrics".to_string(), shared.registry.snapshot().to_json()),
    ])
}

/// `GET /stats` for a sharded server: shard rows (name, record base,
/// liveness) replace the single-database `index_stats`/`forensics`
/// blocks, which have no aggregate meaning across a set.
fn sharded_stats_json(shared: &Shared, set: &ShardSet) -> Value {
    let rows = set
        .shard_rows()
        .into_iter()
        .map(|(name, base, records, error)| {
            Value::Obj(vec![
                ("shard".to_string(), Value::Str(name)),
                ("record_base".to_string(), num(u64::from(base))),
                ("records".to_string(), num(u64::from(records))),
                (
                    "error".to_string(),
                    match error {
                        Some(cause) => Value::Str(cause),
                        None => Value::Null,
                    },
                ),
            ])
        })
        .collect();
    Value::Obj(vec![
        ("records".to_string(), num(set.len() as u64)),
        ("total_bases".to_string(), num(set.total_bases())),
        (
            "uptime_seconds".to_string(),
            Value::Num(shared.started.elapsed().as_secs_f64()),
        ),
        ("batching".to_string(), Value::Bool(false)),
        ("build_info".to_string(), build_info::as_json()),
        (
            "sharded".to_string(),
            Value::Obj(vec![
                ("shards".to_string(), num(set.num_shards() as u64)),
                ("rows".to_string(), Value::Arr(rows)),
            ]),
        ),
        ("scrub".to_string(), shared.scrub.to_value()),
        ("metrics".to_string(), shared.registry.snapshot().to_json()),
    ])
}

/// The `live` block of `GET /stats`: segment list, memtable occupancy,
/// and flush/compaction work counters. `null` in static mode.
fn live_json(shared: &Shared) -> Value {
    let Some(live) = shared.live() else {
        return Value::Null;
    };
    let status = live.status();
    let segments = status
        .segments
        .iter()
        .map(|seg| {
            Value::Obj(vec![
                ("id".to_string(), num(seg.id)),
                ("records".to_string(), num(u64::from(seg.records))),
                ("index_bytes".to_string(), num(seg.index_bytes)),
                ("store_bytes".to_string(), num(seg.store_bytes)),
            ])
        })
        .collect();
    Value::Obj(vec![
        ("manifest_version".to_string(), num(status.manifest_version)),
        ("segments".to_string(), Value::Arr(segments)),
        (
            "memtable_records".to_string(),
            num(u64::from(status.memtable_records)),
        ),
        (
            "memtable_runs".to_string(),
            num(status.memtable_runs as u64),
        ),
        ("flushes".to_string(), num(status.flushes)),
        (
            "compaction".to_string(),
            Value::Obj(vec![
                ("runs".to_string(), num(status.compaction_runs)),
                ("input_bytes".to_string(), num(status.compaction_bytes)),
                (
                    "seconds".to_string(),
                    Value::Num(status.compaction_nanos as f64 / 1e9),
                ),
            ]),
        ),
        (
            "orphans_removed_at_open".to_string(),
            num(status.orphans_removed),
        ),
    ])
}

fn search_endpoint(
    shared: &Shared,
    request: &Request,
    request_id: &str,
    scratch: &mut CoarseScratch,
) -> Response {
    let parsed = api::parse_search_body(
        &request.body,
        &shared.defaults,
        shared.config.max_queries_per_request,
    );
    let search = match parsed {
        Ok(search) => search,
        Err(error) => {
            return Response::new(400, "Bad Request")
                .text(format!("{error} (request {request_id})\n"));
        }
    };
    if let Some(set) = shared.sharded() {
        return sharded_search_endpoint(set, &search, request_id);
    }
    let db = shared.db();
    let outcomes = match evaluate(shared, &db, &search, request_id, scratch) {
        Ok(outcomes) => outcomes,
        Err(error) => {
            return Response::new(500, "Internal Server Error")
                .text(format!("{error} (request {request_id})\n"));
        }
    };
    // Mean record length for Gumbel calibration (matches the CLI).
    // Computed from the request's snapshot so live-mode inserts are
    // reflected immediately.
    let mean_len = (db.store().total_bases() / db.len().max(1)).max(1);
    let per_query = search
        .queries
        .iter()
        .zip(&outcomes)
        .map(|(query, outcome)| {
            let significance = search.evalue.then(|| {
                // Same calibration the CLI `search --evalue` uses, so
                // server answers match offline answers exactly.
                let fit = calibrate_gumbel(
                    &search.params.scheme,
                    query.seq.len().max(16),
                    mean_len,
                    48,
                    0xCAFE,
                );
                outcome
                    .results
                    .iter()
                    .map(|result| {
                        let target_len = db.store().record_len(result.record);
                        Significance {
                            bits: fit.bit_score(result.score),
                            evalue: fit.evalue(query.seq.len(), target_len, result.score),
                        }
                    })
                    .collect::<Vec<_>>()
            });
            api::outcome_to_json(query, outcome, significance.as_deref())
        })
        .collect();
    Response::ok().json(api::response_to_json(per_query, request_id).render())
}

/// `/search` over a shard set: scatter-gather per query. Degraded
/// coverage still answers 200 — the per-query `coverage` object tells
/// the client how complete its answer is; only a query *no* shard
/// could answer (or a parameter sharding cannot honour, like
/// `max_accumulators`) becomes a 500.
fn sharded_search_endpoint(set: &ShardSet, search: &SearchRequest, request_id: &str) -> Response {
    let mut outcomes = Vec::with_capacity(search.queries.len());
    for query in &search.queries {
        match set.search(&query.seq, &search.params) {
            Ok(outcome) => outcomes.push(outcome),
            Err(error) => {
                return Response::new(500, "Internal Server Error")
                    .text(format!("{error} (request {request_id})\n"));
            }
        }
    }
    // Mean record length over the whole set (dead shards included via
    // the manifest's record counts), matching the joint build's
    // calibration inputs so e-values agree at full coverage.
    let mean_len = (set.total_bases() as usize / set.len().max(1)).max(1);
    let per_query = search
        .queries
        .iter()
        .zip(&outcomes)
        .map(|(query, outcome)| {
            let significance = search.evalue.then(|| {
                let fit = calibrate_gumbel(
                    &search.params.scheme,
                    query.seq.len().max(16),
                    mean_len,
                    48,
                    0xCAFE,
                );
                outcome
                    .results
                    .iter()
                    .map(|result| Significance {
                        bits: fit.bit_score(result.score),
                        evalue: fit.evalue(
                            query.seq.len(),
                            set.record_len(result.record),
                            result.score,
                        ),
                    })
                    .collect::<Vec<_>>()
            });
            sharded_query_json(query, outcome, significance.as_deref())
        })
        .collect();
    Response::ok().json(api::response_to_json(per_query, request_id).render())
}

/// One sharded query's response document: the engine-shaped answer
/// document plus a `coverage` object naming any failed shards.
fn sharded_query_json(
    query: &api::ApiQuery,
    outcome: &ShardedOutcome,
    significance: Option<&[Significance]>,
) -> Value {
    let engine_shaped = SearchOutcome {
        results: outcome.results.clone(),
        stats: outcome.stats,
        explain: None,
    };
    let mut doc = api::outcome_to_json(query, &engine_shaped, significance);
    let failures = outcome
        .failures
        .iter()
        .map(|failure| {
            Value::Obj(vec![
                ("shard".to_string(), Value::Str(failure.shard.clone())),
                ("error".to_string(), Value::Str(failure.error.clone())),
            ])
        })
        .collect();
    if let Value::Obj(members) = &mut doc {
        members.push((
            "coverage".to_string(),
            Value::Obj(vec![
                (
                    "shards_ok".to_string(),
                    num(outcome.coverage.shards_ok as u64),
                ),
                (
                    "shards_total".to_string(),
                    num(outcome.coverage.shards_total as u64),
                ),
                (
                    "fraction".to_string(),
                    Value::Num(outcome.coverage.fraction()),
                ),
                ("failures".to_string(), Value::Arr(failures)),
            ]),
        ));
    }
    doc
}

/// Evaluate a request's queries: through the batching collector when
/// one is running, directly on the worker's scratch otherwise. Both
/// paths produce identical outcomes.
fn evaluate(
    shared: &Shared,
    db: &Database,
    search: &SearchRequest,
    request_id: &str,
    scratch: &mut CoarseScratch,
) -> Result<Vec<SearchOutcome>, String> {
    if let Some(batcher) = &shared.batcher {
        let queries: Vec<DnaSeq> = search.queries.iter().map(|q| q.seq.clone()).collect();
        if let Some(result) = batcher.submit(queries, search.params, request_id.to_string()) {
            return result;
        }
        // Collector already closed (shutdown drain): fall through.
    }
    search
        .queries
        .iter()
        .map(|query| {
            db.search_with_id(&query.seq, &search.params, scratch, Some(request_id))
                .map_err(|e| e.to_string())
        })
        .collect()
}

// ---------------------------------------------------------------------
// Micro-batching collector
// ---------------------------------------------------------------------

/// One submitted unit of work: a request's queries plus the slot its
/// results are delivered through.
struct BatchJob {
    queries: Vec<DnaSeq>,
    params: SearchParams,
    /// The HTTP request's id, stamped onto each of its queries' traces.
    request_id: String,
    slot: Arc<Slot>,
}

/// A rendezvous cell: the submitting worker blocks on it until the
/// collector deposits the batch's outcome.
struct Slot {
    result: Mutex<Option<Result<Vec<SearchOutcome>, String>>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Arc<Slot> {
        Arc::new(Slot {
            result: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    fn deliver(&self, value: Result<Vec<SearchOutcome>, String>) {
        *self.result.lock().expect("slot poisoned") = Some(value);
        self.ready.notify_one();
    }

    fn wait(&self) -> Result<Vec<SearchOutcome>, String> {
        let mut guard = self.result.lock().expect("slot poisoned");
        loop {
            if let Some(value) = guard.take() {
                return value;
            }
            guard = self.ready.wait(guard).expect("slot poisoned");
        }
    }
}

struct BatchState {
    jobs: Vec<BatchJob>,
    closed: bool,
}

/// The submission side of the micro-batching collector.
struct Batcher {
    state: Mutex<BatchState>,
    arrived: Condvar,
}

impl Batcher {
    fn new() -> Batcher {
        Batcher {
            state: Mutex::new(BatchState {
                jobs: Vec::new(),
                closed: false,
            }),
            arrived: Condvar::new(),
        }
    }

    /// Queue `queries` and block until the collector evaluates them.
    /// Returns `None` when the collector is closed (caller should
    /// evaluate directly).
    fn submit(
        &self,
        queries: Vec<DnaSeq>,
        params: SearchParams,
        request_id: String,
    ) -> Option<Result<Vec<SearchOutcome>, String>> {
        let slot = Slot::new();
        {
            let mut state = self.state.lock().expect("batcher poisoned");
            if state.closed {
                return None;
            }
            state.jobs.push(BatchJob {
                queries,
                params,
                request_id,
                slot: Arc::clone(&slot),
            });
        }
        self.arrived.notify_all();
        Some(slot.wait())
    }

    fn close(&self) {
        self.state.lock().expect("batcher poisoned").closed = true;
        self.arrived.notify_all();
    }
}

fn collector_loop(shared: &Shared) {
    let batcher = shared.batcher.as_ref().expect("collector without batcher");
    let window = shared
        .config
        .batch_window
        .expect("collector without window");
    loop {
        // Phase 1: sleep until the first job (or closure).
        {
            let mut state = batcher.state.lock().expect("batcher poisoned");
            while state.jobs.is_empty() && !state.closed {
                state = batcher.arrived.wait(state).expect("batcher poisoned");
            }
            if state.jobs.is_empty() && state.closed {
                return; // drained and closed: done
            }
        }
        // Phase 2: keep the window open, coalescing arrivals, until it
        // elapses or enough queries are pending.
        let deadline = Instant::now() + window;
        let jobs = loop {
            let mut state = batcher.state.lock().expect("batcher poisoned");
            let pending: usize = state.jobs.iter().map(|j| j.queries.len()).sum();
            let now = Instant::now();
            if pending >= shared.config.batch_max_queries || now >= deadline || state.closed {
                break std::mem::take(&mut state.jobs);
            }
            let (next, _) = batcher
                .arrived
                .wait_timeout(state, deadline - now)
                .expect("batcher poisoned");
            drop(next);
        };
        evaluate_batch(shared, jobs);
    }
}

/// Run one coalesced batch. Jobs are grouped by identical parameters;
/// each group becomes a single parallel batch call, whose outcomes are
/// split back to the submitting requests in order.
fn evaluate_batch(shared: &Shared, mut jobs: Vec<BatchJob>) {
    if jobs.is_empty() {
        return;
    }
    let total: usize = jobs.iter().map(|j| j.queries.len()).sum();
    shared.metrics.batches.inc();
    shared.metrics.batch_size.record(total as u64);
    // One snapshot for the whole batch: every query in it sees the same
    // record-id space, exactly like the static case.
    let db = shared.db();

    while !jobs.is_empty() {
        let params = jobs[0].params;
        let (group, rest): (Vec<BatchJob>, Vec<BatchJob>) =
            jobs.into_iter().partition(|j| j.params == params);
        jobs = rest;

        let flat: Vec<DnaSeq> = group.iter().flat_map(|j| j.queries.clone()).collect();
        let flat_ids: Vec<String> = group
            .iter()
            .flat_map(|j| std::iter::repeat_n(j.request_id.clone(), j.queries.len()))
            .collect();
        match db.search_batch_parallel_with_ids(
            &flat,
            Some(&flat_ids),
            &params,
            shared.config.search_threads,
        ) {
            Ok(outcomes) => {
                let mut cursor = outcomes.into_iter();
                for job in &group {
                    let share: Vec<SearchOutcome> =
                        cursor.by_ref().take(job.queries.len()).collect();
                    job.slot.deliver(Ok(share));
                }
            }
            Err(error) => {
                let message = error.to_string();
                for job in &group {
                    job.slot.deliver(Err(message.clone()));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Termination signal flag
// ---------------------------------------------------------------------

/// Process-wide "please stop" flag, set by SIGINT/SIGTERM.
static TERMINATED: AtomicBool = AtomicBool::new(false);

/// Install SIGINT/SIGTERM handlers that flip the termination flag (a
/// no-op off Unix). Async-signal-safe: the handler only stores to an
/// atomic. Call once before the serve loop.
pub fn install_termination_flag() {
    #[cfg(unix)]
    {
        type Handler = extern "C" fn(i32);
        extern "C" {
            // std already links libc on every Unix target, so this is a
            // plain declaration, not a new dependency.
            fn signal(signum: i32, handler: Handler) -> isize;
        }
        extern "C" fn on_signal(_signum: i32) {
            TERMINATED.store(true, Ordering::SeqCst);
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

/// Has a termination signal been received (or requested in-process)?
pub fn termination_requested() -> bool {
    TERMINATED.load(Ordering::SeqCst)
}

/// Flip the termination flag from within the process (tests, embedders).
pub fn request_termination() {
    TERMINATED.store(true, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    // Shareability is what the whole design rests on: one Database,
    // many worker threads, queries through `&self`.
    #[test]
    fn database_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Database>();
        assert_send_sync::<Shared>();
    }

    #[test]
    fn slot_rendezvous_delivers_across_threads() {
        let slot = Slot::new();
        let waiter = {
            let slot = Arc::clone(&slot);
            std::thread::spawn(move || slot.wait())
        };
        std::thread::sleep(Duration::from_millis(10));
        slot.deliver(Ok(Vec::new()));
        assert!(waiter.join().unwrap().is_ok());
    }

    #[test]
    fn termination_flag_round_trips() {
        install_termination_flag();
        assert!(!termination_requested() || TERMINATED.load(Ordering::SeqCst));
        request_termination();
        assert!(termination_requested());
        TERMINATED.store(false, Ordering::SeqCst);
    }
}
