//! Server-side metric families, registered in the same
//! [`MetricsRegistry`] the engine binds to, so one `GET /metrics`
//! scrape exposes the whole stack: HTTP front-end, admission queue,
//! batching, engine stages, and index/store I/O.

use nucdb_obs::{Counter, Gauge, Histogram, MetricsRegistry};

/// The response codes the server emits, pre-registered so the hot path
/// never touches the registry lock.
const CODES: &[u16] = &[200, 400, 404, 405, 408, 411, 413, 431, 500, 501, 503, 505];

/// Pre-registered handles for the HTTP front-end.
#[derive(Clone, Default)]
pub struct HttpMetrics {
    /// `nucdb_http_requests_total{code=...}`, one counter per status.
    requests: Vec<(u16, Counter)>,
    /// Requests with a status outside [`CODES`] (should stay zero).
    requests_other: Counter,
    /// End-to-end request latency (parse → response flushed).
    pub request_latency: Histogram,
    /// Connections accepted.
    pub connections: Counter,
    /// Current admission-queue depth.
    pub queue_depth: Gauge,
    /// Connections shed with 503 because the queue was full.
    pub shed: Counter,
    /// Requests dropped at dequeue because their deadline had passed.
    pub expired: Counter,
    /// Micro-batches evaluated.
    pub batches: Counter,
    /// Queries per evaluated micro-batch.
    pub batch_size: Histogram,
}

impl HttpMetrics {
    /// Register the family in `registry` (live no-op handles when the
    /// registry is disabled).
    pub fn new(registry: &MetricsRegistry) -> HttpMetrics {
        let requests = CODES
            .iter()
            .map(|&code| {
                (
                    code,
                    registry.counter_with(
                        "nucdb_http_requests_total",
                        "HTTP responses sent, by status code",
                        &[("code", &code.to_string())],
                    ),
                )
            })
            .collect();
        HttpMetrics {
            requests,
            requests_other: registry.counter_with(
                "nucdb_http_requests_total",
                "HTTP responses sent, by status code",
                &[("code", "other")],
            ),
            request_latency: registry.histogram(
                "nucdb_http_request_latency_ns",
                "End-to-end HTTP request latency in nanoseconds",
            ),
            connections: registry.counter(
                "nucdb_http_connections_total",
                "TCP connections accepted by the server",
            ),
            queue_depth: registry.gauge(
                "nucdb_http_queue_depth",
                "Connections waiting in the admission queue",
            ),
            shed: registry.counter(
                "nucdb_http_shed_total",
                "Connections refused with 503 because the admission queue was full",
            ),
            expired: registry.counter(
                "nucdb_http_expired_total",
                "Requests dropped at dequeue because their queue deadline had passed",
            ),
            batches: registry.counter(
                "nucdb_http_batches_total",
                "Micro-batches evaluated by the batching collector",
            ),
            batch_size: registry
                .histogram("nucdb_http_batch_size", "Queries per evaluated micro-batch"),
        }
    }

    /// Fully detached handles (every record call is one branch).
    pub fn disabled() -> HttpMetrics {
        HttpMetrics::default()
    }

    /// Count one response with `status`, `nanos` after the request was
    /// admitted.
    pub fn record_response(&self, status: u16, nanos: u64) {
        match self.requests.iter().find(|(code, _)| *code == status) {
            Some((_, counter)) => counter.inc(),
            None => self.requests_other.inc(),
        }
        self.request_latency.record(nanos);
    }

    /// The counter for one status code (useful in tests).
    pub fn requests_for(&self, status: u16) -> u64 {
        self.requests
            .iter()
            .find(|(code, _)| *code == status)
            .map_or(0, |(_, c)| c.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_pre_registered_and_counted() {
        let registry = MetricsRegistry::new();
        let metrics = HttpMetrics::new(&registry);
        metrics.record_response(200, 1_000);
        metrics.record_response(200, 2_000);
        metrics.record_response(503, 10);
        metrics.record_response(299, 10); // unknown → "other"
        assert_eq!(metrics.requests_for(200), 2);
        assert_eq!(metrics.requests_for(503), 1);
        assert_eq!(metrics.requests_other.get(), 1);

        let prom = registry.snapshot().to_prometheus();
        assert!(prom.contains("nucdb_http_requests_total{code=\"200\"} 2"));
        assert!(prom.contains("nucdb_http_requests_total{code=\"503\"} 1"));
        assert!(prom.contains("nucdb_http_request_latency_ns_count 4"));
    }

    #[test]
    fn disabled_is_inert() {
        let metrics = HttpMetrics::disabled();
        metrics.record_response(200, 1);
        metrics.shed.inc();
        assert_eq!(metrics.requests_for(200), 0);
        assert_eq!(metrics.shed.get(), 0);
    }
}
