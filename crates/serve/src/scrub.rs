//! Background index/store scrubber.
//!
//! A long-lived server sits on on-disk files that can rot underneath it
//! — a bad sector, a truncating copy, a stray write. The query path
//! verifies checksums for the bytes a query touches, but cold regions
//! of the index may go unread for days. The scrubber closes that gap:
//! one low-priority thread continuously re-reads every checksummed
//! section through the live file handles and re-verifies it, at a
//! bounded I/O rate so it never competes with query traffic.
//!
//! One **cycle** is: header + store TOC (the structural skeleton), then
//! every postings list, then every record blob. Completing the first
//! header/TOC pass flips the server's readiness (`GET /readyz`): from
//! that point the structural metadata has been proven readable *through
//! the live handles*, not just at `open()` time. Damage found mid-cycle
//! is counted and remembered but does not stop the scrubber — a single
//! bad list must not hide damage elsewhere.
//!
//! The scrubber uses the counter-free verification methods
//! ([`nucdb_index::OnDiskIndex::verify_list_at`],
//! [`nucdb::OnDiskStore::verify_record`], and the `scrub_*` pair), so
//! `nucdb_index_bytes_read_total` and friends keep meaning "bytes read
//! *for queries*" even with the scrubber running; scrub I/O is reported
//! separately as `nucdb_scrub_bytes_total`.

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use nucdb::{Database, IndexVariant, StoreVariant};
use nucdb_obs::json::{num, Value};
use nucdb_obs::{Counter, Gauge, MetricsRegistry};

/// How long the scrubber idles between full cycles. Short enough that
/// tests observe multiple cycles quickly; long enough that a tiny
/// database does not spin.
const CYCLE_PAUSE: Duration = Duration::from_millis(200);

/// Granularity of interruptible sleeps: shutdown latency is bounded by
/// this regardless of how far the throttle wants to wait.
const SLEEP_SLICE: Duration = Duration::from_millis(25);

/// Shared scrub state: metric handles plus the readiness flag the
/// `/readyz` endpoint reports. Lives in the server's `Shared` block;
/// the scrubber thread writes, request handlers read.
pub struct ScrubState {
    /// Is a scrubber thread running? (`false` when the I/O budget is 0.)
    pub enabled: bool,
    /// Flips once the first header/TOC pass completes (or immediately
    /// when there is nothing to scrub).
    ready: AtomicBool,
    /// `nucdb_scrub_bytes_total`: bytes re-read and verified.
    pub bytes: Counter,
    /// `nucdb_scrub_errors_total`: checksum/structure failures found.
    pub errors: Counter,
    /// `nucdb_scrub_cycles_total`: completed full cycles.
    pub cycles: Counter,
    /// `nucdb_scrub_last_complete_seconds`: Unix time of the last
    /// completed cycle (0 until the first completes).
    pub last_complete: Gauge,
    /// Mirror of `last_complete` readable without a registry (the gauge
    /// may be a no-op handle when metrics are disabled).
    last_complete_unix: AtomicI64,
    /// Human-readable description of the most recent scrub failure.
    last_error: Mutex<Option<String>>,
}

impl ScrubState {
    /// Register the scrub metric family in `registry`. `enabled` is
    /// whether a scrubber thread will actually run; when it will not,
    /// readiness is immediate (there is no first pass to wait for).
    pub fn new(registry: &MetricsRegistry, enabled: bool) -> ScrubState {
        ScrubState {
            enabled,
            ready: AtomicBool::new(!enabled),
            bytes: registry.counter(
                "nucdb_scrub_bytes_total",
                "Bytes re-read and checksum-verified by the background scrubber",
            ),
            errors: registry.counter(
                "nucdb_scrub_errors_total",
                "Corruption findings (checksum or structure) from the background scrubber",
            ),
            cycles: registry.counter(
                "nucdb_scrub_cycles_total",
                "Completed background scrub cycles over the whole index and store",
            ),
            last_complete: registry.gauge(
                "nucdb_scrub_last_complete_seconds",
                "Unix time when the last background scrub cycle completed",
            ),
            last_complete_unix: AtomicI64::new(0),
            last_error: Mutex::new(None),
        }
    }

    /// Has the first header/TOC pass completed (or was there nothing to
    /// scrub)? This is the `/readyz` signal.
    pub fn is_ready(&self) -> bool {
        self.ready.load(Ordering::SeqCst)
    }

    fn mark_ready(&self) {
        self.ready.store(true, Ordering::SeqCst);
    }

    fn note_error(&self, detail: String) {
        self.errors.inc();
        *self.last_error.lock().unwrap_or_else(|e| e.into_inner()) = Some(detail);
    }

    fn complete_cycle(&self) {
        self.cycles.inc();
        let now = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0, |d| d.as_secs() as i64);
        self.last_complete.set(now);
        self.last_complete_unix.store(now, Ordering::Relaxed);
    }

    /// The `scrub` block of `GET /stats`.
    pub fn to_value(&self) -> Value {
        let last = self.last_complete_unix.load(Ordering::Relaxed);
        let last_error = self
            .last_error
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        Value::Obj(vec![
            ("enabled".to_string(), Value::Bool(self.enabled)),
            ("ready".to_string(), Value::Bool(self.is_ready())),
            ("bytes_verified_total".to_string(), num(self.bytes.get())),
            ("errors_total".to_string(), num(self.errors.get())),
            ("cycles_total".to_string(), num(self.cycles.get())),
            (
                "last_complete_unix_seconds".to_string(),
                if last > 0 {
                    num(last as u64)
                } else {
                    Value::Null
                },
            ),
            (
                "last_error".to_string(),
                last_error.map_or(Value::Null, Value::Str),
            ),
        ])
    }
}

/// Leaky-bucket throttle: after verifying `n` bytes the scrubber sleeps
/// until elapsed wall time covers `consumed / bytes_per_sec`, so the
/// long-run scrub read rate never exceeds the budget. The window resets
/// once a second so a long stall does not bank an unbounded burst.
pub(crate) struct Throttle {
    bytes_per_sec: u64,
    window_start: Instant,
    consumed: u64,
}

impl Throttle {
    pub(crate) fn new(bytes_per_sec: u64) -> Throttle {
        Throttle {
            bytes_per_sec,
            window_start: Instant::now(),
            consumed: 0,
        }
    }

    /// Account `n` verified bytes and sleep as needed. Returns `true`
    /// when shutdown was requested mid-sleep.
    pub(crate) fn consume(&mut self, n: u64, shutdown: &AtomicBool) -> bool {
        if self.bytes_per_sec == 0 {
            return shutdown.load(Ordering::SeqCst);
        }
        self.consumed = self.consumed.saturating_add(n);
        let target = Duration::from_secs_f64(self.consumed as f64 / self.bytes_per_sec as f64);
        while self.window_start.elapsed() < target {
            if shutdown.load(Ordering::SeqCst) {
                return true;
            }
            let remaining = target.saturating_sub(self.window_start.elapsed());
            std::thread::sleep(remaining.min(SLEEP_SLICE));
        }
        if self.window_start.elapsed() >= Duration::from_secs(1) {
            self.window_start = Instant::now();
            self.consumed = 0;
        }
        shutdown.load(Ordering::SeqCst)
    }
}

/// Interruptible pause between cycles. Returns `true` on shutdown.
pub(crate) fn pause(total: Duration, shutdown: &AtomicBool) -> bool {
    let start = Instant::now();
    while start.elapsed() < total {
        if shutdown.load(Ordering::SeqCst) {
            return true;
        }
        std::thread::sleep(SLEEP_SLICE);
    }
    shutdown.load(Ordering::SeqCst)
}

/// The scrubber thread body: cycle over header/TOC, then every postings
/// list, then every record, at `bytes_per_sec`, until `shutdown` flips.
/// Memory-resident variants have no on-disk bytes to verify and are
/// skipped; a fully in-memory database makes every cycle trivially
/// complete (readiness still flips after the first pass).
pub fn scrub_loop(db: &Database, state: &ScrubState, shutdown: &AtomicBool, bytes_per_sec: u64) {
    let mut throttle = Throttle::new(bytes_per_sec);
    loop {
        // Structural pass: prove the header and TOC readable through
        // the live handles before declaring the server ready.
        if let IndexVariant::Disk(index) = db.index() {
            match index.scrub_header() {
                Ok(n) => {
                    state.bytes.add(n);
                    if throttle.consume(n, shutdown) {
                        return;
                    }
                }
                Err(e) => state.note_error(format!("index header: {e}")),
            }
        }
        if let StoreVariant::Disk(store) = db.store() {
            match store.scrub_toc() {
                Ok(n) => {
                    state.bytes.add(n);
                    if throttle.consume(n, shutdown) {
                        return;
                    }
                }
                Err(e) => state.note_error(format!("store toc: {e}")),
            }
        }
        state.mark_ready();

        // Payload pass: every postings list, then every record blob.
        if let IndexVariant::Disk(index) = db.index() {
            for i in 0..index.vocab().len() {
                match index.verify_list_at(i) {
                    Ok(n) => state.bytes.add(n),
                    Err(e) => state.note_error(format!("index list {i}: {e}")),
                }
                if throttle.consume(index.vocab()[i].len as u64, shutdown) {
                    return;
                }
            }
        }
        if let StoreVariant::Disk(store) = db.store() {
            for record in 0..store.num_records() as u32 {
                match store.verify_record(record) {
                    Ok(n) => state.bytes.add(n),
                    Err(e) => state.note_error(format!("store record {record}: {e}")),
                }
                let (_, len) = store.record_location(record);
                if throttle.consume(u64::from(len), shutdown) {
                    return;
                }
            }
        }

        state.complete_cycle();
        if pause(CYCLE_PAUSE, shutdown) {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_scrub_is_ready_immediately() {
        let registry = MetricsRegistry::new();
        let state = ScrubState::new(&registry, false);
        assert!(state.is_ready());
        let rendered = state.to_value().render();
        assert!(rendered.contains("\"enabled\":false"));
        assert!(rendered.contains("\"last_error\":null"));
    }

    #[test]
    fn enabled_scrub_waits_for_first_pass() {
        let registry = MetricsRegistry::new();
        let state = ScrubState::new(&registry, true);
        assert!(!state.is_ready());
        state.mark_ready();
        assert!(state.is_ready());
    }

    #[test]
    fn errors_are_counted_and_remembered() {
        let registry = MetricsRegistry::new();
        let state = ScrubState::new(&registry, true);
        state.note_error("index list 3: checksum mismatch".to_string());
        state.note_error("store record 1: checksum mismatch".to_string());
        assert_eq!(state.errors.get(), 2);
        assert!(state
            .to_value()
            .render()
            .contains("store record 1: checksum mismatch"));
    }

    #[test]
    fn throttle_paces_consumption() {
        let shutdown = AtomicBool::new(false);
        // 1 MiB/s budget, 64 KiB consumed → ~62 ms of pacing.
        let mut throttle = Throttle::new(1 << 20);
        let start = Instant::now();
        assert!(!throttle.consume(64 << 10, &shutdown));
        assert!(start.elapsed() >= Duration::from_millis(40));
    }

    #[test]
    fn throttle_honours_shutdown() {
        let shutdown = AtomicBool::new(true);
        let mut throttle = Throttle::new(1); // 1 byte/s: would sleep forever
        let start = Instant::now();
        assert!(throttle.consume(1 << 20, &shutdown));
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn full_cycle_over_memory_database_completes() {
        use nucdb::{Database, DbConfig};
        use nucdb_seq::random::{CollectionSpec, SyntheticCollection};

        let coll = SyntheticCollection::generate(&CollectionSpec::tiny(3));
        let db = Database::build(
            coll.records.iter().map(|r| (r.id.clone(), r.seq.clone())),
            &DbConfig::default(),
        );
        let registry = MetricsRegistry::new();
        let state = ScrubState::new(&registry, true);
        let shutdown = AtomicBool::new(false);
        // Nothing to verify in a memory database, so the first cycle
        // completes almost instantly; stop shortly after.
        std::thread::scope(|scope| {
            scope.spawn(|| {
                std::thread::sleep(Duration::from_millis(300));
                shutdown.store(true, Ordering::SeqCst);
            });
            scrub_loop(&db, &state, &shutdown, 1 << 20);
        });
        assert!(state.is_ready());
        assert!(state.cycles.get() >= 1);
        assert_eq!(state.errors.get(), 0);
    }
}
