//! `nucdb-serve`: a zero-dependency HTTP/1.1 query server.
//!
//! The paper's partitioned-search engine answers queries in
//! milliseconds, which makes the *process model* the next bottleneck:
//! loading the index per invocation (CLI style) costs more than the
//! query itself. This crate keeps one [`nucdb::Database`] resident and
//! serves it over plain `std::net` TCP — no async runtime, no HTTP
//! library — with the three properties a long-lived query daemon needs:
//!
//! * **Admission control** ([`queue`]): a bounded queue between the
//!   acceptor and a fixed worker pool. Overload is answered instantly
//!   with `503 + Retry-After` instead of growing latency without bound,
//!   and requests that out-waited their deadline are dropped at dequeue.
//! * **Micro-batching** ([`server`]): an optional collector coalesces
//!   queries that arrive within a small window into one
//!   [`nucdb::Database::search_batch_parallel`] call, trading a bounded
//!   latency increase for index-probe locality and parallel evaluation.
//! * **Graceful shutdown**: SIGTERM/ctrl-c stops the acceptor, drains
//!   every admitted connection and pending batch, flushes the trace
//!   sink, and exits cleanly.
//!
//! A background **scrubber** thread ([`scrub`]) continuously re-reads
//! and checksum-verifies the on-disk index and store at a bounded I/O
//! rate, so cold-region corruption surfaces in metrics
//! (`nucdb_scrub_errors_total`) instead of waiting for an unlucky
//! query. `GET /readyz` answers 503 until the first scrub pass over the
//! structural metadata (header + TOC) completes.
//!
//! Endpoints: `POST /search` (FASTA or JSON body → ranked answers as
//! JSON; `"explain": true` attaches the evaluation plan), `GET /metrics`
//! (Prometheus text), `GET /healthz`, `GET /readyz`,
//! `GET /stats`, and — when a flight recorder is attached to the
//! database — `GET /debug/queries` / `GET /debug/slow` (recent and
//! tail-sampled query traces). Every response carries an
//! `X-Request-Id` header (client-supplied ids are echoed when sane);
//! the same id is stamped on the query's spans, trace lines, and
//! flight-recorder entries. Results are bit-identical to the offline
//! CLI `search` command — same engine, same parameters, same
//! calibration.

#![warn(missing_docs)]

pub mod api;
pub mod http;
pub mod metrics;
pub mod queue;
pub mod scrub;
pub mod server;

pub use api::{parse_insert_body, parse_search_body, SearchRequest};
pub use http::{Limits, Method, ParseError, Request, Response};
pub use metrics::HttpMetrics;
pub use queue::{BoundedQueue, PushError};
pub use scrub::ScrubState;
pub use server::{
    install_termination_flag, request_termination, start, start_live, start_sharded,
    termination_requested, ServeConfig, ServerHandle,
};
