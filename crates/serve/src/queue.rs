//! Bounded admission queue: the server's overload contract.
//!
//! Accepted connections wait here until a worker picks them up. The
//! queue has a fixed capacity — when it is full the acceptor sheds the
//! connection with `503 + Retry-After` instead of queueing unbounded
//! work — and each entry is stamped on admission so workers can drop
//! requests that have already waited past their deadline *before*
//! doing any work for them (the classic "don't serve dead requests"
//! rule of admission control).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

struct State<T> {
    items: VecDeque<(Instant, T)>,
    closed: bool,
}

/// A blocking MPMC queue with a hard capacity and a close signal.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
}

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity: shed the work.
    Full,
    /// The queue is closed (server shutting down).
    Closed,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` waiting items.
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity.max(1)),
                closed: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Admit `item`, stamping its enqueue time. Never blocks: a full or
    /// closed queue refuses immediately so the caller can shed load.
    pub fn push(&self, item: T) -> Result<(), (PushError, T)> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.closed {
            return Err((PushError::Closed, item));
        }
        if state.items.len() >= self.capacity {
            return Err((PushError::Full, item));
        }
        state.items.push_back((Instant::now(), item));
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Take the oldest item, blocking until one is available. Returns
    /// `None` once the queue is closed *and* drained — the worker's
    /// signal to exit. The returned instant is the admission stamp.
    pub fn pop(&self) -> Option<(Instant, T)> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(entry) = state.items.pop_front() {
                return Some(entry);
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).expect("queue poisoned");
        }
    }

    /// Stop admitting; wake every waiting worker. Queued items remain
    /// poppable (graceful drain).
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.available.notify_all();
    }

    /// Current number of waiting items.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len()
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fifo_and_capacity() {
        let q = BoundedQueue::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.push(3), Err((PushError::Full, 3)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        q.push(4).unwrap();
        assert_eq!(q.pop().unwrap().1, 4);
    }

    #[test]
    fn close_drains_then_releases_workers() {
        let q = Arc::new(BoundedQueue::new(4));
        q.push("queued").unwrap();
        q.close();
        assert_eq!(q.push("late"), Err((PushError::Closed, "late")));
        // The queued item is still served; the next pop observes closure.
        assert_eq!(q.pop().unwrap().1, "queued");
        assert!(q.pop().is_none());
    }

    #[test]
    fn blocked_pop_wakes_on_close() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(waiter.join().unwrap().is_none());
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing() {
        let q = Arc::new(BoundedQueue::new(64));
        let total = 4 * 200;
        let consumed = Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let q = Arc::clone(&q);
                scope.spawn(move || {
                    for i in 0..200u32 {
                        let value = t * 1000 + i;
                        loop {
                            if q.push(value).is_ok() {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                });
            }
            for _ in 0..2 {
                let q = Arc::clone(&q);
                let consumed = Arc::clone(&consumed);
                scope.spawn(move || {
                    while let Some((stamp, value)) = q.pop() {
                        assert!(stamp.elapsed() < Duration::from_secs(10));
                        consumed.lock().unwrap().push(value);
                    }
                });
            }
            // Give producers time to finish, then close to release consumers.
            while consumed.lock().unwrap().len() < total {
                std::thread::yield_now();
            }
            q.close();
        });
        let mut got = consumed.lock().unwrap().clone();
        got.sort_unstable();
        let mut want: Vec<u32> = (0..4)
            .flat_map(|t| (0..200).map(move |i| t * 1000 + i))
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }
}
