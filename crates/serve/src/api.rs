//! The `/search` wire format: query bodies in and ranked answers out.
//!
//! Two body formats are accepted, chosen by sniffing the first
//! non-whitespace byte:
//!
//! - **FASTA** (`>` first): every record is one query, searched with the
//!   server's default parameters.
//! - **JSON** (`{` first): `{"queries": [{"id": "q1", "seq": "ACGT..."},
//!   ...], "params": {...}}` where `params` may override `candidates`,
//!   `max_results`, `min_score`, `both_strands` and request `evalue`
//!   blocks.
//!
//! Responses are JSON built with [`nucdb_obs::json`] — the same ranked
//! answers (record, id, score, coarse hits, strand) the CLI `search`
//! command prints, so server results are bit-identical to offline ones.

use std::io::Cursor;

use nucdb::{SearchOutcome, SearchParams, Strand};
use nucdb_obs::json::{num, Value};
use nucdb_seq::{DnaSeq, FastaReader};

/// One parsed query.
#[derive(Debug, Clone)]
pub struct ApiQuery {
    /// Client-supplied identifier (FASTA header or JSON `id`).
    pub id: String,
    /// The query sequence.
    pub seq: DnaSeq,
}

/// A fully parsed `/search` request body.
#[derive(Debug, Clone)]
pub struct SearchRequest {
    /// The queries, in request order.
    pub queries: Vec<ApiQuery>,
    /// Engine parameters (server defaults + per-request overrides).
    pub params: SearchParams,
    /// Attach bit scores and e-values to each answer (costs a Gumbel
    /// calibration per query).
    pub evalue: bool,
}

/// A 400-able body problem.
#[derive(Debug)]
pub struct BodyError(pub String);

impl std::fmt::Display for BodyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Parse a `/search` body against the server's default parameters.
pub fn parse_search_body(
    body: &[u8],
    defaults: &SearchParams,
    max_queries: usize,
) -> Result<SearchRequest, BodyError> {
    let first = body.iter().copied().find(|b| !b.is_ascii_whitespace());
    let request = match first {
        Some(b'>') => parse_fasta_body(body, defaults)?,
        Some(b'{') => parse_json_body(body, defaults)?,
        Some(_) => {
            return Err(BodyError(
                "unrecognized body: expected FASTA ('>') or JSON ('{')".to_string(),
            ))
        }
        None => return Err(BodyError("empty body".to_string())),
    };
    if request.queries.is_empty() {
        return Err(BodyError("no queries in body".to_string()));
    }
    if request.queries.len() > max_queries {
        return Err(BodyError(format!(
            "too many queries in one request: {} > {max_queries}",
            request.queries.len()
        )));
    }
    Ok(request)
}

fn parse_fasta_body(body: &[u8], defaults: &SearchParams) -> Result<SearchRequest, BodyError> {
    let reader = FastaReader::new(Cursor::new(body.to_vec()));
    let mut queries = Vec::new();
    for record in reader {
        let record = record.map_err(|e| BodyError(format!("FASTA: {e}")))?;
        queries.push(ApiQuery {
            id: record.id,
            seq: record.seq,
        });
    }
    Ok(SearchRequest {
        queries,
        params: *defaults,
        evalue: false,
    })
}

fn parse_json_body(body: &[u8], defaults: &SearchParams) -> Result<SearchRequest, BodyError> {
    let text = std::str::from_utf8(body).map_err(|_| BodyError("body is not UTF-8".to_string()))?;
    let doc = nucdb_obs::json::parse(text).map_err(|e| BodyError(format!("JSON: {e}")))?;
    // Reject unknown top-level keys so a misplaced override (say,
    // `evalue` outside `params`) fails loudly instead of being ignored.
    if let Value::Obj(members) = &doc {
        for (key, _) in members {
            if key != "queries" && key != "params" {
                return Err(BodyError(format!(
                    "{key}: unknown top-level key (expected queries, params)"
                )));
            }
        }
    }
    let Some(Value::Arr(entries)) = doc.get("queries") else {
        return Err(BodyError("missing \"queries\" array".to_string()));
    };
    let mut queries = Vec::with_capacity(entries.len());
    for (i, entry) in entries.iter().enumerate() {
        let seq_text = entry
            .get("seq")
            .and_then(Value::as_str)
            .ok_or_else(|| BodyError(format!("queries[{i}]: missing \"seq\" string")))?;
        let seq = DnaSeq::from_ascii(seq_text.as_bytes())
            .map_err(|e| BodyError(format!("queries[{i}].seq: {e}")))?;
        let id = entry
            .get("id")
            .and_then(Value::as_str)
            .map_or_else(|| format!("q{i}"), str::to_string);
        queries.push(ApiQuery { id, seq });
    }

    let mut params = *defaults;
    let mut evalue = false;
    if let Some(overrides) = doc.get("params") {
        let Value::Obj(members) = overrides else {
            return Err(BodyError("\"params\" must be an object".to_string()));
        };
        for (key, value) in members {
            match key.as_str() {
                "candidates" => params.max_candidates = usize_field(value, key)?,
                "max_results" => params.max_results = usize_field(value, key)?,
                "min_score" => {
                    params.min_score = value
                        .as_f64()
                        .filter(|v| v.fract() == 0.0)
                        .map(|v| v as i32)
                        .ok_or_else(|| BodyError(format!("params.{key}: expected integer")))?
                }
                "both_strands" => {
                    params.strand = match value {
                        Value::Bool(true) => Strand::Both,
                        Value::Bool(false) => Strand::Forward,
                        _ => return Err(BodyError(format!("params.{key}: expected bool"))),
                    }
                }
                "evalue" => {
                    evalue = match value {
                        Value::Bool(b) => *b,
                        _ => return Err(BodyError(format!("params.{key}: expected bool"))),
                    }
                }
                "explain" => {
                    params.explain = match value {
                        Value::Bool(b) => *b,
                        _ => return Err(BodyError(format!("params.{key}: expected bool"))),
                    }
                }
                other => {
                    return Err(BodyError(format!(
                        "params.{other}: unknown parameter (expected candidates, \
                         max_results, min_score, both_strands, evalue, explain)"
                    )))
                }
            }
        }
    }
    Ok(SearchRequest {
        queries,
        params,
        evalue,
    })
}

/// Parse a `/insert` body into `(id, sequence)` records.
///
/// Accepts the same two formats as `/search`, sniffed by first byte:
/// FASTA (every record is one insert) or JSON
/// `{"records": [{"id": "r1", "seq": "ACGT..."}, ...]}`.
pub fn parse_insert_body(
    body: &[u8],
    max_records: usize,
) -> Result<Vec<(String, DnaSeq)>, BodyError> {
    let first = body.iter().copied().find(|b| !b.is_ascii_whitespace());
    let records = match first {
        Some(b'>') => {
            let reader = FastaReader::new(Cursor::new(body.to_vec()));
            let mut records = Vec::new();
            for record in reader {
                let record = record.map_err(|e| BodyError(format!("FASTA: {e}")))?;
                records.push((record.id, record.seq));
            }
            records
        }
        Some(b'{') => parse_insert_json(body)?,
        Some(_) => {
            return Err(BodyError(
                "unrecognized body: expected FASTA ('>') or JSON ('{')".to_string(),
            ))
        }
        None => return Err(BodyError("empty body".to_string())),
    };
    if records.is_empty() {
        return Err(BodyError("no records in body".to_string()));
    }
    if records.len() > max_records {
        return Err(BodyError(format!(
            "too many records in one request: {} > {max_records}",
            records.len()
        )));
    }
    Ok(records)
}

fn parse_insert_json(body: &[u8]) -> Result<Vec<(String, DnaSeq)>, BodyError> {
    let text = std::str::from_utf8(body).map_err(|_| BodyError("body is not UTF-8".to_string()))?;
    let doc = nucdb_obs::json::parse(text).map_err(|e| BodyError(format!("JSON: {e}")))?;
    if let Value::Obj(members) = &doc {
        for (key, _) in members {
            if key != "records" {
                return Err(BodyError(format!(
                    "{key}: unknown top-level key (expected records)"
                )));
            }
        }
    }
    let Some(Value::Arr(entries)) = doc.get("records") else {
        return Err(BodyError("missing \"records\" array".to_string()));
    };
    let mut records = Vec::with_capacity(entries.len());
    for (i, entry) in entries.iter().enumerate() {
        let seq_text = entry
            .get("seq")
            .and_then(Value::as_str)
            .ok_or_else(|| BodyError(format!("records[{i}]: missing \"seq\" string")))?;
        let seq = DnaSeq::from_ascii(seq_text.as_bytes())
            .map_err(|e| BodyError(format!("records[{i}].seq: {e}")))?;
        let id = entry
            .get("id")
            .and_then(Value::as_str)
            .map_or_else(|| format!("r{i}"), str::to_string);
        records.push((id, seq));
    }
    Ok(records)
}

fn usize_field(value: &Value, key: &str) -> Result<usize, BodyError> {
    value
        .as_f64()
        .filter(|v| v.fract() == 0.0 && *v >= 0.0)
        .map(|v| v as usize)
        .ok_or_else(|| BodyError(format!("params.{key}: expected non-negative integer")))
}

/// Per-answer significance statistics (computed when `evalue` was
/// requested).
pub struct Significance {
    /// Bit score.
    pub bits: f64,
    /// Expect value.
    pub evalue: f64,
}

/// Render one query's outcome as a JSON object.
pub fn outcome_to_json(
    query: &ApiQuery,
    outcome: &SearchOutcome,
    significance: Option<&[Significance]>,
) -> Value {
    let answers = outcome
        .results
        .iter()
        .enumerate()
        .map(|(rank, result)| {
            let strand = match result.strand {
                Strand::Forward => "+",
                Strand::Reverse => "-",
                Strand::Both => "?",
            };
            let mut members = vec![
                ("rank".to_string(), num(rank as u64 + 1)),
                ("id".to_string(), Value::Str(result.id.clone())),
                ("record".to_string(), num(u64::from(result.record))),
                ("score".to_string(), Value::Num(f64::from(result.score))),
                (
                    "coarse_hits".to_string(),
                    num(u64::from(result.coarse_hits)),
                ),
                ("coarse_score".to_string(), Value::Num(result.coarse_score)),
                ("strand".to_string(), Value::Str(strand.to_string())),
            ];
            if let Some(stats) = significance.and_then(|s| s.get(rank)) {
                members.push(("bits".to_string(), Value::Num(stats.bits)));
                members.push(("evalue".to_string(), Value::Num(stats.evalue)));
            }
            Value::Obj(members)
        })
        .collect();
    let mut members = vec![
        ("query".to_string(), Value::Str(query.id.clone())),
        ("answers".to_string(), Value::Arr(answers)),
        (
            "stats".to_string(),
            Value::Obj(vec![
                ("candidates".to_string(), num(outcome.stats.candidates)),
                (
                    "lists_fetched".to_string(),
                    num(outcome.stats.lists_fetched),
                ),
                (
                    "postings_decoded".to_string(),
                    num(outcome.stats.postings_decoded),
                ),
                ("coarse_ns".to_string(), num(outcome.stats.coarse_nanos)),
                ("fine_ns".to_string(), num(outcome.stats.fine_nanos)),
            ]),
        ),
    ];
    if let Some(plan) = &outcome.explain {
        members.push(("plan".to_string(), plan.to_value()));
    }
    Value::Obj(members)
}

/// Render the whole response document. The request id is echoed as a
/// top-level field (it also rides the `X-Request-Id` header) so clients
/// that only keep bodies can still join answers with server-side traces.
pub fn response_to_json(per_query: Vec<Value>, request_id: &str) -> Value {
    Value::Obj(vec![
        ("request_id".to_string(), Value::Str(request_id.to_string())),
        ("results".to_string(), Value::Arr(per_query)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn defaults() -> SearchParams {
        SearchParams::default()
    }

    #[test]
    fn fasta_body_parses() {
        let body = b">q1\nACGTACGT\nACGT\n>q2\nTTTTGGGG\n";
        let req = parse_search_body(body, &defaults(), 64).unwrap();
        assert_eq!(req.queries.len(), 2);
        assert_eq!(req.queries[0].id, "q1");
        assert_eq!(req.queries[0].seq.len(), 12);
        assert_eq!(req.params, defaults());
        assert!(!req.evalue);
    }

    #[test]
    fn json_body_parses_with_overrides() {
        let body = br#"{
            "queries": [{"id": "a", "seq": "ACGTACGTAA"}, {"seq": "GGCCGGCC"}],
            "params": {"candidates": 5, "max_results": 3, "min_score": 10,
                       "both_strands": true, "evalue": true, "explain": true}
        }"#;
        let req = parse_search_body(body, &defaults(), 64).unwrap();
        assert_eq!(req.queries.len(), 2);
        assert_eq!(req.queries[0].id, "a");
        assert_eq!(req.queries[1].id, "q1"); // positional fallback
        assert_eq!(req.params.max_candidates, 5);
        assert_eq!(req.params.max_results, 3);
        assert_eq!(req.params.min_score, 10);
        assert_eq!(req.params.strand, Strand::Both);
        assert!(req.evalue);
        assert!(req.params.explain);
    }

    #[test]
    fn bad_bodies_are_rejected() {
        let cases: &[&[u8]] = &[
            b"",
            b"   ",
            b"plain text",
            b"{\"queries\": []}",
            b"{\"queries\": [{\"id\": \"x\"}]}",
            b"{\"queries\": [{\"seq\": \"not dna!!\"}]}",
            b"{\"queries\": [{\"seq\": \"ACGT\"}], \"params\": {\"bogus\": 1}}",
            b"{\"queries\": [{\"seq\": \"ACGT\"}], \"params\": {\"candidates\": -1}}",
            b"{\"queries\": [{\"seq\": \"ACGT\"}], \"params\": {\"candidates\": 1.5}}",
            b"{truncated",
            b">onlyheader",
        ];
        for body in cases {
            assert!(
                parse_search_body(body, &defaults(), 64).is_err(),
                "{:?} should fail",
                String::from_utf8_lossy(body)
            );
        }
    }

    #[test]
    fn insert_bodies_parse_in_both_formats() {
        let fasta = b">r1\nACGTACGT\n>r2\nTTTT\n";
        let records = parse_insert_body(fasta, 64).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].0, "r1");
        assert_eq!(records[0].1.len(), 8);

        let json = br#"{"records": [{"id": "a", "seq": "ACGT"}, {"seq": "GGCC"}]}"#;
        let records = parse_insert_body(json, 64).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].0, "a");
        assert_eq!(records[1].0, "r1"); // positional fallback

        for bad in [
            &b""[..],
            b"plain",
            b"{\"records\": []}",
            b"{\"records\": [{\"id\": \"x\"}]}",
            b"{\"queries\": [{\"seq\": \"ACGT\"}]}",
        ] {
            assert!(parse_insert_body(bad, 64).is_err());
        }
        assert!(parse_insert_body(fasta, 1).is_err());
    }

    #[test]
    fn query_cap_is_enforced() {
        let body = b">a\nACGT\n>b\nACGT\n>c\nACGT\n";
        assert!(parse_search_body(body, &defaults(), 2).is_err());
        assert!(parse_search_body(body, &defaults(), 3).is_ok());
    }

    #[test]
    fn outcome_renders_parseable_json() {
        let query = ApiQuery {
            id: "q".to_string(),
            seq: DnaSeq::from_ascii(b"ACGT").unwrap(),
        };
        let outcome = SearchOutcome::default();
        let doc = response_to_json(vec![outcome_to_json(&query, &outcome, None)], "req-0-0");
        let text = doc.render();
        let parsed = nucdb_obs::json::parse(&text).unwrap();
        assert_eq!(parsed, doc);
        assert_eq!(
            parsed.get("request_id").and_then(Value::as_str),
            Some("req-0-0")
        );
    }
}
