//! Minimal long-option argument parsing (`--key value`, `--key=value`,
//! and `--flag`).
//!
//! The CLI deliberately has no third-party argument-parser dependency;
//! the option surface is small and fixed per subcommand.

use std::collections::HashMap;

/// Parsed options: `--key value` pairs plus bare `--flag`s.
#[derive(Debug, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
    /// The subcommand being parsed (for error messages).
    command: &'static str,
    /// Option names the subcommand accepts (for error messages).
    allowed: Vec<&'static str>,
}

/// A CLI usage error, printed with the subcommand's usage string.
#[derive(Debug, PartialEq, Eq)]
pub struct UsageError(pub String);

impl std::fmt::Display for UsageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for UsageError {}

impl Args {
    /// Parse raw arguments for `command`. `value_opts` take a value,
    /// `flag_opts` do not. Errors name the subcommand, so `nucdb serve
    /// --bogus` reports "serve: unknown option --bogus".
    pub fn parse(
        command: &'static str,
        raw: &[String],
        value_opts: &[&'static str],
        flag_opts: &[&'static str],
    ) -> Result<Args, UsageError> {
        let mut args = Args {
            command,
            allowed: value_opts.iter().chain(flag_opts).copied().collect(),
            ..Args::default()
        };
        let mut iter = raw.iter();
        while let Some(token) = iter.next() {
            let Some(name) = token.strip_prefix("--") else {
                return Err(args.error(format!("unexpected positional argument {token:?}")));
            };
            // `--key=value` form: split before matching the option name.
            let (name, inline_value) = match name.split_once('=') {
                Some((n, v)) => (n, Some(v)),
                None => (name, None),
            };
            if flag_opts.contains(&name) {
                if inline_value.is_some() {
                    return Err(args.error(format!("flag --{name} does not take a value")));
                }
                args.flags.push(name.to_string());
            } else if value_opts.contains(&name) {
                let value = match inline_value {
                    Some(v) => v.to_string(),
                    None => iter
                        .next()
                        .ok_or_else(|| args.error(format!("option --{name} requires a value")))?
                        .clone(),
                };
                if args.values.insert(name.to_string(), value).is_some() {
                    return Err(args.error(format!("option --{name} given more than once")));
                }
            } else {
                return Err(args.error(format!(
                    "unknown option --{name}; expected one of: {}",
                    args.allowed
                        .iter()
                        .map(|o| format!("--{o}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
        }
        Ok(args)
    }

    /// A usage error prefixed with the subcommand name.
    fn error(&self, message: String) -> UsageError {
        if self.command.is_empty() {
            UsageError(message)
        } else {
            UsageError(format!("{}: {message}", self.command))
        }
    }

    /// A required string option.
    pub fn required(&self, name: &str) -> Result<&str, UsageError> {
        self.values
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| self.error(format!("missing required option --{name}")))
    }

    /// An optional string option.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// An optional parsed option with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, UsageError> {
        match self.values.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| self.error(format!("option --{name}: cannot parse {raw:?}"))),
        }
    }

    /// Was a bare flag given?
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_values_and_flags() {
        let args = Args::parse(
            "build",
            &raw(&["--k", "8", "--both-strands", "--out", "x.idx"]),
            &["k", "out"],
            &["both-strands"],
        )
        .unwrap();
        assert_eq!(args.required("k").unwrap(), "8");
        assert_eq!(args.get_or("k", 0usize).unwrap(), 8);
        assert_eq!(args.get("out"), Some("x.idx"));
        assert!(args.flag("both-strands"));
        assert!(!args.flag("other"));
    }

    #[test]
    fn rejects_unknown_and_positional() {
        assert!(Args::parse("build", &raw(&["--bogus", "1"]), &["k"], &[]).is_err());
        assert!(Args::parse("build", &raw(&["stray"]), &["k"], &[]).is_err());
    }

    #[test]
    fn errors_name_the_subcommand() {
        let err = Args::parse("search", &raw(&["--bogus"]), &["k"], &[]).unwrap_err();
        assert!(err.0.starts_with("search: "), "{}", err.0);
        let err = Args::parse("serve", &raw(&["--addr"]), &["addr"], &[]).unwrap_err();
        assert!(err.0.starts_with("serve: "), "{}", err.0);
        let args = Args::parse("build", &raw(&[]), &["k"], &[]).unwrap();
        assert!(args.required("k").unwrap_err().0.starts_with("build: "));
    }

    #[test]
    fn missing_value_and_missing_required() {
        assert!(Args::parse("build", &raw(&["--k"]), &["k"], &[]).is_err());
        let args = Args::parse("build", &raw(&[]), &["k"], &[]).unwrap();
        assert!(args.required("k").is_err());
        assert_eq!(args.get_or("k", 42usize).unwrap(), 42);
    }

    #[test]
    fn bad_parse_reports_option() {
        let args = Args::parse("build", &raw(&["--k", "notanumber"]), &["k"], &[]).unwrap();
        let err = args.get_or("k", 0usize).unwrap_err();
        assert!(err.0.contains("--k"));
        assert!(err.0.starts_with("build: "));
    }

    #[test]
    fn accepts_equals_form() {
        let args = Args::parse(
            "build",
            &raw(&["--k=8", "--out=x.idx", "--both-strands"]),
            &["k", "out"],
            &["both-strands"],
        )
        .unwrap();
        assert_eq!(args.get_or("k", 0usize).unwrap(), 8);
        assert_eq!(args.get("out"), Some("x.idx"));
        assert!(args.flag("both-strands"));
    }

    #[test]
    fn equals_form_keeps_later_equals_signs_in_value() {
        let args = Args::parse("search", &raw(&["--expr=a=b"]), &["expr"], &[]).unwrap();
        assert_eq!(args.get("expr"), Some("a=b"));
    }

    #[test]
    fn equals_form_allows_empty_value() {
        let args = Args::parse("build", &raw(&["--out="]), &["out"], &[]).unwrap();
        assert_eq!(args.get("out"), Some(""));
    }

    #[test]
    fn rejects_value_on_flag() {
        let err = Args::parse(
            "search",
            &raw(&["--both-strands=yes"]),
            &[],
            &["both-strands"],
        )
        .unwrap_err();
        assert!(err.0.contains("--both-strands"));
        assert!(err.0.contains("does not take a value"));
    }

    #[test]
    fn rejects_duplicate_value_option() {
        let err = Args::parse("build", &raw(&["--k", "8", "--k", "9"]), &["k"], &[]).unwrap_err();
        assert!(err.0.contains("--k"));
        assert!(err.0.contains("more than once"));
        // Mixed spellings count as the same option.
        let err = Args::parse("build", &raw(&["--k=8", "--k", "9"]), &["k"], &[]).unwrap_err();
        assert!(err.0.contains("more than once"));
    }

    #[test]
    fn repeated_flags_are_tolerated() {
        let args = Args::parse(
            "search",
            &raw(&["--both-strands", "--both-strands"]),
            &[],
            &["both-strands"],
        )
        .unwrap();
        assert!(args.flag("both-strands"));
    }
}
