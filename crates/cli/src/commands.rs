//! The four subcommands: generate / build / search / stats.

use std::error::Error;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use nucdb::{
    CoarseScratch, Database, FineMode, IndexVariant, RankingScheme, RecordSource, SearchParams,
    SequenceStore, StorageMode, Strand,
};
use nucdb_align::calibrate_gumbel;
use nucdb_index::{build_chunked, Granularity, IndexParams, ListCodec, OnDiskIndex, StopPolicy};
use nucdb_obs::{
    Forensics, ForensicsConfig, HistogramSnapshot, MetricsRegistry, TraceSink, ValueSnapshot,
};
use nucdb_seq::random::{CollectionSpec, MutationModel, SyntheticCollection};
use nucdb_seq::{FastaReader, FastaRecord, FastaWriter};

use crate::args::{Args, UsageError};

type CommandResult = Result<(), Box<dyn Error>>;

/// Top-level usage text.
pub const USAGE: &str = "\
nucdb — indexed nucleotide homology search (partitioned coarse/fine evaluation)

commands:
  generate   write a synthetic GenBank-like collection as FASTA
             --bases N --out FILE [--seed N] [--families N] [--family-size N]
             [--repeat-prob F] [--queries-out FILE] [--divergence F]
  build      build an on-disk database (index + sequence store) from FASTA
             --collection FILE --db DIR [--k N] [--stride N] [--stop-fraction F]
             [--codec paper|gamma|delta|vbyte|fixed|block] [--chunk N] [--ascii-store]
             [--granularity offsets|records] [--shards N]
  ingest     stream FASTA records into a live (segmented) database
             --collection FILE --db DIR [--batch N] [--memtable-max-records N]
             [--max-segments N] [--compact] [--k N] [--stride N]
             [--codec NAME] [--granularity offsets|records] [--ascii-store]
  search     run homology queries (each FASTA record is one query)
             --db DIR --query FILE [--candidates N] [--ranking count|prop|frame:W]
             [--fine banded:W|full|trace] [--both-strands] [--max-results N]
             [--min-score N] [--evalue] [--mask] [--query-stride N] [--explain]
             [--metrics FILE] [--metrics-format prometheus|json]
             [--trace FILE] [--trace-sample N]
  merge      merge two databases into one (record ids of B follow A's)
             --db-a DIR --db-b DIR --out DIR
  stats      print index and store statistics
             --db DIR
  stat       per-index health statistics report (text + JSON under results/)
             --db DIR [--out DIR]
  fsck       walk every stored checksum and report damage (exit 0 clean,
             1 payload damage, 2 header/TOC unreadable)
             --db DIR [--json]
  verify     check database consistency (store vs index, list decoding)
             --db DIR [--sample N]
  bench      time a query workload against a database
             --db DIR --query FILE [--repeat N] [--metrics FILE]
             [--metrics-format prometheus|json] [--trace FILE] [--trace-sample N]
             [--flight-recorder N] [--slow-ms MS] [--slow-log FILE]
             [--slow-log-max-bytes N]
  serve      run a resident HTTP query server over one database
             --db DIR [--live] [--addr HOST:PORT] [--threads N] [--queue-depth N]
             [--deadline-ms N] [--batch-window MS] [--batch-max N]
             [--memtable-max-records N] [--max-segments N]
             [--compact-bytes-per-sec N]
             [--shard-deadline-ms N] [--shard-hedge-ms MS]
             [--search-threads N] [--scrub-bytes-per-sec N] [--metrics FILE]
             [--metrics-format prometheus|json] [--trace FILE] [--trace-sample N]
             [--flight-recorder N] [--slow-ms MS] [--slow-log FILE]
             [--slow-log-max-bytes N]
  profile    aggregate a JSONL trace / flight-recorder / slow-log dump into
             a per-stage self-time and work-counter report
             --input FILE [--top N] [--out DIR]
  version    print version, git hash, and compiled codec tiers
  help       this message (or `nucdb help CMD` / `nucdb CMD --help`)

Options may be spelled --key value or --key=value. search also accepts
--tabular for TSV output (query, subject, score, strand,
hits[, bits, evalue]).

--metrics FILE writes a metrics snapshot (counters + latency histograms)
when the command finishes; --trace FILE appends one JSON line per sampled
query (--trace-sample N keeps every Nth). --flight-recorder N keeps the
last N query traces in memory; --slow-ms MS tail-samples every query
slower than MS into the slow ring (and --slow-log FILE, as JSONL)
regardless of the trace stride. serve enables the flight recorder by
default (N=256; --flight-recorder 0 disables).";

/// Per-subcommand usage text, shown by `nucdb CMD --help` and
/// `nucdb help CMD`.
pub fn usage_for(command: &str) -> Option<&'static str> {
    Some(match command {
        "generate" => {
            "usage: nucdb generate --bases N --out FILE [options]
  --bases N          total bases across all records (default 1000000)
  --out FILE         FASTA output path (a .truth.tsv sidecar is also written)
  --seed N           RNG seed (default 42)
  --families N       planted homologous families
  --family-size N    members per family
  --repeat-prob F    probability a record gains an internal repeat (default 0.25)
  --divergence F     per-base mutation rate within a family (default 0.08)
  --queries-out FILE also write one query per family"
        }
        "build" => {
            "usage: nucdb build --collection FILE --db DIR [options]
  --collection FILE  input FASTA
  --db DIR           output database directory
  --k N              interval (k-mer) length (default 8)
  --stride N         sampling stride across each record (default 1)
  --stop-fraction F  drop intervals present in more than F of records
  --codec NAME       postings codec: paper|gamma|delta|vbyte|fixed|block
                     (block = NUCIDX04 fast-decode tier with skip pointers)
  --chunk N          records per in-memory build chunk (default 2048)
  --granularity G    postings granularity: offsets|records
  --ascii-store      store sequences as ASCII instead of 2-bit packed
  --shards N         partition the collection into N shards (a SHARDS
                     manifest plus one database directory per shard;
                     search/serve/stat/fsck detect the layout). Answers
                     are bit-identical to an unsharded build"
        }
        "search" => {
            "usage: nucdb search --db DIR --query FILE [options]
  --db DIR           database directory (from `nucdb build`)
  --query FILE       FASTA of queries (each record is one query)
  --candidates N     coarse candidates to align finely
  --ranking R        coarse ranking: count|prop|frame[:W]
  --fine M           fine alignment: banded[:W]|full|trace
  --max-results N    answers to keep per query (default 20)
  --min-score N      drop answers scoring below N
  --both-strands     also search the reverse complement
  --evalue           report bit scores and e-values
  --mask             DUST-mask low-complexity query regions
  --query-stride N   sample query intervals at stride N
  --explain          print the query plan (lists consulted, blocks skipped
                     under tau, survivors, per-candidate fine outcome)
  --tabular          TSV output
  --metrics FILE     write a metrics snapshot when done
  --metrics-format F prometheus (default) or json
  --trace FILE       append one JSON line per sampled query
  --trace-sample N   keep every Nth query in the trace

--db may also be a sharded root (from `nucdb build --shards N`): queries
scatter across the shards and gather one merged answer, bit-identical to
an unsharded build; a warning names any shard that failed to answer
(--explain, --trace and the flight recorder are per-database and not
available over a sharded root)"
        }
        "ingest" => {
            "usage: nucdb ingest --collection FILE --db DIR [options]
  --collection FILE  input FASTA (every record is one insert)
  --db DIR           live database directory (created with a segment
                     manifest if absent; shape options below only apply
                     on creation — reopen recovers them from the manifest)
  --batch N          records per insert batch (default 256)
  --memtable-max-records N  auto-flush threshold (default 1024)
  --max-segments N   compaction falls back to smallest-pair above this
  --compact          run compaction to quiescence after the final flush
  --k N              interval (k-mer) length (default 8)
  --stride N         sampling stride across each record (default 1)
  --codec NAME       postings codec: paper|gamma|delta|vbyte|fixed|block
  --granularity G    postings granularity: offsets|records
  --ascii-store      store sequences as ASCII instead of 2-bit packed"
        }
        "merge" => {
            "usage: nucdb merge --db-a DIR --db-b DIR --out DIR
  record ids of B follow A's in the merged database"
        }
        "stats" => {
            "usage: nucdb stats --db DIR
  print store and index statistics plus the heaviest postings lists"
        }
        "stat" => {
            "usage: nucdb stat --db DIR [--out DIR]
  per-index health statistics: list-length / bits-per-posting / skew
  histograms, skip-table density, codec tier, and bytes by section.
  Prints text and writes STAT.txt + STAT.json under --out (default
  results/). A live directory (segment manifest present) gets a manifest
  summary plus the same report for every segment; a sharded root (SHARDS
  manifest present) gets the same report for every shard"
        }
        "fsck" => {
            "usage: nucdb fsck --db DIR [--json]
  walk every stored checksum (index header, every postings list, store
  TOC, every record blob) and report all damage with section + offset.
  A live directory (segment manifest present) is walked via the manifest:
  every referenced segment is verified and unreferenced (orphaned) files
  are flagged. A sharded root (SHARDS manifest present) verifies every
  shard directory and reports the worst shard's condition as the exit
  code. exit 0 = clean, 1 = payload damage or orphans,
  2 = header/TOC/manifest unreadable or a segment/shard file missing"
        }
        "verify" => {
            "usage: nucdb verify --db DIR [--sample N]
  --sample N         records to sample for the store/index cross-check"
        }
        "bench" => {
            "usage: nucdb bench --db DIR --query FILE [options]
  --repeat N         repetitions per query (default 3)
  --metrics FILE     write a metrics snapshot when done
  --metrics-format F prometheus (default) or json
  --trace FILE       append one JSON line per sampled query
  --trace-sample N   keep every Nth query in the trace
  --flight-recorder N keep the last N query traces; a slowest-query table
                     is printed when the run ends
  --slow-ms MS       tail-sample queries slower than MS milliseconds
  --slow-log FILE    append slow/error captures as JSONL
  --slow-log-max-bytes N rotate the slow log at N bytes (one .1 predecessor
                     is kept)"
        }
        "serve" => {
            "usage: nucdb serve --db DIR [options]
  --db DIR           database directory (from `nucdb build`, or a live
                     directory from `nucdb ingest` with --live)
  --live             serve a segmented live database: POST /insert and
                     POST /flush are accepted, a background compactor
                     runs, and /stats gains a live block
  --memtable-max-records N  live: auto-flush threshold (default 1024)
  --max-segments N   live: compaction fallback threshold (default 8)
  --compact-bytes-per-sec N  live: compaction I/O budget (default 8388608;
                     0 disables background compaction)
  --addr HOST:PORT   listen address (default 127.0.0.1:7878)
  --threads N        worker threads handling connections (default 4)
  --queue-depth N    admission queue capacity; overflow is shed with 503
  --deadline-ms N    max queue wait before a request is dropped (default 5000)
  --batch-window MS  micro-batch queries arriving within MS (0 = off)
  --batch-max N      max queries per micro-batch (default 64)
  --search-threads N threads per batched search (default 4)
  --metrics FILE     write a final metrics snapshot after draining
  --metrics-format F prometheus (default) or json
  --trace FILE       append one JSON line per sampled query
  --trace-sample N   keep every Nth query in the trace
  --flight-recorder N keep the last N query traces (default 256; 0 = off)
  --slow-ms MS       tail-sample queries slower than MS milliseconds
  --slow-log FILE    append slow/error captures as JSONL
  --slow-log-max-bytes N rotate the slow log at N bytes (one .1 predecessor
                     is kept)
  --scrub-bytes-per-sec N background scrub I/O budget (default 4194304;
                     0 disables the scrubber)
  --shard-deadline-ms N  sharded root: per-shard, per-phase deadline
                     (default 10000); a shard missing it is dropped from
                     the answer and coverage shrinks
  --shard-hedge-ms MS    sharded root: re-dispatch a phase to the hedge
                     worker after MS without an answer (default 250;
                     0 disables hedging)

A sharded root (SHARDS manifest from `nucdb build --shards N`) is
detected automatically: queries scatter across per-shard workers, every
per-query answer carries a coverage object, and failed shards degrade
the answer instead of erroring it. /metrics gains per-shard
nucdb_shard_* families.

endpoints: POST /search (FASTA or JSON body; \"explain\": true returns the
plan), GET /metrics (Prometheus), GET /healthz, GET /readyz (503 until the
first scrub pass over header + TOC), GET /stats, GET /debug/queries,
GET /debug/slow. Every response carries an X-Request-Id. SIGINT/SIGTERM
drain and exit cleanly."
        }
        "profile" => {
            "usage: nucdb profile --input FILE [options]
  --input FILE       JSONL dump: --trace output, a --slow-log, or a saved
                     /debug/queries|/debug/slow response body
  --top N            slowest queries to tabulate (default 10)
  --out DIR          also write PROFILE.txt + PROFILE.json here
                     (default results/)"
        }
        "version" => "usage: nucdb version\n  print version, git hash, and compiled codec tiers",
        _ => return None,
    })
}

const INDEX_FILE: &str = "index.nucidx";
const STORE_FILE: &str = "store.nucsto";

/// Heaviest lists shown per strand by `nucdb search --explain`.
const EXPLAIN_MAX_LISTS: usize = 12;

/// `nucdb generate`
pub fn generate(raw: &[String]) -> CommandResult {
    let args = Args::parse(
        "generate",
        raw,
        &[
            "bases",
            "out",
            "seed",
            "families",
            "family-size",
            "repeat-prob",
            "queries-out",
            "divergence",
        ],
        &[],
    )?;
    let bases: usize = args.get_or("bases", 1_000_000)?;
    let out = PathBuf::from(args.required("out")?);
    let seed: u64 = args.get_or("seed", 42)?;
    let divergence: f64 = args.get_or("divergence", 0.08)?;

    let mut spec = CollectionSpec::sized(seed, bases);
    spec.num_families = args.get_or("families", spec.num_families)?;
    spec.family_size = args.get_or("family-size", spec.family_size)?;
    spec.repeat_prob = args.get_or("repeat-prob", 0.25)?;
    spec.mutation = MutationModel::standard(divergence);

    let coll = SyntheticCollection::generate(&spec);
    let mut writer = FastaWriter::new(BufWriter::new(File::create(&out)?));
    for record in &coll.records {
        writer.write_record(&FastaRecord::new(record.id.clone(), record.seq.clone()))?;
    }
    writer.into_inner()?;
    println!(
        "wrote {} records / {} bases to {}",
        coll.records.len(),
        coll.total_bases(),
        out.display()
    );

    // Ground truth sidecar: family -> member record ids.
    let truth_path = out.with_extension("truth.tsv");
    let mut truth = BufWriter::new(File::create(&truth_path)?);
    for (f, family) in coll.families.iter().enumerate() {
        let members: Vec<String> = family
            .member_ids
            .iter()
            .map(|&m| coll.records[m as usize].id.clone())
            .collect();
        writeln!(truth, "fam{f:02}\t{}", members.join("\t"))?;
    }
    truth.flush()?;
    println!(
        "wrote planted-family ground truth to {}",
        truth_path.display()
    );

    if let Some(qpath) = args.get("queries-out") {
        let qpath = PathBuf::from(qpath);
        let mut writer = FastaWriter::new(BufWriter::new(File::create(&qpath)?));
        for f in 0..coll.families.len() {
            let query = coll.query_for_family(f, 0.6, &MutationModel::standard(divergence));
            writer.write_record(&FastaRecord::new(format!("query_fam{f:02}"), query))?;
        }
        writer.into_inner()?;
        println!(
            "wrote {} queries to {}",
            coll.families.len(),
            qpath.display()
        );
    }
    Ok(())
}

fn parse_codec(name: &str) -> Result<ListCodec, UsageError> {
    Ok(match name {
        "paper" => ListCodec::Paper,
        "gamma" => ListCodec::Gamma,
        "delta" => ListCodec::Delta,
        "vbyte" => ListCodec::VByte,
        "fixed" => ListCodec::Fixed,
        "block" => ListCodec::Block,
        _ => {
            return Err(UsageError(format!(
                "unknown codec {name:?} (expected paper|gamma|delta|vbyte|fixed|block)"
            )))
        }
    })
}

/// `nucdb build`
pub fn build(raw: &[String]) -> CommandResult {
    let args = Args::parse(
        "build",
        raw,
        &[
            "collection",
            "db",
            "k",
            "stride",
            "stop-fraction",
            "codec",
            "chunk",
            "granularity",
            "shards",
        ],
        &["ascii-store"],
    )?;
    let collection = PathBuf::from(args.required("collection")?);
    let db_dir = PathBuf::from(args.required("db")?);
    let k: usize = args.get_or("k", 8)?;
    let stride: usize = args.get_or("stride", 1)?;
    let codec = parse_codec(args.get("codec").unwrap_or("paper"))?;
    let chunk: usize = args.get_or("chunk", 2048)?;
    let storage = if args.flag("ascii-store") {
        StorageMode::Ascii
    } else {
        StorageMode::DirectCoding
    };

    let mut params = IndexParams::new(k).with_stride(stride);
    if let Some(gran) = args.get("granularity") {
        params = params.with_granularity(match gran {
            "offsets" => Granularity::Offsets,
            "records" => Granularity::Records,
            other => {
                return Err(UsageError(format!(
                    "unknown granularity {other:?} (expected offsets|records)"
                ))
                .into())
            }
        });
    }
    if let Some(frac) = args.get("stop-fraction") {
        let frac: f64 = frac
            .parse()
            .map_err(|_| UsageError(format!("--stop-fraction: cannot parse {frac:?}")))?;
        params = params.with_stopping(StopPolicy::DfFraction(frac));
    }
    let shards: usize = args.get_or("shards", 1)?;
    if shards == 0 {
        return Err(UsageError("--shards must be positive".to_string()).into());
    }
    if shards > 1 {
        return build_sharded(
            &collection,
            &db_dir,
            shards,
            nucdb::DbConfig {
                index: params,
                codec,
                storage,
            },
        );
    }

    std::fs::create_dir_all(&db_dir)?;
    let start = std::time::Instant::now();

    // Stream the FASTA once, filling the store; the index build re-reads
    // record bases from the store (bounded memory via the chunked build).
    let mut store = SequenceStore::new(storage);
    let reader = FastaReader::new(BufReader::new(File::open(&collection)?));
    for record in reader {
        let record = record?;
        store.add(record.id, &record.seq);
    }
    println!(
        "loaded {} records / {} bases ({:.1} ms)",
        store.len(),
        store.total_bases(),
        start.elapsed().as_secs_f64() * 1e3
    );

    let t_index = std::time::Instant::now();
    let index = build_chunked(
        params,
        codec,
        (0..store.len() as u32).map(|r| store.bases(r)),
        chunk,
        &db_dir.join("tmp_runs"),
    )?;
    let _ = std::fs::remove_dir_all(db_dir.join("tmp_runs"));
    println!(
        "built index: {} distinct intervals, {} postings entries ({:.1} ms)",
        index.distinct_intervals(),
        index.stats().postings_entries,
        t_index.elapsed().as_secs_f64() * 1e3
    );

    nucdb_index::write_index(&index, &db_dir.join(INDEX_FILE))?;
    store.write_to(&db_dir.join(STORE_FILE))?;
    println!(
        "database written to {} (index {} B, store {} B)",
        db_dir.display(),
        std::fs::metadata(db_dir.join(INDEX_FILE))?.len(),
        std::fs::metadata(db_dir.join(STORE_FILE))?.len(),
    );
    Ok(())
}

/// `nucdb build --shards N`: partition the collection into N contiguous
/// slices and write a sharded root — `SHARDS` manifest plus one plain
/// database directory per shard, built in parallel. Search over the
/// root is bit-identical to an unsharded build of the same FASTA.
fn build_sharded(
    collection: &Path,
    db_dir: &Path,
    shards: usize,
    config: nucdb::DbConfig,
) -> CommandResult {
    let start = std::time::Instant::now();
    let mut records: Vec<(String, nucdb_seq::DnaSeq)> = Vec::new();
    let mut bases = 0u64;
    let reader = FastaReader::new(BufReader::new(File::open(collection)?));
    for record in reader {
        let record = record?;
        bases += record.seq.len() as u64;
        records.push((record.id, record.seq));
    }
    println!(
        "loaded {} records / {bases} bases ({:.1} ms)",
        records.len(),
        start.elapsed().as_secs_f64() * 1e3
    );
    let t_build = std::time::Instant::now();
    let counts = nucdb::build_sharded_root(db_dir, records, shards, &config)?;
    println!(
        "built {} shards in parallel ({:.1} ms):",
        counts.len(),
        t_build.elapsed().as_secs_f64() * 1e3
    );
    let mut base = 0u64;
    for (i, count) in counts.iter().enumerate() {
        let name = nucdb_index::shard_dir_name(i);
        println!(
            "  {name}: {count} records, ids {base}..{}",
            base + u64::from(*count)
        );
        base += u64::from(*count);
    }
    println!("sharded root written to {}", db_dir.display());
    Ok(())
}

/// `nucdb ingest`
pub fn ingest(raw: &[String]) -> CommandResult {
    let args = Args::parse(
        "ingest",
        raw,
        &[
            "collection",
            "db",
            "k",
            "stride",
            "codec",
            "granularity",
            "batch",
            "memtable-max-records",
            "max-segments",
        ],
        &["ascii-store", "compact"],
    )?;
    let collection = PathBuf::from(args.required("collection")?);
    let db_dir = PathBuf::from(args.required("db")?);
    let batch: usize = args.get_or("batch", 256)?;
    if batch == 0 {
        return Err(UsageError("--batch must be positive".to_string()).into());
    }

    // Index/store shape options only matter when the live database is
    // created by this run; on reopen the manifest is authoritative.
    let k: usize = args.get_or("k", 8)?;
    let stride: usize = args.get_or("stride", 1)?;
    let mut params = IndexParams::new(k).with_stride(stride);
    if let Some(gran) = args.get("granularity") {
        params = params.with_granularity(match gran {
            "offsets" => Granularity::Offsets,
            "records" => Granularity::Records,
            other => {
                return Err(UsageError(format!(
                    "unknown granularity {other:?} (expected offsets|records)"
                ))
                .into())
            }
        });
    }
    let config = nucdb::DbConfig {
        index: params,
        codec: parse_codec(args.get("codec").unwrap_or("paper"))?,
        storage: if args.flag("ascii-store") {
            StorageMode::Ascii
        } else {
            StorageMode::DirectCoding
        },
    };

    let mut opts = nucdb::LiveOptions::default();
    opts.memtable_max_records = args.get_or("memtable-max-records", opts.memtable_max_records)?;
    opts.max_segments = args.get_or("max-segments", opts.max_segments)?;

    std::fs::create_dir_all(&db_dir)?;
    let live = nucdb::LiveDatabase::open_or_create(&db_dir, &config, opts)?;
    let before = live.status();
    println!(
        "live database at {}: {} segments, {} memtable records (manifest v{})",
        db_dir.display(),
        before.segments.len(),
        before.memtable_records,
        before.manifest_version,
    );

    let start = std::time::Instant::now();
    let mut inserted = 0u64;
    let mut bases = 0u64;
    let reader = FastaReader::new(BufReader::new(File::open(&collection)?));
    let mut pending: Vec<(String, nucdb_seq::DnaSeq)> = Vec::with_capacity(batch);
    for record in reader {
        let record = record?;
        bases += record.seq.len() as u64;
        pending.push((record.id, record.seq));
        if pending.len() >= batch {
            inserted += live.insert_batch(std::mem::take(&mut pending))?.inserted as u64;
        }
    }
    if !pending.is_empty() {
        inserted += live.insert_batch(pending)?.inserted as u64;
    }
    live.flush()?;

    if args.flag("compact") {
        for run in live.compact_all()? {
            println!(
                "compacted segments {:?}: {} B in, {} B out ({:.1} ms)",
                run.inputs,
                run.input_bytes,
                run.output_bytes,
                run.nanos as f64 / 1e6,
            );
        }
    }

    let status = live.status();
    let secs = start.elapsed().as_secs_f64();
    println!(
        "ingested {inserted} records / {bases} bases in {:.2} s ({:.0} records/s)",
        secs,
        inserted as f64 / secs.max(1e-9),
    );
    println!(
        "now: {} segments, {} flushes this run, manifest v{}",
        status.segments.len(),
        status.flushes,
        status.manifest_version,
    );
    Ok(())
}

fn open_db(dir: &Path) -> Result<Database, Box<dyn Error>> {
    // A manifest marks a live (segmented) directory: open the committed
    // segments as a read-only view — answers identical to what a server
    // over the same directory would return.
    if nucdb_index::Manifest::exists_in(dir) {
        return Ok(nucdb::LiveDatabase::open_readonly(
            dir,
            &MetricsRegistry::new(),
        )?);
    }
    // Fully disk-resident: postings lists and candidate records are both
    // fetched per query, exactly the paper's operating point.
    let store = nucdb::OnDiskStore::open(&dir.join(STORE_FILE))?;
    let index = OnDiskIndex::open(&dir.join(INDEX_FILE))?;
    Ok(Database::from_variants(
        nucdb::StoreVariant::Disk(store),
        IndexVariant::Disk(index),
    ))
}

/// Shared observability option names for `search`, `bench`, and `serve`.
const OBS_VALUE_OPTS: [&str; 8] = [
    "metrics",
    "metrics-format",
    "trace",
    "trace-sample",
    "flight-recorder",
    "slow-ms",
    "slow-log",
    "slow-log-max-bytes",
];

/// Where and how to dump the metrics snapshot after a run.
struct MetricsOutput {
    registry: Arc<MetricsRegistry>,
    path: PathBuf,
    json: bool,
}

impl MetricsOutput {
    /// Snapshot the registry and write the exposition file.
    fn write(&self) -> Result<(), Box<dyn Error>> {
        let snapshot = self.registry.snapshot();
        let text = if self.json {
            let mut rendered = snapshot.to_json().render();
            rendered.push('\n');
            rendered
        } else {
            snapshot.to_prometheus()
        };
        std::fs::write(&self.path, text)?;
        println!("metrics written to {}", self.path.display());
        Ok(())
    }

    /// The end-to-end query latency distribution, if any queries ran.
    fn query_latency(&self) -> Option<HistogramSnapshot> {
        match self.registry.snapshot().get("nucdb_query_latency_ns") {
            Some(ValueSnapshot::Histogram(hist)) if hist.count() > 0 => Some(hist.clone()),
            _ => None,
        }
    }
}

/// The shared observability options, validated before anything heavy runs.
///
/// `--trace FILE` attaches a JSONL per-query trace (`--trace-sample N`
/// keeps every Nth query); `--metrics FILE` registers the full metric
/// bundle and arranges for a snapshot to be written when the command
/// finishes, as Prometheus text or JSON per `--metrics-format`.
struct ObsOptions {
    trace: Option<(PathBuf, u64)>,
    metrics: Option<(PathBuf, bool)>,
    /// Flight-recorder configuration: (recent capacity, slow threshold
    /// in ns, slow-log path, slow-log size cap in bytes). `None` =
    /// forensics off.
    forensics: Option<(usize, u64, Option<PathBuf>, Option<u64>)>,
}

impl ObsOptions {
    fn parse(args: &Args) -> Result<ObsOptions, UsageError> {
        ObsOptions::parse_with(args, 0)
    }

    /// Parse with a command-specific flight-recorder default capacity
    /// (`serve` keeps the recorder on unless `--flight-recorder 0`).
    fn parse_with(args: &Args, default_flight: usize) -> Result<ObsOptions, UsageError> {
        let trace = match args.get("trace") {
            Some(path) => Some((PathBuf::from(path), args.get_or("trace-sample", 1u64)?)),
            None if args.get("trace-sample").is_some() => {
                return Err(UsageError("--trace-sample requires --trace".to_string()))
            }
            None => None,
        };
        let capacity: usize = args.get_or("flight-recorder", default_flight)?;
        let slow_ms: f64 = args.get_or("slow-ms", 0.0)?;
        if slow_ms < 0.0 {
            return Err(UsageError("--slow-ms must be non-negative".to_string()));
        }
        let slow_log = args.get("slow-log").map(PathBuf::from);
        let slow_log_max_bytes = match args.get("slow-log-max-bytes") {
            Some(_) if slow_log.is_none() => {
                return Err(UsageError(
                    "--slow-log-max-bytes requires --slow-log".to_string(),
                ))
            }
            Some(_) => {
                let max: u64 = args.get_or("slow-log-max-bytes", 0)?;
                if max == 0 {
                    return Err(UsageError(
                        "--slow-log-max-bytes must be positive".to_string(),
                    ));
                }
                Some(max)
            }
            None => None,
        };
        // Any slow-query option implies the recorder; an explicit
        // `--flight-recorder 0` with no slow options keeps it off.
        let forensics = if capacity > 0 || slow_ms > 0.0 || slow_log.is_some() {
            let threshold_ns = if slow_ms > 0.0 {
                (slow_ms * 1e6) as u64
            } else {
                u64::MAX
            };
            let recent = if capacity > 0 { capacity } else { 256 };
            Some((recent, threshold_ns, slow_log, slow_log_max_bytes))
        } else {
            None
        };
        let metrics = match args.get("metrics") {
            Some(path) => {
                let json = match args.get("metrics-format").unwrap_or("prometheus") {
                    "prometheus" => false,
                    "json" => true,
                    other => {
                        return Err(UsageError(format!(
                            "unknown metrics format {other:?} (expected prometheus|json)"
                        )))
                    }
                };
                Some((PathBuf::from(path), json))
            }
            None if args.get("metrics-format").is_some() => {
                return Err(UsageError(
                    "--metrics-format requires --metrics".to_string(),
                ))
            }
            None => None,
        };
        Ok(ObsOptions {
            trace,
            metrics,
            forensics,
        })
    }

    /// Build the trace sink and flight recorder as values (live mode
    /// hands them to the segment layer, which re-binds them to every
    /// query snapshot).
    fn sinks(&self) -> Result<(TraceSink, Forensics), Box<dyn Error>> {
        let trace = match &self.trace {
            Some((path, sample_every)) => TraceSink::to_file(path, *sample_every)?,
            None => TraceSink::disabled(),
        };
        let forensics = match &self.forensics {
            Some((recent_capacity, slow_threshold_ns, slow_log, max_bytes)) => {
                let slow_log = match (slow_log, max_bytes) {
                    (Some(path), Some(max_bytes)) => {
                        TraceSink::to_rotating_file(path, 1, *max_bytes)?
                    }
                    (Some(path), None) => TraceSink::to_file(path, 1)?,
                    (None, _) => TraceSink::disabled(),
                };
                Forensics::new(ForensicsConfig {
                    recent_capacity: *recent_capacity,
                    slow_threshold_ns: *slow_threshold_ns,
                    slow_log,
                    ..ForensicsConfig::default()
                })
            }
            None => Forensics::disabled(),
        };
        Ok((trace, forensics))
    }

    /// Attach the trace sink and flight recorder to `db` (everything
    /// except the metrics registry, which `serve` owns separately).
    fn bind_sinks(&self, db: &mut Database) -> Result<(), Box<dyn Error>> {
        let (trace, forensics) = self.sinks()?;
        if self.trace.is_some() {
            db.set_trace(trace);
        }
        if self.forensics.is_some() {
            db.set_forensics(forensics);
        }
        Ok(())
    }

    /// Attach the requested sinks to `db`. Returns the registry plus
    /// output destination when `--metrics` was given.
    fn bind(&self, db: &mut Database) -> Result<Option<MetricsOutput>, Box<dyn Error>> {
        self.bind_sinks(db)?;
        let Some((path, json)) = &self.metrics else {
            return Ok(None);
        };
        let registry = Arc::new(MetricsRegistry::new());
        db.bind_metrics(&registry);
        Ok(Some(MetricsOutput {
            registry,
            path: path.clone(),
            json: *json,
        }))
    }
}

fn parse_ranking(spec: &str) -> Result<RankingScheme, UsageError> {
    if spec == "count" {
        return Ok(RankingScheme::Count);
    }
    if spec == "prop" || spec == "proportional" {
        return Ok(RankingScheme::Proportional);
    }
    if let Some(rest) = spec.strip_prefix("frame") {
        let window = match rest.strip_prefix(':') {
            None if rest.is_empty() => 16,
            Some(w) => w
                .parse()
                .map_err(|_| UsageError(format!("--ranking frame:{w}: bad window")))?,
            _ => return Err(UsageError(format!("bad ranking spec {spec:?}"))),
        };
        return Ok(RankingScheme::Frame { window });
    }
    Err(UsageError(format!(
        "unknown ranking {spec:?} (expected count|prop|frame[:W])"
    )))
}

fn parse_fine(spec: &str) -> Result<FineMode, UsageError> {
    if spec == "full" {
        return Ok(FineMode::Full);
    }
    if spec == "trace" {
        return Ok(FineMode::FullWithTraceback);
    }
    if let Some(rest) = spec.strip_prefix("banded") {
        let half_width = match rest.strip_prefix(':') {
            None if rest.is_empty() => 24,
            Some(w) => w
                .parse()
                .map_err(|_| UsageError(format!("--fine banded:{w}: bad half-width")))?,
            _ => return Err(UsageError(format!("bad fine spec {spec:?}"))),
        };
        return Ok(FineMode::Banded { half_width });
    }
    Err(UsageError(format!(
        "unknown fine mode {spec:?} (expected banded[:W]|full|trace)"
    )))
}

/// `nucdb search`
pub fn search(raw: &[String]) -> CommandResult {
    let mut value_opts = vec![
        "db",
        "query",
        "candidates",
        "ranking",
        "fine",
        "max-results",
        "min-score",
        "query-stride",
    ];
    value_opts.extend(OBS_VALUE_OPTS);
    let args = Args::parse(
        "search",
        raw,
        &value_opts,
        &["both-strands", "evalue", "mask", "tabular", "explain"],
    )?;
    let tabular = args.flag("tabular");
    let db_dir = PathBuf::from(args.required("db")?);
    let query_path = PathBuf::from(args.required("query")?);

    let mut params = SearchParams::default();
    params.max_candidates = args.get_or("candidates", params.max_candidates)?;
    params.max_results = args.get_or("max-results", 20)?;
    params.min_score = args.get_or("min-score", params.min_score)?;
    if let Some(spec) = args.get("ranking") {
        params.ranking = parse_ranking(spec)?;
    }
    if let Some(spec) = args.get("fine") {
        params.fine = parse_fine(spec)?;
    }
    if args.flag("both-strands") {
        params.strand = Strand::Both;
    }
    if args.flag("mask") {
        params.mask = Some(nucdb_seq::DustParams::default());
    }
    params.explain = args.flag("explain");
    params.query_stride = args.get_or("query-stride", params.query_stride)?;

    let obs = ObsOptions::parse(&args)?;
    if nucdb_index::ShardManifest::exists_in(&db_dir) {
        return search_sharded(&db_dir, &query_path, &params, &args, &obs);
    }
    let mut db = open_db(&db_dir)?;
    let metrics_out = obs.bind(&mut db)?;
    if tabular {
        println!(
            "#query\tsubject\tscore\tstrand\thits{}",
            if args.flag("evalue") {
                "\tbits\tevalue"
            } else {
                ""
            }
        );
    } else {
        println!("database: {} records", db.len());
    }

    let mean_len = (db.store().total_bases() / db.len().max(1)).max(1);
    let reader = FastaReader::new(BufReader::new(File::open(&query_path)?));
    let mut scratch = CoarseScratch::new();
    for record in reader {
        let record = record?;
        let fit = args.flag("evalue").then(|| {
            calibrate_gumbel(
                &params.scheme,
                record.seq.len().max(16),
                mean_len,
                48,
                0xCAFE,
            )
        });
        // The query's FASTA id doubles as the request id, so trace lines
        // and flight-recorder entries are joinable with the output.
        let outcome = db.search_with_id(&record.seq, &params, &mut scratch, Some(&record.id))?;
        if tabular {
            for result in &outcome.results {
                let strand = match result.strand {
                    Strand::Forward => '+',
                    Strand::Reverse => '-',
                    Strand::Both => '?',
                };
                let tail = fit
                    .as_ref()
                    .map(|fit| {
                        let target_len = db.store().record_len(result.record);
                        format!(
                            "\t{:.1}\t{:.2e}",
                            fit.bit_score(result.score),
                            fit.evalue(record.seq.len(), target_len, result.score)
                        )
                    })
                    .unwrap_or_default();
                println!(
                    "{}\t{}\t{}\t{}\t{}{}",
                    record.id, result.id, result.score, strand, result.coarse_hits, tail
                );
            }
            if let Some(plan) = &outcome.explain {
                // Comment-prefixed so the TSV stays machine-parseable.
                for line in plan.render_text(EXPLAIN_MAX_LISTS).lines() {
                    println!("# {line}");
                }
            }
            continue;
        }
        println!(
            "\nquery {} ({} bases): {} answers  [coarse {:.2} ms, fine {:.2} ms, {} lists, {} postings]",
            record.id,
            record.seq.len(),
            outcome.results.len(),
            outcome.stats.coarse_nanos as f64 / 1e6,
            outcome.stats.fine_nanos as f64 / 1e6,
            outcome.stats.lists_fetched,
            outcome.stats.postings_decoded,
        );
        for (rank, result) in outcome.results.iter().enumerate() {
            let strand = match result.strand {
                Strand::Forward => '+',
                Strand::Reverse => '-',
                Strand::Both => '?',
            };
            let significance = fit
                .as_ref()
                .map(|fit| {
                    let target_len = db.store().record_len(result.record);
                    format!(
                        "  bits {:>7.1}  E {:.2e}",
                        fit.bit_score(result.score),
                        fit.evalue(record.seq.len(), target_len, result.score)
                    )
                })
                .unwrap_or_default();
            println!(
                "  {:>3}. {:<14} score {:>6}  strand {}  hits {:>5}{}",
                rank + 1,
                result.id,
                result.score,
                strand,
                result.coarse_hits,
                significance,
            );
            if let Some(alignment) = &result.alignment {
                println!(
                    "       q[{}..{}] x t[{}..{}]  identity {:.1}%  {}",
                    alignment.query_range.start,
                    alignment.query_range.end,
                    alignment.target_range.start,
                    alignment.target_range.end,
                    alignment.identity() * 100.0,
                    alignment.cigar_string(),
                );
            }
        }
        if let Some(plan) = &outcome.explain {
            print!("{}", plan.render_text(EXPLAIN_MAX_LISTS));
        }
    }
    db.metrics().trace.flush();
    db.metrics().forensics.flush();
    if let Some(out) = &metrics_out {
        out.write()?;
    }
    Ok(())
}

/// `nucdb search` over a sharded root: scatter-gather per query,
/// bit-identical to the unsharded answer at full coverage. When shards
/// fail, the answer degrades to the surviving shards and a warning on
/// stderr names each failed shard — the query still completes.
fn search_sharded(
    db_dir: &Path,
    query_path: &Path,
    params: &SearchParams,
    args: &Args,
    obs: &ObsOptions,
) -> CommandResult {
    if params.explain {
        return Err(
            UsageError("--explain is not supported over a sharded root".to_string()).into(),
        );
    }
    let tabular = args.flag("tabular");
    let registry = Arc::new(MetricsRegistry::new());
    let set = nucdb::ShardSet::open_root(db_dir, nucdb::ShardSetConfig::default(), &registry)?;
    for (name, _, records, error) in set.shard_rows() {
        if let Some(cause) = error {
            eprintln!("warning: {name} ({records} records) is unavailable: {cause}");
        }
    }
    if tabular {
        println!(
            "#query\tsubject\tscore\tstrand\thits{}",
            if args.flag("evalue") {
                "\tbits\tevalue"
            } else {
                ""
            }
        );
    } else {
        println!(
            "sharded database: {} records across {} shards",
            set.len(),
            set.num_shards()
        );
    }

    let mean_len = (set.total_bases() as usize / set.len().max(1)).max(1);
    let reader = FastaReader::new(BufReader::new(File::open(query_path)?));
    for record in reader {
        let record = record?;
        let fit = args.flag("evalue").then(|| {
            calibrate_gumbel(
                &params.scheme,
                record.seq.len().max(16),
                mean_len,
                48,
                0xCAFE,
            )
        });
        let outcome = set.search(&record.seq, params)?;
        if !outcome.coverage.is_full() {
            let causes: Vec<String> = outcome
                .failures
                .iter()
                .map(|f| format!("{}: {}", f.shard, f.error))
                .collect();
            eprintln!(
                "warning: query {} answered by {}/{} shards ({})",
                record.id,
                outcome.coverage.shards_ok,
                outcome.coverage.shards_total,
                causes.join("; "),
            );
        }
        if tabular {
            for result in &outcome.results {
                let strand = match result.strand {
                    Strand::Forward => '+',
                    Strand::Reverse => '-',
                    Strand::Both => '?',
                };
                let tail = fit
                    .as_ref()
                    .map(|fit| {
                        let target_len = set.record_len(result.record);
                        format!(
                            "\t{:.1}\t{:.2e}",
                            fit.bit_score(result.score),
                            fit.evalue(record.seq.len(), target_len, result.score)
                        )
                    })
                    .unwrap_or_default();
                println!(
                    "{}\t{}\t{}\t{}\t{}{}",
                    record.id, result.id, result.score, strand, result.coarse_hits, tail
                );
            }
            continue;
        }
        println!(
            "\nquery {} ({} bases): {} answers from {}/{} shards  [coarse {:.2} ms, fine {:.2} ms, {} lists, {} postings]",
            record.id,
            record.seq.len(),
            outcome.results.len(),
            outcome.coverage.shards_ok,
            outcome.coverage.shards_total,
            outcome.stats.coarse_nanos as f64 / 1e6,
            outcome.stats.fine_nanos as f64 / 1e6,
            outcome.stats.lists_fetched,
            outcome.stats.postings_decoded,
        );
        for (rank, result) in outcome.results.iter().enumerate() {
            let strand = match result.strand {
                Strand::Forward => '+',
                Strand::Reverse => '-',
                Strand::Both => '?',
            };
            let significance = fit
                .as_ref()
                .map(|fit| {
                    let target_len = set.record_len(result.record);
                    format!(
                        "  bits {:>7.1}  E {:.2e}",
                        fit.bit_score(result.score),
                        fit.evalue(record.seq.len(), target_len, result.score)
                    )
                })
                .unwrap_or_default();
            println!(
                "  {:>3}. {:<14} score {:>6}  strand {}  hits {:>5}{}",
                rank + 1,
                result.id,
                result.score,
                strand,
                result.coarse_hits,
                significance,
            );
        }
    }
    if let Some((path, json)) = &obs.metrics {
        MetricsOutput {
            registry,
            path: path.clone(),
            json: *json,
        }
        .write()?;
    }
    Ok(())
}

/// `nucdb merge`
pub fn merge(raw: &[String]) -> CommandResult {
    let args = Args::parse("merge", raw, &["db-a", "db-b", "out"], &[])?;
    let dir_a = PathBuf::from(args.required("db-a")?);
    let dir_b = PathBuf::from(args.required("db-b")?);
    let out = PathBuf::from(args.required("out")?);

    let index_a = nucdb_index::load_index(&dir_a.join(INDEX_FILE))?;
    let index_b = nucdb_index::load_index(&dir_b.join(INDEX_FILE))?;
    let merged = nucdb_index::merge_indexes(&index_a, &index_b)?;

    let mut store = SequenceStore::read_from(&dir_a.join(STORE_FILE))?;
    let store_b = SequenceStore::read_from(&dir_b.join(STORE_FILE))?;
    store.extend_from_store(&store_b)?;

    std::fs::create_dir_all(&out)?;
    nucdb_index::write_index(&merged, &out.join(INDEX_FILE))?;
    store.write_to(&out.join(STORE_FILE))?;
    println!(
        "merged {} + {} records into {} ({} distinct intervals)",
        index_a.num_records(),
        index_b.num_records(),
        out.display(),
        merged.distinct_intervals()
    );
    Ok(())
}

/// `nucdb verify`
pub fn verify(raw: &[String]) -> CommandResult {
    let args = Args::parse("verify", raw, &["db", "sample"], &[])?;
    let db_dir = PathBuf::from(args.required("db")?);
    let sample: usize = args.get_or("sample", 25)?;

    let store = SequenceStore::read_from(&db_dir.join(STORE_FILE))?;
    let index = nucdb_index::load_index(&db_dir.join(INDEX_FILE))?;
    let mut problems = 0usize;

    // 1. Store and index agree on the record set.
    if store.len() as u32 != index.num_records() {
        println!(
            "FAIL record counts differ: store {} vs index {}",
            store.len(),
            index.num_records()
        );
        problems += 1;
    }
    for record in 0..store.len().min(index.num_records() as usize) as u32 {
        if store.record_len(record) as u32 != index.record_lens()[record as usize] {
            println!("FAIL record {record} length differs between store and index");
            problems += 1;
        }
    }
    println!("record table: {} records checked", store.len());

    // 2. Every list decodes and is internally consistent.
    let mut lists = 0usize;
    for entry in index.vocab() {
        match index.counts(entry.code) {
            Ok(Some(counts)) => {
                if counts.len() != entry.df as usize {
                    println!(
                        "FAIL list {}: df {} but {} entries",
                        entry.code,
                        entry.df,
                        counts.len()
                    );
                    problems += 1;
                }
            }
            Ok(None) => {
                println!("FAIL vocab entry {} unexpectedly absent", entry.code);
                problems += 1;
            }
            Err(e) => {
                println!("FAIL list {} does not decode: {e}", entry.code);
                problems += 1;
            }
        }
        lists += 1;
    }
    println!("postings: {lists} lists decoded");

    // 3. Sampled cross-check: intervals extracted from stored records must
    //    appear in the index (unless a stopping policy may have dropped
    //    them).
    let stopped = index.params().stopping.is_some();
    let mut sampled = 0usize;
    for record in (0..store.len() as u32).step_by((store.len() / sample.max(1)).max(1)) {
        let bases = store.bases(record);
        for (offset, code) in index.params().extract(&bases).step_by(97) {
            sampled += 1;
            match index.counts(code)? {
                Some(counts) if counts.iter().any(|&(r, _)| r == record) => {}
                _ if stopped => {} // possibly stopped; absence is legal
                _ => {
                    println!(
                        "FAIL record {record} offset {offset}: interval {code} missing from index"
                    );
                    problems += 1;
                }
            }
        }
    }
    println!("cross-check: {sampled} sampled intervals verified against the store");

    if problems == 0 {
        println!("OK: database is consistent");
        Ok(())
    } else {
        Err(format!("{problems} consistency problem(s) found").into())
    }
}

/// `nucdb bench`
pub fn bench(raw: &[String]) -> CommandResult {
    let mut value_opts = vec!["db", "query", "repeat"];
    value_opts.extend(OBS_VALUE_OPTS);
    let args = Args::parse("bench", raw, &value_opts, &[])?;
    let db_dir = PathBuf::from(args.required("db")?);
    let query_path = PathBuf::from(args.required("query")?);
    let repeat: usize = args.get_or("repeat", 3)?;

    let obs = ObsOptions::parse(&args)?;
    let mut db = open_db(&db_dir)?;
    let metrics_out = obs.bind(&mut db)?;
    let params = SearchParams::default();
    let queries: Vec<_> = FastaReader::new(BufReader::new(File::open(&query_path)?))
        .collect::<Result<Vec<_>, _>>()?;
    println!(
        "database: {} records; {} queries x {} repetitions",
        db.len(),
        queries.len(),
        repeat
    );

    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>12} {:>8}",
        "query", "best ms", "mean ms", "answers", "bytes read", "lists"
    );
    let mut scratch = CoarseScratch::new();
    for record in &queries {
        let mut best = f64::INFINITY;
        let mut total = 0.0;
        let mut answers = 0usize;
        let mut bytes = 0u64;
        let mut lists = 0u64;
        for _ in 0..repeat.max(1) {
            if let IndexVariant::Disk(disk) = db.index() {
                disk.reset_io_counters();
            }
            let t0 = std::time::Instant::now();
            let outcome =
                db.search_with_id(&record.seq, &params, &mut scratch, Some(&record.id))?;
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            best = best.min(ms);
            total += ms;
            answers = outcome.results.len();
            if let IndexVariant::Disk(disk) = db.index() {
                bytes = disk.bytes_read();
                lists = disk.lists_read();
            }
        }
        println!(
            "{:<16} {:>10.2} {:>10.2} {:>10} {:>12} {:>8}",
            record.id,
            best,
            total / repeat.max(1) as f64,
            answers,
            bytes,
            lists
        );
    }
    db.metrics().trace.flush();
    db.metrics().forensics.flush();
    print_slowest(&db.metrics().forensics, 5);
    if let Some(out) = &metrics_out {
        if let Some(latency) = out.query_latency() {
            println!(
                "query latency: p50 {:.3} ms  p90 {:.3} ms  p99 {:.3} ms  max {:.3} ms",
                latency.p50() as f64 / 1e6,
                latency.p90() as f64 / 1e6,
                latency.p99() as f64 / 1e6,
                latency.max as f64 / 1e6,
            );
        }
        out.write()?;
    }
    Ok(())
}

/// Print the flight recorder's slowest retained queries (no-op when the
/// recorder is off).
fn print_slowest(forensics: &Forensics, top: usize) {
    if !forensics.is_enabled() {
        return;
    }
    let mut entries = forensics.recent();
    entries.sort_by_key(|e| std::cmp::Reverse(e.trace.total_ns));
    println!(
        "\nslowest queries (flight recorder, {} retained):",
        entries.len()
    );
    println!(
        "{:<20} {:>10} {:>8}  reason",
        "query", "total ms", "results"
    );
    for entry in entries.iter().take(top) {
        let id = if entry.trace.request_id.is_empty() {
            "-"
        } else {
            &entry.trace.request_id
        };
        println!(
            "{:<20} {:>10.3} {:>8}  {}",
            id,
            entry.trace.total_ns as f64 / 1e6,
            entry.trace.results,
            entry.reason.as_str(),
        );
    }
}

/// `nucdb serve`
pub fn serve(raw: &[String]) -> CommandResult {
    let mut value_opts = vec![
        "db",
        "addr",
        "threads",
        "queue-depth",
        "deadline-ms",
        "batch-window",
        "batch-max",
        "search-threads",
        "scrub-bytes-per-sec",
        "memtable-max-records",
        "max-segments",
        "compact-bytes-per-sec",
        "shard-deadline-ms",
        "shard-hedge-ms",
    ];
    value_opts.extend(OBS_VALUE_OPTS);
    let args = Args::parse("serve", raw, &value_opts, &["live"])?;
    let db_dir = PathBuf::from(args.required("db")?);
    let addr = args.get("addr").unwrap_or("127.0.0.1:7878").to_string();
    let live_mode = args.flag("live");
    let sharded_mode = !live_mode && nucdb_index::ShardManifest::exists_in(&db_dir);

    let mut config = nucdb_serve::ServeConfig::default();
    config.threads = args.get_or("threads", config.threads)?;
    config.queue_depth = args.get_or("queue-depth", config.queue_depth)?;
    config.deadline = std::time::Duration::from_millis(args.get_or("deadline-ms", 5_000u64)?);
    let window_ms: u64 = args.get_or("batch-window", 0)?;
    config.batch_window = (window_ms > 0).then(|| std::time::Duration::from_millis(window_ms));
    config.batch_max_queries = args.get_or("batch-max", config.batch_max_queries)?;
    config.search_threads = args.get_or("search-threads", config.search_threads)?;
    config.scrub_bytes_per_sec = args.get_or("scrub-bytes-per-sec", config.scrub_bytes_per_sec)?;
    config.compact_bytes_per_sec =
        args.get_or("compact-bytes-per-sec", config.compact_bytes_per_sec)?;
    for live_only in ["memtable-max-records", "max-segments"] {
        if !live_mode && args.get(live_only).is_some() {
            return Err(UsageError(format!("--{live_only} requires --live")).into());
        }
    }
    for shard_only in ["shard-deadline-ms", "shard-hedge-ms"] {
        if !sharded_mode && args.get(shard_only).is_some() {
            return Err(
                UsageError(format!("--{shard_only} requires a sharded database root")).into(),
            );
        }
    }

    // serve keeps the flight recorder on by default (capacity 256) so
    // /debug/queries and /debug/slow work out of the box; pass
    // `--flight-recorder 0` to run without it.
    let obs = ObsOptions::parse_with(&args, 256)?;
    nucdb_serve::install_termination_flag();
    let handle = if live_mode {
        // Live ingestion: the directory holds a segment manifest (created
        // on first start); the database accepts POST /insert.
        let registry = Arc::new(MetricsRegistry::new());
        let (trace, forensics) = obs.sinks()?;
        let mut opts = nucdb::LiveOptions {
            registry: Arc::clone(&registry),
            trace,
            forensics,
            ..nucdb::LiveOptions::default()
        };
        opts.memtable_max_records =
            args.get_or("memtable-max-records", opts.memtable_max_records)?;
        opts.max_segments = args.get_or("max-segments", opts.max_segments)?;
        let live = Arc::new(nucdb::LiveDatabase::open_or_create(
            &db_dir,
            &nucdb::DbConfig::default(),
            opts,
        )?);
        let status = live.status();
        println!(
            "live database: {} records ({} segments, {} in memtable)",
            live.snapshot().len(),
            status.segments.len(),
            status.memtable_records,
        );
        nucdb_serve::start_live(
            addr.as_str(),
            live,
            registry,
            SearchParams::default(),
            config,
        )?
    } else if sharded_mode {
        // Sharded root: per-shard workers are the intra-query
        // parallelism; trace/forensics are per-database and not bound.
        let hedge_ms: u64 = args.get_or("shard-hedge-ms", 250u64)?;
        let shard_config = nucdb::ShardSetConfig {
            shard_deadline: std::time::Duration::from_millis(
                args.get_or("shard-deadline-ms", 10_000u64)?,
            ),
            hedge_after: (hedge_ms > 0).then(|| std::time::Duration::from_millis(hedge_ms)),
        };
        let registry = Arc::new(MetricsRegistry::new());
        let set = nucdb::ShardSet::open_root(&db_dir, shard_config, &registry)?;
        for (name, _, records, error) in set.shard_rows() {
            if let Some(cause) = error {
                eprintln!("warning: {name} ({records} records) is unavailable: {cause}");
            }
        }
        println!(
            "sharded database: {} records across {} shards",
            set.len(),
            set.num_shards()
        );
        nucdb_serve::start_sharded(
            addr.as_str(),
            Arc::new(set),
            registry,
            SearchParams::default(),
            config,
        )?
    } else {
        let mut db = open_db(&db_dir)?;
        obs.bind_sinks(&mut db)?;
        // The server always keeps a live registry: /metrics exposes it,
        // and --metrics additionally writes a snapshot after the drain.
        let registry = MetricsRegistry::new();
        db.bind_metrics(&registry);
        println!("database: {} records", db.len());
        nucdb_serve::start(addr.as_str(), db, registry, SearchParams::default(), config)?
    };
    println!(
        "serving on http://{} ({} workers, queue depth {}, batching {})",
        handle.addr(),
        handle.config().threads,
        handle.config().queue_depth,
        match handle.config().batch_window {
            Some(window) => format!("{} ms", window.as_millis()),
            None => "off".to_string(),
        },
    );

    while !nucdb_serve::termination_requested() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    println!("shutdown requested; draining in-flight requests");
    let served = handle.requests_ok();
    let registry = handle.shutdown();
    println!("drained cleanly after {served} successful queries");
    if let (Some(registry), Some((path, json))) = (registry, &obs.metrics) {
        MetricsOutput {
            registry,
            path: path.clone(),
            json: *json,
        }
        .write()?;
    }
    Ok(())
}

/// `nucdb profile`
pub fn profile(raw: &[String]) -> CommandResult {
    let args = Args::parse("profile", raw, &["input", "top", "out"], &[])?;
    let input = PathBuf::from(args.required("input")?);
    let top: usize = args.get_or("top", 10)?;
    let out_dir = PathBuf::from(args.get("out").unwrap_or("results"));

    let text = std::fs::read_to_string(&input)?;
    let report = nucdb_obs::aggregate(&text, top);
    if report.queries == 0 {
        return Err(format!(
            "no parseable query traces in {} ({} lines skipped)",
            input.display(),
            report.skipped_lines
        )
        .into());
    }
    print!("{}", report.render_text());

    std::fs::create_dir_all(&out_dir)?;
    let txt_path = out_dir.join("PROFILE.txt");
    let json_path = out_dir.join("PROFILE.json");
    std::fs::write(&txt_path, report.render_text())?;
    let mut rendered = report.to_value().render();
    rendered.push('\n');
    std::fs::write(&json_path, rendered)?;
    println!(
        "report written to {} and {}",
        txt_path.display(),
        json_path.display()
    );
    Ok(())
}

/// `nucdb version`
pub fn version(raw: &[String]) -> CommandResult {
    Args::parse("version", raw, &[], &[])?;
    println!("{}", nucdb::build_info::human());
    Ok(())
}

/// `nucdb stats`
pub fn stats(raw: &[String]) -> CommandResult {
    let args = Args::parse("stats", raw, &["db"], &[])?;
    let db_dir = PathBuf::from(args.required("db")?);
    let store = SequenceStore::read_from(&db_dir.join(STORE_FILE))?;
    let index = OnDiskIndex::open(&db_dir.join(INDEX_FILE))?;

    println!("store:");
    println!("  records        {}", store.len());
    println!("  total bases    {}", store.total_bases());
    println!("  stored bytes   {}", store.stored_bytes());
    println!("  mode           {:?}", store.mode());
    println!("index:");
    println!("  interval k     {}", index.params().k);
    println!("  stride         {}", index.params().stride);
    println!("  stopping       {:?}", index.params().stopping);
    println!("  granularity    {:?}", index.params().granularity);
    println!("  codec          {}", index.codec().name());
    println!("  distinct       {}", index.distinct_intervals());
    println!(
        "  file bytes     {}",
        std::fs::metadata(db_dir.join(INDEX_FILE))?.len()
    );

    // The heaviest postings lists: candidates for stopping.
    let loaded = nucdb_index::load_index(&db_dir.join(INDEX_FILE))?;
    let mut entries: Vec<_> = loaded.vocab().to_vec();
    entries.sort_by_key(|e| std::cmp::Reverse(e.df));
    println!("most frequent intervals (df = records containing):");
    let k = loaded.params().k;
    for entry in entries.iter().take(10) {
        let interval: String = nucdb_seq::unpack_kmer(entry.code, k)
            .into_iter()
            .map(|b| b.to_ascii() as char)
            .collect();
        println!(
            "  {interval}  df {:>8}  ({:.2}% of records)",
            entry.df,
            entry.df as f64 * 100.0 / loaded.num_records().max(1) as f64
        );
    }
    Ok(())
}

/// `nucdb stat` — per-index statistics: list-length / bit-width / skew
/// histograms, skip-table density, codec tier, and bytes by section, as
/// text (stdout + STAT.txt) and JSON (STAT.json).
pub fn stat(raw: &[String]) -> CommandResult {
    let args = Args::parse("stat", raw, &["db", "out"], &[])?;
    let db_dir = PathBuf::from(args.required("db")?);
    let out_dir = PathBuf::from(args.get("out").unwrap_or("results"));

    if nucdb_index::Manifest::exists_in(&db_dir) {
        return stat_live(&db_dir, &out_dir);
    }
    if nucdb_index::ShardManifest::exists_in(&db_dir) {
        return stat_sharded(&db_dir, &out_dir);
    }

    let index_path = db_dir.join(INDEX_FILE);
    let store_path = db_dir.join(STORE_FILE);
    let report = nucdb::StatReport {
        index: index_path
            .exists()
            .then(|| OnDiskIndex::open(&index_path))
            .transpose()?
            .map(|index| nucdb::IndexStatReport::from_disk(&index)),
        store: store_path
            .exists()
            .then(|| nucdb::OnDiskStore::open(&store_path))
            .transpose()?
            .map(|store| nucdb::StoreStatReport::from_disk(&store)),
    };
    if report.index.is_none() && report.store.is_none() {
        return Err(format!("no index or store files in {}", db_dir.display()).into());
    }

    let text = report.render_text();
    print!("{text}");
    std::fs::create_dir_all(&out_dir)?;
    let txt_path = out_dir.join("STAT.txt");
    let json_path = out_dir.join("STAT.json");
    std::fs::write(&txt_path, &text)?;
    let mut rendered = report.to_value().render();
    rendered.push('\n');
    std::fs::write(&json_path, rendered)?;
    println!(
        "report written to {} and {}",
        txt_path.display(),
        json_path.display()
    );
    Ok(())
}

/// `nucdb stat` over a live (manifest-bearing) directory: a manifest
/// summary plus the full per-segment statistics report, so per-segment
/// histograms expose skew between settled and freshly flushed segments.
fn stat_live(db_dir: &Path, out_dir: &Path) -> CommandResult {
    use nucdb_obs::json::{num, Value};

    let manifest = nucdb_index::Manifest::load(db_dir)?;
    let mut text = format!(
        "live database {} (manifest v{})\n  k={} stride={} granularity={:?} codec={:?}\n  \
         {} segments, {} records, {} B on disk\n",
        db_dir.display(),
        manifest.version,
        manifest.k,
        manifest.stride,
        manifest.granularity,
        manifest.codec,
        manifest.segments.len(),
        manifest.total_records(),
        manifest.total_bytes(),
    );
    let orphans = manifest.orphans_in(db_dir)?;
    if !orphans.is_empty() {
        text += &format!("  orphaned files (run fsck): {}\n", orphans.join(", "));
    }

    let mut seg_values = Vec::with_capacity(manifest.segments.len());
    for seg in &manifest.segments {
        let report = nucdb::StatReport {
            index: Some(nucdb::IndexStatReport::from_disk(&OnDiskIndex::open(
                &db_dir.join(seg.index_file()),
            )?)),
            store: Some(nucdb::StoreStatReport::from_disk(
                &nucdb::OnDiskStore::open(&db_dir.join(seg.store_file()))?,
            )),
        };
        text += &format!(
            "\n== segment {:06} ({} records, {} B) ==\n",
            seg.id,
            seg.records,
            seg.bytes()
        );
        text += &report.render_text();
        seg_values.push(Value::Obj(vec![
            ("id".to_string(), num(seg.id)),
            ("records".to_string(), num(u64::from(seg.records))),
            ("report".to_string(), report.to_value()),
        ]));
    }

    print!("{text}");
    std::fs::create_dir_all(out_dir)?;
    let txt_path = out_dir.join("STAT.txt");
    let json_path = out_dir.join("STAT.json");
    std::fs::write(&txt_path, &text)?;
    let doc = Value::Obj(vec![
        ("manifest_version".to_string(), num(manifest.version)),
        (
            "segment_count".to_string(),
            num(manifest.segments.len() as u64),
        ),
        ("records".to_string(), num(manifest.total_records())),
        ("bytes".to_string(), num(manifest.total_bytes())),
        (
            "orphans".to_string(),
            Value::Arr(orphans.into_iter().map(Value::Str).collect()),
        ),
        ("segments".to_string(), Value::Arr(seg_values)),
    ]);
    let mut rendered = doc.render();
    rendered.push('\n');
    std::fs::write(&json_path, rendered)?;
    println!(
        "report written to {} and {}",
        txt_path.display(),
        json_path.display()
    );
    Ok(())
}

/// `nucdb stat` over a sharded root: a SHARDS-manifest summary plus the
/// full statistics report for every shard directory. A shard that will
/// not open is reported in place (with its manifest-recorded record
/// count) instead of aborting the whole report.
fn stat_sharded(db_dir: &Path, out_dir: &Path) -> CommandResult {
    use nucdb_obs::json::{num, Value};

    let manifest = nucdb_index::ShardManifest::load(db_dir)?;
    let mut text = format!(
        "sharded database {} (SHARDS v{})\n  k={} stride={} granularity={:?} codec={:?}\n  \
         {} shards, {} records\n",
        db_dir.display(),
        manifest.version,
        manifest.k,
        manifest.stride,
        manifest.granularity,
        manifest.codec,
        manifest.shards.len(),
        manifest.total_records(),
    );

    let mut shard_values = Vec::with_capacity(manifest.shards.len());
    for (i, meta) in manifest.shards.iter().enumerate() {
        let name = nucdb_index::shard_dir_name(i);
        let dir = db_dir.join(&name);
        text += &format!(
            "\n== {} ({} records, id base {}) ==\n",
            name,
            meta.records,
            manifest.base_of(i)
        );
        let mut members = vec![
            ("shard".to_string(), Value::Str(name.clone())),
            ("records".to_string(), num(u64::from(meta.records))),
            ("record_base".to_string(), num(manifest.base_of(i))),
        ];
        let opened: Result<nucdb::StatReport, Box<dyn Error>> = (|| {
            let index = OnDiskIndex::open(&dir.join(INDEX_FILE))?;
            let store = nucdb::OnDiskStore::open(&dir.join(STORE_FILE))?;
            Ok(nucdb::StatReport {
                index: Some(nucdb::IndexStatReport::from_disk(&index)),
                store: Some(nucdb::StoreStatReport::from_disk(&store)),
            })
        })();
        match opened {
            Ok(report) => {
                text += &report.render_text();
                members.push(("report".to_string(), report.to_value()));
            }
            Err(e) => {
                text += &format!("shard will not open: {e}\n");
                members.push(("error".to_string(), Value::Str(e.to_string())));
            }
        }
        shard_values.push(Value::Obj(members));
    }

    print!("{text}");
    std::fs::create_dir_all(out_dir)?;
    let txt_path = out_dir.join("STAT.txt");
    let json_path = out_dir.join("STAT.json");
    std::fs::write(&txt_path, &text)?;
    let doc = Value::Obj(vec![
        ("shard_count".to_string(), num(manifest.shards.len() as u64)),
        ("records".to_string(), num(manifest.total_records())),
        ("shards".to_string(), Value::Arr(shard_values)),
    ]);
    let mut rendered = doc.render();
    rendered.push('\n');
    std::fs::write(&json_path, rendered)?;
    println!(
        "report written to {} and {}",
        txt_path.display(),
        json_path.display()
    );
    Ok(())
}

/// `nucdb fsck` — walk every checksummed region of the database files
/// and report all damage found. Returns the process exit code: 0 clean,
/// 1 payload damage, 2 structural damage (header/TOC unreadable — which
/// also covers files that refuse to open at all).
pub fn fsck(raw: &[String]) -> Result<i32, Box<dyn Error>> {
    let args = Args::parse("fsck", raw, &["db"], &["json"])?;
    let db_dir = PathBuf::from(args.required("db")?);
    if nucdb_index::Manifest::exists_in(&db_dir) {
        return fsck_live(&db_dir, args.flag("json"));
    }
    if nucdb_index::ShardManifest::exists_in(&db_dir) {
        return fsck_sharded(&db_dir, args.flag("json"));
    }
    let index_path = db_dir.join(INDEX_FILE);
    let store_path = db_dir.join(STORE_FILE);
    if !index_path.exists() && !store_path.exists() {
        return Err(format!("no index or store files in {}", db_dir.display()).into());
    }

    let mut report = nucdb::FsckReport::default();
    let mut unopenable = false;
    if index_path.exists() {
        match OnDiskIndex::open(&index_path) {
            Ok(index) => nucdb::fsck_index(&index, &mut report),
            Err(e) => {
                unopenable = true;
                eprintln!("fsck: index {} will not open: {e}", index_path.display());
            }
        }
    }
    if store_path.exists() {
        match nucdb::OnDiskStore::open(&store_path) {
            Ok(store) => nucdb::fsck_store(&store, &mut report),
            Err(e) => {
                unopenable = true;
                eprintln!("fsck: store {} will not open: {e}", store_path.display());
            }
        }
    }

    if args.flag("json") {
        println!("{}", report.to_value().render());
    } else {
        print!("{}", report.render_text());
    }
    Ok(if unopenable { 2 } else { report.exit_code() })
}

/// `nucdb fsck` over a live (manifest-bearing) directory: verify the
/// manifest loads, walk every referenced segment's checksums, and flag
/// files the manifest does not account for. Exit codes: unreadable
/// manifest or missing/unopenable segment file → 2; checksum damage or
/// orphaned files → 1; clean → 0.
fn fsck_live(db_dir: &Path, json: bool) -> Result<i32, Box<dyn Error>> {
    use nucdb_obs::json::{num, Value};

    let manifest = match nucdb_index::Manifest::load(db_dir) {
        Ok(manifest) => manifest,
        Err(e) => {
            eprintln!("fsck: manifest in {} will not load: {e}", db_dir.display());
            return Ok(2);
        }
    };
    let mut unopenable = false;
    let mut worst = 0;
    let mut seg_values = Vec::with_capacity(manifest.segments.len());
    let mut text = format!(
        "manifest v{}: {} segments, {} records\n",
        manifest.version,
        manifest.segments.len(),
        manifest.total_records(),
    );
    for seg in &manifest.segments {
        let mut report = nucdb::FsckReport::default();
        let index_path = db_dir.join(seg.index_file());
        match OnDiskIndex::open(&index_path) {
            Ok(index) => nucdb::fsck_index(&index, &mut report),
            Err(e) => {
                unopenable = true;
                eprintln!(
                    "fsck: segment index {} will not open: {e}",
                    index_path.display()
                );
            }
        }
        let store_path = db_dir.join(seg.store_file());
        match nucdb::OnDiskStore::open(&store_path) {
            Ok(store) => nucdb::fsck_store(&store, &mut report),
            Err(e) => {
                unopenable = true;
                eprintln!(
                    "fsck: segment store {} will not open: {e}",
                    store_path.display()
                );
            }
        }
        worst = worst.max(report.exit_code());
        text += &format!("== segment {:06} ({} records) ==\n", seg.id, seg.records);
        text += &report.render_text();
        seg_values.push(Value::Obj(vec![
            ("id".to_string(), num(seg.id)),
            ("report".to_string(), report.to_value()),
        ]));
    }
    let orphans = manifest.orphans_in(db_dir)?;
    if !orphans.is_empty() {
        worst = worst.max(1);
        text += &format!(
            "orphaned files not in the manifest (safe to delete; a live open \
             removes them): {}\n",
            orphans.join(", ")
        );
    }

    if json {
        let doc = Value::Obj(vec![
            ("manifest_version".to_string(), num(manifest.version)),
            (
                "orphans".to_string(),
                Value::Arr(orphans.into_iter().map(Value::Str).collect()),
            ),
            ("segments".to_string(), Value::Arr(seg_values)),
        ]);
        println!("{}", doc.render());
    } else {
        print!("{text}");
    }
    Ok(if unopenable { 2 } else { worst })
}

/// `nucdb fsck` over a sharded root: verify the SHARDS manifest loads,
/// walk every shard directory's checksums, and cross-check each shard's
/// record count against the manifest. The exit code is the *worst*
/// shard's condition: unreadable manifest or an unopenable shard file →
/// 2; checksum damage or a record-count disagreement → 1; clean → 0.
fn fsck_sharded(db_dir: &Path, json: bool) -> Result<i32, Box<dyn Error>> {
    use nucdb_obs::json::{num, Value};

    let manifest = match nucdb_index::ShardManifest::load(db_dir) {
        Ok(manifest) => manifest,
        Err(e) => {
            eprintln!(
                "fsck: SHARDS manifest in {} will not load: {e}",
                db_dir.display()
            );
            return Ok(2);
        }
    };
    let mut worst = 0;
    let mut shard_values = Vec::with_capacity(manifest.shards.len());
    let mut text = format!(
        "SHARDS v{}: {} shards, {} records\n",
        manifest.version,
        manifest.shards.len(),
        manifest.total_records(),
    );
    for (i, meta) in manifest.shards.iter().enumerate() {
        let name = nucdb_index::shard_dir_name(i);
        let dir = db_dir.join(&name);
        let mut report = nucdb::FsckReport::default();
        let mut shard_worst = 0;
        let index_path = dir.join(INDEX_FILE);
        match OnDiskIndex::open(&index_path) {
            Ok(index) => {
                if index.num_records() != meta.records {
                    shard_worst = shard_worst.max(1);
                    eprintln!(
                        "fsck: {} holds {} records but the SHARDS manifest says {}",
                        name,
                        index.num_records(),
                        meta.records
                    );
                }
                nucdb::fsck_index(&index, &mut report);
            }
            Err(e) => {
                shard_worst = 2;
                eprintln!(
                    "fsck: shard index {} will not open: {e}",
                    index_path.display()
                );
            }
        }
        let store_path = dir.join(STORE_FILE);
        match nucdb::OnDiskStore::open(&store_path) {
            Ok(store) => nucdb::fsck_store(&store, &mut report),
            Err(e) => {
                shard_worst = 2;
                eprintln!(
                    "fsck: shard store {} will not open: {e}",
                    store_path.display()
                );
            }
        }
        shard_worst = shard_worst.max(report.exit_code());
        worst = worst.max(shard_worst);
        text += &format!("== {} ({} records) ==\n", name, meta.records);
        text += &report.render_text();
        shard_values.push(Value::Obj(vec![
            ("shard".to_string(), Value::Str(name)),
            ("exit_code".to_string(), num(shard_worst as u64)),
            ("report".to_string(), report.to_value()),
        ]));
    }

    if json {
        let doc = Value::Obj(vec![
            ("shard_count".to_string(), num(manifest.shards.len() as u64)),
            ("exit_code".to_string(), num(worst as u64)),
            ("shards".to_string(), Value::Arr(shard_values)),
        ]);
        println!("{}", doc.render());
    } else {
        print!("{text}");
    }
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranking_specs() {
        assert_eq!(parse_ranking("count").unwrap(), RankingScheme::Count);
        assert_eq!(parse_ranking("prop").unwrap(), RankingScheme::Proportional);
        assert_eq!(
            parse_ranking("frame").unwrap(),
            RankingScheme::Frame { window: 16 }
        );
        assert_eq!(
            parse_ranking("frame:4").unwrap(),
            RankingScheme::Frame { window: 4 }
        );
        assert!(parse_ranking("frame:x").is_err());
        assert!(parse_ranking("bogus").is_err());
    }

    #[test]
    fn fine_specs() {
        assert_eq!(parse_fine("full").unwrap(), FineMode::Full);
        assert_eq!(parse_fine("trace").unwrap(), FineMode::FullWithTraceback);
        assert_eq!(
            parse_fine("banded").unwrap(),
            FineMode::Banded { half_width: 24 }
        );
        assert_eq!(
            parse_fine("banded:8").unwrap(),
            FineMode::Banded { half_width: 8 }
        );
        assert!(parse_fine("banded:x").is_err());
        assert!(parse_fine("quux").is_err());
    }

    #[test]
    fn codec_specs() {
        assert_eq!(parse_codec("paper").unwrap(), ListCodec::Paper);
        assert_eq!(parse_codec("vbyte").unwrap(), ListCodec::VByte);
        assert_eq!(parse_codec("block").unwrap(), ListCodec::Block);
        assert!(parse_codec("zip").is_err());
    }

    #[test]
    fn merge_two_databases() {
        let dir = std::env::temp_dir().join(format!("nucdb_cli_merge_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let s = |v: &[&str]| -> Vec<String> { v.iter().map(|x| x.to_string()).collect() };

        for (name, seed) in [("a", "11"), ("b", "12")] {
            let fasta = dir.join(format!("{name}.fasta"));
            generate(&s(&[
                "--bases",
                "80000",
                "--out",
                fasta.to_str().unwrap(),
                "--seed",
                seed,
            ]))
            .unwrap();
            build(&s(&[
                "--collection",
                fasta.to_str().unwrap(),
                "--db",
                dir.join(name).to_str().unwrap(),
            ]))
            .unwrap();
        }

        merge(&s(&[
            "--db-a",
            dir.join("a").to_str().unwrap(),
            "--db-b",
            dir.join("b").to_str().unwrap(),
            "--out",
            dir.join("ab").to_str().unwrap(),
        ]))
        .unwrap();

        // The merged database answers queries spanning both halves.
        let db = open_db(&dir.join("ab")).unwrap();
        let a = SequenceStore::read_from(&dir.join("a").join(STORE_FILE)).unwrap();
        let b = SequenceStore::read_from(&dir.join("b").join(STORE_FILE)).unwrap();
        assert_eq!(db.len(), a.len() + b.len());
        for (store, offset) in [(&a, 0u32), (&b, a.len() as u32)] {
            let probe = store.sequence(3).unwrap();
            let outcome = db.search(&probe, &SearchParams::default()).unwrap();
            assert_eq!(outcome.results[0].record, 3 + offset);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn end_to_end_generate_build_search_stats() {
        let dir = std::env::temp_dir().join(format!("nucdb_cli_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let fasta = dir.join("coll.fasta");
        let queries = dir.join("queries.fasta");
        let db = dir.join("db");

        let s = |v: &[&str]| -> Vec<String> { v.iter().map(|x| x.to_string()).collect() };
        generate(&s(&[
            "--bases",
            "200000",
            "--out",
            fasta.to_str().unwrap(),
            "--seed",
            "7",
            "--queries-out",
            queries.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(fasta.exists());
        assert!(dir.join("coll.truth.tsv").exists());
        assert!(queries.exists());

        build(&s(&[
            "--collection",
            fasta.to_str().unwrap(),
            "--db",
            db.to_str().unwrap(),
            "--k",
            "8",
            "--chunk",
            "50",
        ]))
        .unwrap();
        assert!(db.join(INDEX_FILE).exists());
        assert!(db.join(STORE_FILE).exists());

        search(&s(&[
            "--db",
            db.to_str().unwrap(),
            "--query",
            queries.to_str().unwrap(),
            "--candidates",
            "20",
            "--both-strands",
            "--evalue",
        ]))
        .unwrap();
        search(&s(&[
            "--db",
            db.to_str().unwrap(),
            "--query",
            queries.to_str().unwrap(),
            "--tabular",
            "--mask",
        ]))
        .unwrap();

        stats(&s(&["--db", db.to_str().unwrap()])).unwrap();
        verify(&s(&["--db", db.to_str().unwrap(), "--sample", "10"])).unwrap();
        bench(&s(&[
            "--db",
            db.to_str().unwrap(),
            "--query",
            queries.to_str().unwrap(),
            "--repeat",
            "2",
        ]))
        .unwrap();

        // Observability flags: Prometheus metrics + JSONL trace on search,
        // JSON metrics on bench, all in --key=value form.
        let metrics = dir.join("metrics.prom");
        let trace = dir.join("trace.jsonl");
        search(&s(&[
            "--db",
            db.to_str().unwrap(),
            "--query",
            queries.to_str().unwrap(),
            &format!("--metrics={}", metrics.display()),
            &format!("--trace={}", trace.display()),
            "--trace-sample=1",
        ]))
        .unwrap();
        let prom = std::fs::read_to_string(&metrics).unwrap();
        assert!(prom.contains("nucdb_queries_total"));
        assert!(prom.contains("nucdb_query_latency_ns_bucket"));
        assert!(prom.contains("nucdb_index_bytes_read_total"));
        let traced = std::fs::read_to_string(&trace).unwrap();
        assert!(traced.lines().count() > 0);
        assert!(traced.lines().all(|l| l.contains("\"event\":\"query\"")));

        let metrics_json = dir.join("metrics.json");
        bench(&s(&[
            "--db",
            db.to_str().unwrap(),
            "--query",
            queries.to_str().unwrap(),
            "--repeat",
            "1",
            "--metrics",
            metrics_json.to_str().unwrap(),
            "--metrics-format",
            "json",
        ]))
        .unwrap();
        let json = std::fs::read_to_string(&metrics_json).unwrap();
        assert!(json.contains("nucdb_query_latency_ns"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn profile_golden_report_from_handcrafted_traces() {
        use nucdb_obs::{json, json::Value, QueryTrace, SpanNode};

        let dir = std::env::temp_dir().join(format!("nucdb_cli_profile_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        // Two handcrafted traces with exactly known numbers. `@`-prefixed
        // counters are identity labels and must not appear in totals.
        let t1 = QueryTrace {
            request_id: "q1".to_string(),
            total_ns: 1000,
            results: 2,
            error: None,
            plan: None,
            root: SpanNode::new("query", 0, 1000)
                .child(
                    SpanNode::new("coarse", 0, 600)
                        .counter("@strand", 0)
                        .child(SpanNode::new("extract", 0, 100).counter("intervals_looked_up", 9))
                        .child(
                            SpanNode::new("accumulate", 100, 400)
                                .counter("postings_bytes_read", 2048)
                                .counter("ids_decoded", 512),
                        )
                        .child(SpanNode::new("rank", 500, 100)),
                )
                .child(SpanNode::new("fine", 600, 300).counter("alignments", 2))
                .child(SpanNode::new("strand_merge", 900, 50)),
        };
        let t2 = QueryTrace {
            request_id: "q2".to_string(),
            total_ns: 500,
            results: 0,
            error: None,
            plan: None,
            root: SpanNode::new("query", 0, 500)
                .child(
                    SpanNode::new("coarse", 0, 400)
                        .child(SpanNode::new("extract", 0, 50))
                        .child(
                            SpanNode::new("accumulate", 50, 250)
                                .counter("postings_bytes_read", 1000)
                                .counter("ids_decoded", 100),
                        )
                        .child(SpanNode::new("rank", 300, 100)),
                )
                .child(SpanNode::new("fine", 400, 80).counter("alignments", 1))
                .child(SpanNode::new("strand_merge", 480, 10)),
        };
        let input = dir.join("trace.jsonl");
        std::fs::write(
            &input,
            format!("{}\n{}\n", t1.to_value().render(), t2.to_value().render()),
        )
        .unwrap();

        let out = dir.join("results");
        let s = |v: &[&str]| -> Vec<String> { v.iter().map(|x| x.to_string()).collect() };
        profile(&s(&[
            "--input",
            input.to_str().unwrap(),
            "--top",
            "10",
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap();

        assert!(out.join("PROFILE.txt").exists());
        let report =
            json::parse(&std::fs::read_to_string(out.join("PROFILE.json")).unwrap()).unwrap();
        assert_eq!(report.get("queries").and_then(Value::as_f64), Some(2.0));
        assert_eq!(report.get("errors").and_then(Value::as_f64), Some(0.0));
        assert_eq!(report.get("total_ns").and_then(Value::as_f64), Some(1500.0));

        // Stage self-times, hand-computed: accumulate 650, fine 380,
        // rank 200, extract 150, query 60, strand_merge 60, coarse 0.
        let Some(Value::Arr(stages)) = report.get("stages") else {
            panic!("no stages array");
        };
        let stage = |name: &str| {
            stages
                .iter()
                .find(|s| s.get("name").and_then(Value::as_str) == Some(name))
                .unwrap_or_else(|| panic!("stage {name} missing"))
        };
        let field = |s: &Value, f: &str| s.get(f).and_then(Value::as_f64).unwrap();
        assert_eq!(
            stages[0].get("name").and_then(Value::as_str),
            Some("accumulate"),
            "stages must be sorted by self time"
        );
        for (name, count, total, self_ns, max) in [
            ("query", 2.0, 1500.0, 60.0, 1000.0),
            ("coarse", 2.0, 1000.0, 0.0, 600.0),
            ("extract", 2.0, 150.0, 150.0, 100.0),
            ("accumulate", 2.0, 650.0, 650.0, 400.0),
            ("rank", 2.0, 200.0, 200.0, 100.0),
            ("fine", 2.0, 380.0, 380.0, 300.0),
            ("strand_merge", 2.0, 60.0, 60.0, 50.0),
        ] {
            let s = stage(name);
            assert_eq!(field(s, "count"), count, "{name} count");
            assert_eq!(field(s, "total_ns"), total, "{name} total");
            assert_eq!(field(s, "self_ns"), self_ns, "{name} self");
            assert_eq!(field(s, "max_ns"), max, "{name} max");
        }

        let counters = report.get("counters").unwrap();
        assert_eq!(
            counters.get("ids_decoded").and_then(Value::as_f64),
            Some(612.0)
        );
        assert_eq!(
            counters.get("postings_bytes_read").and_then(Value::as_f64),
            Some(3048.0)
        );
        assert_eq!(
            counters.get("alignments").and_then(Value::as_f64),
            Some(3.0)
        );
        assert_eq!(
            counters.get("intervals_looked_up").and_then(Value::as_f64),
            Some(9.0)
        );
        assert!(
            counters.get("@strand").is_none(),
            "identity labels excluded"
        );

        let Some(Value::Arr(slowest)) = report.get("slowest") else {
            panic!("no slowest array");
        };
        assert_eq!(
            slowest[0].get("request_id").and_then(Value::as_str),
            Some("q1")
        );
        assert_eq!(
            slowest[1].get("request_id").and_then(Value::as_str),
            Some("q2")
        );

        // An unreadable dump errors out instead of writing an empty report.
        std::fs::write(dir.join("junk.jsonl"), "not json\nstill not\n").unwrap();
        assert!(profile(&s(&["--input", dir.join("junk.jsonl").to_str().unwrap(),])).is_err());

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn observability_option_misuse_is_rejected() {
        let s = |v: &[&str]| -> Vec<String> { v.iter().map(|x| x.to_string()).collect() };
        // --metrics-format without --metrics, --trace-sample without --trace.
        assert!(search(&s(&[
            "--db",
            "x",
            "--query",
            "y",
            "--metrics-format",
            "json"
        ]))
        .is_err());
        assert!(search(&s(&["--db", "x", "--query", "y", "--trace-sample", "4"])).is_err());
        assert!(bench(&s(&[
            "--db",
            "x",
            "--query",
            "y",
            "--metrics-format",
            "json"
        ]))
        .is_err());
    }

    #[test]
    fn verify_detects_corruption() {
        let dir = std::env::temp_dir().join(format!("nucdb_cli_verify_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let s = |v: &[&str]| -> Vec<String> { v.iter().map(|x| x.to_string()).collect() };
        let fasta = dir.join("c.fasta");
        generate(&s(&[
            "--bases",
            "60000",
            "--out",
            fasta.to_str().unwrap(),
            "--seed",
            "3",
        ]))
        .unwrap();
        let db = dir.join("db");
        build(&s(&[
            "--collection",
            fasta.to_str().unwrap(),
            "--db",
            db.to_str().unwrap(),
        ]))
        .unwrap();
        verify(&s(&["--db", db.to_str().unwrap()])).unwrap();

        // Drop a record from the store: verify must now fail.
        let store = SequenceStore::read_from(&db.join(STORE_FILE)).unwrap();
        let mut truncated = SequenceStore::new(store.mode());
        for record in 0..store.len() as u32 - 1 {
            truncated.add(
                store.id(record).to_string(),
                &store.sequence(record).unwrap(),
            );
        }
        truncated.write_to(&db.join(STORE_FILE)).unwrap();
        assert!(verify(&s(&["--db", db.to_str().unwrap()])).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
