//! `nucdb` — command-line front end for the partitioned-search system.
//!
//! ```text
//! nucdb generate --bases 4000000 --out coll.fasta [--seed N] [--families N] ...
//! nucdb build    --collection coll.fasta --db DIR [--k 8] [--stride 1] ...
//! nucdb search   --db DIR --query q.fasta [--candidates 30] [--both-strands] ...
//! nucdb serve    --db DIR [--addr 127.0.0.1:7878] [--threads 4] ...
//! nucdb stats    --db DIR
//! ```
//!
//! `nucdb CMD --help` (or `nucdb help CMD`) prints per-subcommand usage.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = argv.split_first() else {
        eprintln!("{}", commands::USAGE);
        return ExitCode::FAILURE;
    };
    // `nucdb CMD --help` short-circuits to the subcommand's usage.
    if commands::usage_for(command).is_some()
        && rest.iter().any(|arg| arg == "--help" || arg == "-h")
    {
        println!("{}", commands::usage_for(command).unwrap());
        return ExitCode::SUCCESS;
    }
    // fsck owns its exit code: 0 clean, 1 payload damage, 2 structural.
    if command == "fsck" {
        return match commands::fsck(rest) {
            Ok(code) => ExitCode::from(code as u8),
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let result = match command.as_str() {
        "generate" => commands::generate(rest),
        "build" => commands::build(rest),
        "ingest" => commands::ingest(rest),
        "search" => commands::search(rest),
        "merge" => commands::merge(rest),
        "stats" => commands::stats(rest),
        "stat" => commands::stat(rest),
        "verify" => commands::verify(rest),
        "bench" => commands::bench(rest),
        "serve" => commands::serve(rest),
        "profile" => commands::profile(rest),
        "version" | "--version" | "-V" => commands::version(rest),
        "help" | "--help" | "-h" => {
            // `nucdb help CMD` prints that subcommand's usage.
            match rest.first().and_then(|cmd| commands::usage_for(cmd)) {
                Some(usage) => println!("{usage}"),
                None => println!("{}", commands::USAGE),
            }
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{}", commands::USAGE).into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
