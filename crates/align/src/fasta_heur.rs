//! A FASTA-style exhaustive scanner (Pearson & Lipman's k-tuple method).
//!
//! This is one of the two exhaustive baselines the paper measures
//! partitioned search against. For every record of the collection it:
//!
//! 1. finds all k-tuple (word) matches between query and record via a
//!    query word table,
//! 2. accumulates hit counts per alignment *diagonal* (the `init1` idea:
//!    a real local alignment concentrates word hits on few diagonals),
//! 3. re-scores the best diagonals with banded Smith–Waterman (the `opt`
//!    step), reporting the best banded score.
//!
//! It touches every record — exactly the per-query cost profile the
//! paper's index avoids — but is far cheaper per record than full
//! Smith–Waterman.

use nucdb_seq::kmer::KmerIter;
use nucdb_seq::Base;

use crate::banded::banded_sw_score;
use crate::result::ScanHit;
use crate::score::ScoringScheme;
use crate::words::WordTable;

/// Parameters of the FASTA-style scanner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FastaParams {
    /// Word (k-tuple) length; 6 is the classic DNA setting.
    pub ktup: usize,
    /// Half-width of the banded rescoring around each chosen diagonal.
    pub half_width: usize,
    /// How many top diagonals to rescore per record.
    pub top_diagonals: usize,
}

impl Default for FastaParams {
    fn default() -> FastaParams {
        FastaParams {
            ktup: 6,
            half_width: 16,
            top_diagonals: 4,
        }
    }
}

/// Score one record against a prepared query word table.
///
/// `table` must have been built from `query` with `params.ktup`.
pub fn fasta_score(
    table: &WordTable,
    query: &[Base],
    target: &[Base],
    params: &FastaParams,
    scheme: &ScoringScheme,
) -> i32 {
    debug_assert_eq!(table.k(), params.ktup);
    let m = query.len();
    let n = target.len();
    if m < params.ktup || n < params.ktup {
        return 0;
    }

    // Hits per diagonal; diagonal d = j - i shifted by m-1 to be
    // non-negative: index ∈ [0, m + n - 2].
    let mut diag_hits = vec![0u32; m + n - 1];
    for (j, code) in KmerIter::new(target, params.ktup) {
        for &i in table.lookup(code) {
            diag_hits[j + (m - 1) - i as usize] += 1;
        }
    }

    // Select the top diagonals by hit count (small partial selection;
    // top_diagonals is tiny so a scan per pick is fine).
    let mut best_score = 0i32;
    let mut chosen: Vec<usize> = Vec::with_capacity(params.top_diagonals);
    for _ in 0..params.top_diagonals {
        let mut best_idx = None;
        let mut best_hits = 0u32;
        for (idx, &hits) in diag_hits.iter().enumerate() {
            if hits > best_hits && !chosen.contains(&idx) {
                best_hits = hits;
                best_idx = Some(idx);
            }
        }
        let Some(idx) = best_idx else { break };
        chosen.push(idx);
        let center = idx as i64 - (m as i64 - 1);
        let score = banded_sw_score(query, target, scheme, center, params.half_width);
        best_score = best_score.max(score);
    }
    best_score
}

/// Scan a whole collection: score every record, return hits with a
/// positive score sorted by descending score (ties by ascending id).
pub fn fasta_scan<'a, I>(
    query: &[Base],
    targets: I,
    params: &FastaParams,
    scheme: &ScoringScheme,
) -> Vec<ScanHit>
where
    I: IntoIterator<Item = &'a [Base]>,
{
    let table = WordTable::build(query, params.ktup);
    let mut hits: Vec<ScanHit> = targets
        .into_iter()
        .enumerate()
        .filter_map(|(id, target)| {
            let score = fasta_score(&table, query, target, params, scheme);
            (score > 0).then_some(ScanHit {
                id: id as u32,
                score,
            })
        })
        .collect();
    hits.sort_by(|a, b| b.score.cmp(&a.score).then(a.id.cmp(&b.id)));
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sw::sw_score;
    use nucdb_seq::DnaSeq;

    fn bases(ascii: &[u8]) -> Vec<Base> {
        DnaSeq::from_ascii(ascii).unwrap().representative_bases()
    }

    fn scheme() -> ScoringScheme {
        ScoringScheme::blastn()
    }

    #[test]
    fn finds_planted_homolog() {
        let core = b"ACGTAGCTAGCTGGATCCAGGT";
        let mut t = b"TTCCTTCCTTCC".to_vec();
        t.extend_from_slice(core);
        t.extend_from_slice(b"GAGAGAGAGA");
        let query = bases(core);
        let target = bases(&t);
        let table = WordTable::build(&query, 6);
        let score = fasta_score(&table, &query, &target, &FastaParams::default(), &scheme());
        assert_eq!(score, sw_score(&query, &target, &scheme()));
    }

    #[test]
    fn unrelated_sequences_score_low() {
        let query = bases(&[b'A'; 60]);
        let target = bases(&[b'T'; 60]);
        let table = WordTable::build(&query, 6);
        assert_eq!(
            fasta_score(&table, &query, &target, &FastaParams::default(), &scheme()),
            0
        );
    }

    #[test]
    fn short_inputs_score_zero() {
        let q = bases(b"ACG");
        let t = bases(b"ACGTACGTACGT");
        let table = WordTable::build(&q, 6);
        assert_eq!(
            fasta_score(&table, &q, &t, &FastaParams::default(), &scheme()),
            0
        );
        let table = WordTable::build(&t, 6);
        assert_eq!(
            fasta_score(&table, &t, &q, &FastaParams::default(), &scheme()),
            0
        );
    }

    #[test]
    fn scan_ranks_homolog_first() {
        let core = b"ACGTAGCTAGCTGGATCCAGGTTTACGGA";
        let mut related = b"CCGGCCGGCC".to_vec();
        related.extend_from_slice(core);
        related.extend_from_slice(b"TTGGTTGGTT");

        let records: Vec<Vec<Base>> = vec![
            bases(b"GAGAGAGAGAGAGAGAGAGAGAGAGAGAGAGA"),
            bases(&related),
            bases(b"CTCTCTCTCTCTCTCTCTCTCTCTCTCTCTCT"),
        ];
        let query = bases(core);
        let hits = fasta_scan(
            &query,
            records.iter().map(Vec::as_slice),
            &FastaParams::default(),
            &scheme(),
        );
        assert!(!hits.is_empty());
        assert_eq!(hits[0].id, 1);
        assert!(hits[0].score >= 29 * scheme().match_score - 100);
    }

    #[test]
    fn scan_orders_by_score_descending() {
        let query = bases(b"ACGTAGCTAGCTGGATCCAGGT");
        // Record 0: exact copy; record 1: half of it; record 2: junk.
        let records: Vec<Vec<Base>> = vec![
            bases(b"ACGTAGCTAGCTGGATCCAGGT"),
            bases(b"ACGTAGCTAGC"),
            bases(b"GGGGGGGGGGGGGGGGGGGGGG"),
        ];
        let hits = fasta_scan(
            &query,
            records.iter().map(Vec::as_slice),
            &FastaParams::default(),
            &scheme(),
        );
        assert_eq!(hits[0].id, 0);
        for pair in hits.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }
}
