//! Smith–Waterman local alignment with affine gaps (Gotoh's algorithm).
//!
//! Two forms:
//!
//! * [`sw_score`] — score only, O(target) memory. This is what exhaustive
//!   ground-truth ranking runs over every record of the collection, so its
//!   inner loop is the hottest code in the baselines.
//! * [`sw_align`] — full traceback, O(query × target) memory, used to
//!   report the final alignments of answers.

use nucdb_seq::Base;

use crate::result::{Alignment, CigarBuilder, CigarOp};
use crate::score::ScoringScheme;

/// Sentinel low enough to never win a max, high enough not to overflow
/// when gap costs are subtracted.
const NEG: i32 = i32::MIN / 4;

/// Local alignment score of `query` against `target`. Linear memory.
pub fn sw_score(query: &[Base], target: &[Base], scheme: &ScoringScheme) -> i32 {
    if query.is_empty() || target.is_empty() {
        return 0;
    }
    let n = target.len();
    let gap_first = scheme.gap_first();
    let gap_next = scheme.gap_next();

    // h[j] holds H(i-1, j) until overwritten with H(i, j) during row i;
    // f[j] holds F(i-1, j) similarly. E needs only the current row scalar.
    let mut h = vec![0i32; n + 1];
    let mut f = vec![NEG; n + 1];
    let mut best = 0i32;

    for &q in query {
        let mut diag = h[0]; // H(i-1, 0)
        let mut e = NEG; // E(i, 0)
        for j in 1..=n {
            // E(i,j): gap in query, coming from the left.
            e = (h[j - 1] + gap_first).max(e + gap_next);
            // F(i,j): gap in target, coming from above (h[j] is H(i-1,j)).
            f[j] = (h[j] + gap_first).max(f[j] + gap_next);
            let sub = diag + scheme.substitution(q, target[j - 1]);
            let score = sub.max(e).max(f[j]).max(0);
            diag = h[j];
            h[j] = score;
            if score > best {
                best = score;
            }
        }
    }
    best
}

/// Direction bookkeeping for the traceback, one byte per cell:
/// bits 0–1 H source (0 stop, 1 diagonal, 2 E, 3 F), bit 2 "E extends E",
/// bit 3 "F extends F".
const H_STOP: u8 = 0;
const H_DIAG: u8 = 1;
const H_FROM_E: u8 = 2;
const H_FROM_F: u8 = 3;
const E_EXTEND: u8 = 1 << 2;
const F_EXTEND: u8 = 1 << 3;

/// Local alignment of `query` against `target` with full traceback.
///
/// Returns `None` when no alignment scores above zero (e.g. disjoint
/// alphabets under a positive-match scheme, or an empty input).
pub fn sw_align(query: &[Base], target: &[Base], scheme: &ScoringScheme) -> Option<Alignment> {
    let m = query.len();
    let n = target.len();
    if m == 0 || n == 0 {
        return None;
    }
    let gap_first = scheme.gap_first();
    let gap_next = scheme.gap_next();

    // Full H matrix (scores) and direction matrix; E/F kept as rows.
    let mut h = vec![0i32; (m + 1) * (n + 1)];
    let mut dir = vec![0u8; (m + 1) * (n + 1)];
    let mut f = vec![NEG; n + 1];
    let mut best = 0i32;
    let mut best_cell = (0usize, 0usize);

    for i in 1..=m {
        let row = i * (n + 1);
        let prev = row - (n + 1);
        let mut e = NEG;
        for j in 1..=n {
            let mut cell_dir = 0u8;

            let e_open = h[row + j - 1] + gap_first;
            let e_ext = e + gap_next;
            e = if e_ext > e_open {
                cell_dir |= E_EXTEND;
                e_ext
            } else {
                e_open
            };

            let f_open = h[prev + j] + gap_first;
            let f_ext = f[j] + gap_next;
            f[j] = if f_ext > f_open {
                cell_dir |= F_EXTEND;
                f_ext
            } else {
                f_open
            };

            let sub = h[prev + j - 1] + scheme.substitution(query[i - 1], target[j - 1]);
            let (score, source) = [(0, H_STOP), (sub, H_DIAG), (e, H_FROM_E), (f[j], H_FROM_F)]
                .into_iter()
                .max_by_key(|&(s, _)| s)
                .unwrap();
            h[row + j] = score;
            dir[row + j] = cell_dir | source;
            if score > best {
                best = score;
                best_cell = (i, j);
            }
        }
    }

    if best <= 0 {
        return None;
    }

    // Traceback from the best cell; a small state machine over H/E/F.
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        H,
        E,
        F,
    }
    let (mut i, mut j) = best_cell;
    let mut state = State::H;
    let mut cigar = CigarBuilder::new();
    loop {
        let d = dir[i * (n + 1) + j];
        match state {
            State::H => match d & 0b11 {
                H_STOP => break,
                H_DIAG => {
                    if query[i - 1] == target[j - 1] {
                        cigar.push(CigarOp::Match(1));
                    } else {
                        cigar.push(CigarOp::Mismatch(1));
                    }
                    i -= 1;
                    j -= 1;
                }
                H_FROM_E => state = State::E,
                _ => state = State::F,
            },
            State::E => {
                cigar.push(CigarOp::Delete(1));
                let extended = d & E_EXTEND != 0;
                j -= 1;
                if !extended {
                    state = State::H;
                }
            }
            State::F => {
                cigar.push(CigarOp::Insert(1));
                let extended = d & F_EXTEND != 0;
                i -= 1;
                if !extended {
                    state = State::H;
                }
            }
        }
    }

    let alignment = Alignment {
        score: best,
        query_range: i..best_cell.0,
        target_range: j..best_cell.1,
        cigar: cigar.into_reversed(),
    };
    debug_assert!(alignment.is_consistent());
    Some(alignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nucdb_seq::DnaSeq;

    fn bases(ascii: &[u8]) -> Vec<Base> {
        DnaSeq::from_ascii(ascii).unwrap().representative_bases()
    }

    fn unit() -> ScoringScheme {
        ScoringScheme::unit()
    }

    #[test]
    fn identical_sequences_score_full_match() {
        let s = bases(b"ACGTACGT");
        assert_eq!(sw_score(&s, &s, &unit()), 8);
        let a = sw_align(&s, &s, &unit()).unwrap();
        assert_eq!(a.score, 8);
        assert_eq!(a.query_range, 0..8);
        assert_eq!(a.target_range, 0..8);
        assert_eq!(a.cigar_string(), "8=");
        assert_eq!(a.identity(), 1.0);
    }

    #[test]
    fn empty_inputs() {
        let s = bases(b"ACGT");
        assert_eq!(sw_score(&[], &s, &unit()), 0);
        assert_eq!(sw_score(&s, &[], &unit()), 0);
        assert!(sw_align(&[], &s, &unit()).is_none());
        assert!(sw_align(&s, &[], &unit()).is_none());
    }

    #[test]
    fn disjoint_sequences_have_no_alignment() {
        let a = bases(b"AAAA");
        let t = bases(b"TTTT");
        assert_eq!(sw_score(&a, &t, &unit()), 0);
        assert!(sw_align(&a, &t, &unit()).is_none());
    }

    #[test]
    fn substring_is_found_locally() {
        let query = bases(b"CGTA");
        let target = bases(b"TTTTCGTATTTT");
        assert_eq!(sw_score(&query, &target, &unit()), 4);
        let a = sw_align(&query, &target, &unit()).unwrap();
        assert_eq!(a.query_range, 0..4);
        assert_eq!(a.target_range, 4..8);
        assert_eq!(a.cigar_string(), "4=");
    }

    #[test]
    fn hand_computed_mismatch_case() {
        // ACGT vs AGGT: best local is the full diagonal with one
        // mismatch: 3*1 - 1 = 2 under the unit scheme.
        let a = bases(b"ACGT");
        let b = bases(b"AGGT");
        assert_eq!(sw_score(&a, &b, &unit()), 2);
        let aln = sw_align(&a, &b, &unit()).unwrap();
        assert_eq!(aln.score, 2);
        assert_eq!(aln.matches(), 3);
    }

    /// Scheme where gapping through is strictly better than mismatching
    /// through (mismatch −3 vs a 2-gap cost of 2 + 2·1 = 4).
    fn gappy() -> ScoringScheme {
        ScoringScheme {
            match_score: 1,
            mismatch_score: -3,
            gap_open: 2,
            gap_extend: 1,
        }
    }

    #[test]
    fn gap_is_opened_when_worth_it() {
        // Query has a 2-base deletion relative to target; matching through
        // with a gap (10 - 4 = 6) beats mismatching through (8 - 6 = 2)
        // and beats either fragment alone (5).
        let query = bases(b"AAAAACCCCC");
        let target = bases(b"AAAAAGGCCCCC");
        let aln = sw_align(&query, &target, &gappy()).unwrap();
        assert_eq!(aln.score, 6);
        assert_eq!(aln.cigar_string(), "5=2D5=");
        assert_eq!(aln.query_range, 0..10);
        assert_eq!(aln.target_range, 0..12);
    }

    #[test]
    fn insertion_in_query() {
        let query = bases(b"AAAAAGGCCCCC");
        let target = bases(b"AAAAACCCCC");
        let aln = sw_align(&query, &target, &gappy()).unwrap();
        assert_eq!(aln.cigar_string(), "5=2I5=");
        assert_eq!(aln.score, 6);
    }

    #[test]
    fn score_matches_alignment_score() {
        // The linear-memory score and the traceback score must agree.
        let cases: &[(&[u8], &[u8])] = &[
            (b"ACGTACGTAA", b"ACGTTACGTA"),
            (b"GATTACA", b"GCATGCT"),
            (b"AAACCCGGGTTT", b"AAAGGGTTTCCC"),
            (b"ACACACACAC", b"CACACACACA"),
        ];
        for (q, t) in cases {
            let q = bases(q);
            let t = bases(t);
            for scheme in [ScoringScheme::unit(), ScoringScheme::blastn()] {
                let score = sw_score(&q, &t, &scheme);
                let align_score = sw_align(&q, &t, &scheme).map_or(0, |a| a.score);
                assert_eq!(score, align_score, "q={q:?} t={t:?}");
            }
        }
    }

    #[test]
    fn alignment_is_symmetric_in_score() {
        let a = bases(b"ACGTTGCATGCA");
        let b = bases(b"TGCATGGACGT");
        let s = ScoringScheme::blastn();
        assert_eq!(sw_score(&a, &b, &s), sw_score(&b, &a, &s));
    }

    #[test]
    fn affine_gap_prefers_one_long_gap() {
        // With affine costs, one 2-gap (open once) must beat two 1-gaps
        // (open twice). Target has two separated deletions vs a variant
        // with one 2-base deletion; build the equivalent directly:
        // scheme: open 5, extend 1 → gap(2) = 7, gap(1)+gap(1) = 12.
        let scheme = ScoringScheme {
            match_score: 2,
            mismatch_score: -3,
            gap_open: 5,
            gap_extend: 1,
        };
        let query = bases(b"AAAATTTTGGGG");
        let target = bases(b"AAAACCTTTTGGGG");
        let aln = sw_align(&query, &target, &scheme).unwrap();
        // 12 matches * 2 - (5 + 2*1) = 17.
        assert_eq!(aln.score, 17);
        assert_eq!(aln.cigar_string(), "4=2D8=");
    }

    #[test]
    fn traceback_ranges_are_consistent() {
        let q = bases(b"TTACGGATCGATTTACGCG");
        let t = bases(b"ACGGTTCGATTTACGAAAA");
        let aln = sw_align(&q, &t, &ScoringScheme::blastn()).unwrap();
        assert!(aln.is_consistent());
        assert!(aln.query_range.end <= q.len());
        assert!(aln.target_range.end <= t.len());
    }

    #[test]
    fn local_alignment_at_least_longest_common_substring() {
        // Plant a shared 12-mer inside unrelated flanks; the local score
        // must be at least 12 matches' worth.
        let core = b"ACGTAGCTAGCT";
        let mut q = b"TTTTTTTT".to_vec();
        q.extend_from_slice(core);
        q.extend_from_slice(b"GGGG");
        let mut t = b"CCCCCC".to_vec();
        t.extend_from_slice(core);
        t.extend_from_slice(b"AAAAAAAAAA");
        let scheme = ScoringScheme::blastn();
        assert!(sw_score(&bases(&q), &bases(&t), &scheme) >= 12 * scheme.match_score);
    }
}
