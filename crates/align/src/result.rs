//! Alignment results: scores, coordinates, CIGAR edit transcripts, and a
//! pairwise text renderer.

use nucdb_seq::Base;

/// One record's score from an exhaustive collection scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanHit {
    /// Record index within the scanned collection.
    pub id: u32,
    /// Best (heuristic or exact) local alignment score for the record.
    pub score: i32,
}

/// One CIGAR-style edit operation with a run length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CigarOp {
    /// `run` aligned pairs of identical bases.
    Match(u32),
    /// `run` aligned pairs of different bases.
    Mismatch(u32),
    /// `run` bases of the query aligned against a gap (insertion relative
    /// to the target).
    Insert(u32),
    /// `run` bases of the target aligned against a gap (deletion relative
    /// to the target).
    Delete(u32),
}

impl CigarOp {
    /// The run length.
    pub fn run(&self) -> u32 {
        match *self {
            CigarOp::Match(n) | CigarOp::Mismatch(n) | CigarOp::Insert(n) | CigarOp::Delete(n) => n,
        }
    }

    /// Single-letter code (`=`, `X`, `I`, `D`).
    pub fn letter(&self) -> char {
        match self {
            CigarOp::Match(_) => '=',
            CigarOp::Mismatch(_) => 'X',
            CigarOp::Insert(_) => 'I',
            CigarOp::Delete(_) => 'D',
        }
    }
}

/// A (local or global) pairwise alignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alignment {
    /// Alignment score under the scheme it was computed with.
    pub score: i32,
    /// Half-open aligned range in the query.
    pub query_range: std::ops::Range<usize>,
    /// Half-open aligned range in the target.
    pub target_range: std::ops::Range<usize>,
    /// Edit transcript from `(query_range.start, target_range.start)`.
    pub cigar: Vec<CigarOp>,
}

impl Alignment {
    /// Number of exactly matching aligned pairs.
    pub fn matches(&self) -> usize {
        self.cigar
            .iter()
            .map(|op| {
                if let CigarOp::Match(n) = op {
                    *n as usize
                } else {
                    0
                }
            })
            .sum()
    }

    /// Total alignment columns (pairs plus gap positions).
    pub fn columns(&self) -> usize {
        self.cigar.iter().map(|op| op.run() as usize).sum()
    }

    /// Fraction of columns that are exact matches (0.0 for an empty
    /// alignment).
    pub fn identity(&self) -> f64 {
        let cols = self.columns();
        if cols == 0 {
            0.0
        } else {
            self.matches() as f64 / cols as f64
        }
    }

    /// Compact CIGAR string, e.g. `12=1X3=2D7=`.
    pub fn cigar_string(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for op in &self.cigar {
            let _ = write!(out, "{}{}", op.run(), op.letter());
        }
        out
    }

    /// Render the alignment as BLAST-style pairwise text blocks:
    ///
    /// ```text
    /// query   12  ACGTACGT-ACG  23
    ///             |||| |||·|||
    /// target  45  ACGTTCGTAACG  56
    /// ```
    ///
    /// `|` marks a match, a space a mismatch; gaps appear as `-` in the
    /// gapped sequence. `query` and `target` must be the sequences the
    /// alignment was computed over.
    pub fn render(&self, query: &[Base], target: &[Base], width: usize) -> String {
        let width = width.max(10);
        // Expand the CIGAR into three parallel character rows.
        let mut q_row = String::new();
        let mut m_row = String::new();
        let mut t_row = String::new();
        let mut qi = self.query_range.start;
        let mut ti = self.target_range.start;
        for op in &self.cigar {
            match *op {
                CigarOp::Match(n) | CigarOp::Mismatch(n) => {
                    for _ in 0..n {
                        let qb = query[qi].to_ascii() as char;
                        let tb = target[ti].to_ascii() as char;
                        q_row.push(qb);
                        t_row.push(tb);
                        m_row.push(if qb == tb { '|' } else { ' ' });
                        qi += 1;
                        ti += 1;
                    }
                }
                CigarOp::Insert(n) => {
                    for _ in 0..n {
                        q_row.push(query[qi].to_ascii() as char);
                        t_row.push('-');
                        m_row.push(' ');
                        qi += 1;
                    }
                }
                CigarOp::Delete(n) => {
                    for _ in 0..n {
                        q_row.push('-');
                        t_row.push(target[ti].to_ascii() as char);
                        m_row.push(' ');
                        ti += 1;
                    }
                }
            }
        }

        // Emit in width-sized blocks with 1-based coordinates.
        let mut out = String::new();
        let mut q_pos = self.query_range.start;
        let mut t_pos = self.target_range.start;
        let total = q_row.len();
        let mut start = 0usize;
        while start < total {
            let end = (start + width).min(total);
            let q_chunk = &q_row[start..end];
            let m_chunk = &m_row[start..end];
            let t_chunk = &t_row[start..end];
            let q_advance = q_chunk.chars().filter(|&c| c != '-').count();
            let t_advance = t_chunk.chars().filter(|&c| c != '-').count();
            use std::fmt::Write;
            let _ = writeln!(
                out,
                "query   {:>6}  {}  {}",
                q_pos + 1,
                q_chunk,
                q_pos + q_advance
            );
            let _ = writeln!(out, "                {m_chunk}");
            let _ = writeln!(
                out,
                "target  {:>6}  {}  {}",
                t_pos + 1,
                t_chunk,
                t_pos + t_advance
            );
            if end < total {
                out.push('\n');
            }
            q_pos += q_advance;
            t_pos += t_advance;
            start = end;
        }
        out
    }

    /// Check internal consistency: op runs must add up to the coordinate
    /// ranges. Used by tests and debug assertions.
    pub fn is_consistent(&self) -> bool {
        let mut q = 0usize;
        let mut t = 0usize;
        for op in &self.cigar {
            match op {
                CigarOp::Match(n) | CigarOp::Mismatch(n) => {
                    q += *n as usize;
                    t += *n as usize;
                }
                CigarOp::Insert(n) => q += *n as usize,
                CigarOp::Delete(n) => t += *n as usize,
            }
        }
        q == self.query_range.len() && t == self.target_range.len()
    }
}

/// Builder that merges consecutive same-kind operations.
#[derive(Debug, Default)]
pub(crate) struct CigarBuilder {
    ops: Vec<CigarOp>,
}

impl CigarBuilder {
    pub(crate) fn new() -> CigarBuilder {
        CigarBuilder::default()
    }

    pub(crate) fn push(&mut self, op: CigarOp) {
        if op.run() == 0 {
            return;
        }
        if let Some(last) = self.ops.last_mut() {
            let merged = match (*last, op) {
                (CigarOp::Match(a), CigarOp::Match(b)) => Some(CigarOp::Match(a + b)),
                (CigarOp::Mismatch(a), CigarOp::Mismatch(b)) => Some(CigarOp::Mismatch(a + b)),
                (CigarOp::Insert(a), CigarOp::Insert(b)) => Some(CigarOp::Insert(a + b)),
                (CigarOp::Delete(a), CigarOp::Delete(b)) => Some(CigarOp::Delete(a + b)),
                _ => None,
            };
            if let Some(m) = merged {
                *last = m;
                return;
            }
        }
        self.ops.push(op);
    }

    /// Finish, reversing (tracebacks produce ops back-to-front).
    pub(crate) fn into_reversed(mut self) -> Vec<CigarOp> {
        self.ops.reverse();
        self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Alignment {
        Alignment {
            score: 42,
            query_range: 2..10,
            target_range: 5..14,
            cigar: vec![
                CigarOp::Match(4),
                CigarOp::Mismatch(1),
                CigarOp::Delete(1),
                CigarOp::Match(3),
            ],
        }
    }

    #[test]
    fn counting() {
        let a = sample();
        assert_eq!(a.matches(), 7);
        assert_eq!(a.columns(), 9);
        assert!((a.identity() - 7.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn cigar_string() {
        assert_eq!(sample().cigar_string(), "4=1X1D3=");
    }

    #[test]
    fn consistency() {
        assert!(sample().is_consistent());
        let mut broken = sample();
        broken.query_range = 0..3;
        assert!(!broken.is_consistent());
    }

    #[test]
    fn empty_alignment_identity_zero() {
        let a = Alignment {
            score: 0,
            query_range: 0..0,
            target_range: 0..0,
            cigar: vec![],
        };
        assert_eq!(a.identity(), 0.0);
        assert!(a.is_consistent());
    }

    #[test]
    fn render_pairwise_blocks() {
        use crate::score::ScoringScheme;
        use crate::sw::sw_align;
        use nucdb_seq::DnaSeq;
        let q = DnaSeq::from_ascii(b"AAAAACCCCC")
            .unwrap()
            .representative_bases();
        let t = DnaSeq::from_ascii(b"AAAAAGGCCCCC")
            .unwrap()
            .representative_bases();
        let scheme = ScoringScheme {
            match_score: 1,
            mismatch_score: -3,
            gap_open: 2,
            gap_extend: 1,
        };
        let alignment = sw_align(&q, &t, &scheme).unwrap();
        let text = alignment.render(&q, &t, 40);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("AAAAA--CCCCC"), "{text}");
        assert!(lines[2].contains("AAAAAGGCCCCC"), "{text}");
        // Coordinates: 1-based start, end = last base consumed.
        assert!(lines[0].trim_start().starts_with("query"));
        assert!(lines[0].contains("  1  "), "{text}");
        assert!(lines[0].trim_end().ends_with("10"), "{text}");
        assert!(lines[2].trim_end().ends_with("12"), "{text}");
        // Match row has bars exactly where bases agree.
        assert_eq!(lines[1].matches('|').count(), 10);
    }

    #[test]
    fn render_wraps_long_alignments() {
        use crate::score::ScoringScheme;
        use crate::sw::sw_align;
        use nucdb_seq::DnaSeq;
        let seq = DnaSeq::from_ascii(&[b'A'; 75])
            .unwrap()
            .representative_bases();
        let alignment = sw_align(&seq, &seq, &ScoringScheme::unit()).unwrap();
        let text = alignment.render(&seq, &seq, 30);
        // 75 columns at width 30 → 3 blocks of 3 lines + 2 separators.
        let blocks = text.split("\n\n").count();
        assert_eq!(blocks, 3, "{text}");
        // Second block starts at base 31.
        assert!(text.contains("query       31"), "{text}");
    }

    #[test]
    fn builder_merges_runs() {
        let mut b = CigarBuilder::new();
        b.push(CigarOp::Match(1));
        b.push(CigarOp::Match(2));
        b.push(CigarOp::Insert(1));
        b.push(CigarOp::Insert(0)); // ignored
        b.push(CigarOp::Match(1));
        let ops = b.into_reversed();
        assert_eq!(
            ops,
            vec![CigarOp::Match(1), CigarOp::Insert(1), CigarOp::Match(3)]
        );
    }
}
