//! Wildcard-aware local alignment over the full IUPAC alphabet.
//!
//! The main alignment path works over representative bases (wildcards
//! collapsed), which is what the packed store decodes fastest and is the
//! right trade for bulk scanning. When a region of interest contains
//! ambiguity codes, though, collapsing biases the score: an `N` should be
//! *compatible with* every base rather than match one and mismatch three.
//!
//! This module provides a score-only Smith–Waterman whose substitution
//! rule consults ambiguity sets: two codes score as a (possibly
//! discounted) match when their sets intersect. The discount reflects
//! that `N`-vs-`A` is weaker evidence than `A`-vs-`A`: the match score is
//! scaled by the probability that the two codes agree under a uniform
//! draw from their sets, never dropping below the mismatch score.

use nucdb_seq::{DnaSeq, IupacCode};

use crate::score::ScoringScheme;

const NEG: i32 = i32::MIN / 4;

/// Substitution score for two IUPAC codes under `scheme`.
///
/// Disjoint sets score as a mismatch. Overlapping sets score as a match
/// scaled by `|A ∩ B| / (|A| · |B|)` — the agreement probability — so
/// `A/A` gets the full match score, `N/A` a quarter of it.
#[inline]
pub fn iupac_substitution(scheme: &ScoringScheme, a: IupacCode, b: IupacCode) -> i32 {
    let overlap = (a.mask() & b.mask()).count_ones();
    if overlap == 0 {
        return scheme.mismatch_score;
    }
    let agreement = overlap as f64 / (a.cardinality() as f64 * b.cardinality() as f64);
    let scaled = (scheme.match_score as f64 * agreement).round() as i32;
    scaled.max(scheme.mismatch_score)
}

/// Wildcard-aware local alignment score (Gotoh recurrences, linear
/// memory), the IUPAC analogue of [`crate::sw_score`].
pub fn sw_score_iupac(query: &DnaSeq, target: &DnaSeq, scheme: &ScoringScheme) -> i32 {
    if query.is_empty() || target.is_empty() {
        return 0;
    }
    let n = target.len();
    let gap_first = scheme.gap_first();
    let gap_next = scheme.gap_next();
    let target_codes = target.codes();

    let mut h = vec![0i32; n + 1];
    let mut f = vec![NEG; n + 1];
    let mut best = 0i32;
    for q in query.iter() {
        let mut diag = h[0];
        let mut e = NEG;
        for j in 1..=n {
            e = (h[j - 1] + gap_first).max(e + gap_next);
            f[j] = (h[j] + gap_first).max(f[j] + gap_next);
            let sub = diag + iupac_substitution(scheme, q, target_codes[j - 1]);
            let score = sub.max(e).max(f[j]).max(0);
            diag = h[j];
            h[j] = score;
            if score > best {
                best = score;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sw::sw_score;

    fn seq(ascii: &[u8]) -> DnaSeq {
        DnaSeq::from_ascii(ascii).unwrap()
    }

    fn unit() -> ScoringScheme {
        ScoringScheme::unit()
    }

    #[test]
    fn plain_bases_match_classic_sw() {
        // Without wildcards the IUPAC scorer must agree with the base
        // scorer exactly.
        for (q, t) in [
            (&b"ACGTACGT"[..], &b"ACGTACGT"[..]),
            (b"GATTACA", b"GCATGCT"),
            (b"AAAAACCCCC", b"AAAAAGGCCCCC"),
        ] {
            let q = seq(q);
            let t = seq(t);
            for scheme in [ScoringScheme::unit(), ScoringScheme::blastn()] {
                assert_eq!(
                    sw_score_iupac(&q, &t, &scheme),
                    sw_score(
                        &q.representative_bases(),
                        &t.representative_bases(),
                        &scheme
                    ),
                    "q={q} t={t}"
                );
            }
        }
    }

    #[test]
    fn substitution_rules() {
        let s = ScoringScheme::blastn(); // +5 / −4
        let a = IupacCode::A;
        let n = IupacCode::N;
        let r = IupacCode::R;
        let y = IupacCode::Y;
        assert_eq!(iupac_substitution(&s, a, a), 5);
        assert_eq!(iupac_substitution(&s, a, IupacCode::C), -4);
        // N/A: agreement 1/4 → round(1.25) = 1.
        assert_eq!(iupac_substitution(&s, n, a), 1);
        // R/A: agreement 1/2 → round(2.5) = 3 (banker-free rounding up).
        assert_eq!(iupac_substitution(&s, r, a), 3);
        // R/Y sets are disjoint → mismatch.
        assert_eq!(iupac_substitution(&s, r, y), -4);
        // Symmetric.
        assert_eq!(iupac_substitution(&s, a, n), iupac_substitution(&s, n, a));
    }

    #[test]
    fn n_never_scores_below_mismatch() {
        // Even pathological schemes keep compatible codes at or above the
        // mismatch score.
        let s = ScoringScheme {
            match_score: 1,
            mismatch_score: -10,
            gap_open: 2,
            gap_extend: 1,
        };
        for byte in b"ACGTRYSWKMBDHVN" {
            let code = IupacCode::from_ascii(*byte).unwrap();
            assert!(iupac_substitution(&s, IupacCode::N, code) >= s.mismatch_score);
        }
    }

    #[test]
    fn wildcard_region_scores_better_than_collapsed_mismatch() {
        // Query matches the target except where the target has Ns. The
        // IUPAC score must beat the collapsed-representative score
        // whenever collapsing turns an N into a mismatching base.
        let q = seq(b"ACGTACGTACGTACGT");
        let t = seq(b"ACGTNNNNACGTACGT");
        let iupac = sw_score_iupac(&q, &t, &unit());
        let collapsed = sw_score(
            &q.representative_bases(),
            &t.representative_bases(),
            &unit(),
        );
        assert!(iupac >= collapsed, "iupac {iupac} < collapsed {collapsed}");
        // And the Ns must not count as full matches: scoring stays below
        // the all-match bound.
        assert!(iupac < q.len() as i32);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(sw_score_iupac(&DnaSeq::new(), &seq(b"ACGT"), &unit()), 0);
        assert_eq!(sw_score_iupac(&seq(b"ACGT"), &DnaSeq::new(), &unit()), 0);
    }

    #[test]
    fn disjoint_alphabets_score_zero() {
        assert_eq!(sw_score_iupac(&seq(b"AAAA"), &seq(b"TTTT"), &unit()), 0);
        // R (A/G) against Y (C/T) can never match.
        assert_eq!(sw_score_iupac(&seq(b"RRRR"), &seq(b"YYYY"), &unit()), 0);
    }
}
