//! Query word tables for the exhaustive scan heuristics.
//!
//! FASTA's k-tuple lookup and BLAST's word-hit seeding both need, for every
//! word of the scanned record, the list of query positions holding the same
//! word. A [`WordTable`] is built once per query and probed once per record
//! position, so lookup must be cheap: small word lengths use a dense
//! `4^k`-slot table, longer ones a hash map with a multiplicative hasher
//! (the standard SipHash is overkill for trusted integer keys).

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use nucdb_seq::kmer::{vocabulary_size, KmerIter};
use nucdb_seq::Base;

/// Multiplicative hasher for `u64` word codes (Fibonacci hashing).
#[derive(Default)]
pub struct WordHasher {
    state: u64,
}

impl Hasher for WordHasher {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic path, only used if a non-u64 key sneaks in.
        for &b in bytes {
            self.state = self.state.rotate_left(8) ^ b as u64;
        }
        self.state = self.state.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }

    fn write_u64(&mut self, value: u64) {
        self.state = value.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }
}

type WordMap = HashMap<u64, Vec<u32>, BuildHasherDefault<WordHasher>>;

/// Dense tables are used while `4^k` stays at or below this many slots.
const DENSE_LIMIT: u64 = 1 << 16;

/// Word-code → query-positions lookup for one query.
pub struct WordTable {
    k: usize,
    dense: Option<Vec<Vec<u32>>>,
    sparse: WordMap,
}

impl WordTable {
    /// Index every overlapping word of length `k` in `query`.
    pub fn build(query: &[Base], k: usize) -> WordTable {
        let vocab = vocabulary_size(k);
        let mut table = if vocab <= DENSE_LIMIT {
            WordTable {
                k,
                dense: Some(vec![Vec::new(); vocab as usize]),
                sparse: WordMap::default(),
            }
        } else {
            WordTable {
                k,
                dense: None,
                sparse: WordMap::default(),
            }
        };
        for (pos, code) in KmerIter::new(query, k) {
            match &mut table.dense {
                Some(dense) => dense[code as usize].push(pos as u32),
                None => table.sparse.entry(code).or_default().push(pos as u32),
            }
        }
        table
    }

    /// Word length.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Query positions whose word equals `code` (ascending).
    #[inline]
    pub fn lookup(&self, code: u64) -> &[u32] {
        match &self.dense {
            Some(dense) => &dense[code as usize],
            None => self.sparse.get(&code).map_or(&[], Vec::as_slice),
        }
    }

    /// Number of distinct words present.
    pub fn distinct_words(&self) -> usize {
        match &self.dense {
            Some(dense) => dense.iter().filter(|v| !v.is_empty()).count(),
            None => self.sparse.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nucdb_seq::{pack_kmer, DnaSeq};

    fn bases(ascii: &[u8]) -> Vec<Base> {
        DnaSeq::from_ascii(ascii).unwrap().representative_bases()
    }

    #[test]
    fn dense_lookup_finds_positions() {
        let q = bases(b"ACGTACGT");
        let table = WordTable::build(&q, 4);
        let acgt = pack_kmer(&bases(b"ACGT"));
        assert_eq!(table.lookup(acgt), &[0, 4]);
        let cgta = pack_kmer(&bases(b"CGTA"));
        assert_eq!(table.lookup(cgta), &[1]);
        let tttt = pack_kmer(&bases(b"TTTT"));
        assert!(table.lookup(tttt).is_empty());
    }

    #[test]
    fn sparse_lookup_for_long_words() {
        let q = bases(b"ACGTACGTACGTACG");
        let table = WordTable::build(&q, 11);
        assert!(table.dense.is_none(), "k=11 must be sparse");
        let word = pack_kmer(&bases(b"ACGTACGTACG"));
        assert_eq!(table.lookup(word), &[0, 4]);
        assert_eq!(table.lookup(0), &[] as &[u32]);
    }

    #[test]
    fn dense_and_sparse_agree() {
        // Force the same k through both paths by comparing k=8 dense with
        // a manual sparse build.
        let q = bases(b"ACGGTTCAGGATCCGATTACAGTACGGT");
        let dense = WordTable::build(&q, 8);
        assert!(dense.dense.is_some());
        let mut sparse = WordTable {
            k: 8,
            dense: None,
            sparse: WordMap::default(),
        };
        for (pos, code) in KmerIter::new(&q, 8) {
            sparse.sparse.entry(code).or_default().push(pos as u32);
        }
        for (_, code) in KmerIter::new(&q, 8) {
            assert_eq!(dense.lookup(code), sparse.lookup(code));
        }
        assert_eq!(dense.distinct_words(), sparse.distinct_words());
    }

    #[test]
    fn short_query_has_no_words() {
        let q = bases(b"ACG");
        let table = WordTable::build(&q, 6);
        assert_eq!(table.distinct_words(), 0);
    }
}
