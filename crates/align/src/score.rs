//! Scoring schemes for nucleotide alignment.

use nucdb_seq::Base;

/// Match/mismatch and affine gap parameters.
///
/// Gap costs are stored as positive magnitudes; a gap of length `L` costs
/// `gap_open + L * gap_extend` (the "open" charge is paid once, on top of
/// the per-base extension, following Gotoh's formulation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScoringScheme {
    /// Score for aligning two identical bases (positive).
    pub match_score: i32,
    /// Score for aligning two different bases (negative).
    pub mismatch_score: i32,
    /// One-off cost of opening a gap (positive magnitude).
    pub gap_open: i32,
    /// Per-base cost of extending a gap (positive magnitude).
    pub gap_extend: i32,
}

impl ScoringScheme {
    /// The classic nucleotide scheme used throughout the experiments:
    /// +5/−4 with gap open 10, extend 2 (BLASTN-like magnitudes).
    pub fn blastn() -> ScoringScheme {
        ScoringScheme {
            match_score: 5,
            mismatch_score: -4,
            gap_open: 10,
            gap_extend: 2,
        }
    }

    /// A unit scheme (+1/−1, gaps −2−1·L) convenient for hand-checked
    /// tests.
    pub fn unit() -> ScoringScheme {
        ScoringScheme {
            match_score: 1,
            mismatch_score: -1,
            gap_open: 2,
            gap_extend: 1,
        }
    }

    /// Substitution score for a base pair.
    #[inline]
    pub fn substitution(&self, a: Base, b: Base) -> i32 {
        if a == b {
            self.match_score
        } else {
            self.mismatch_score
        }
    }

    /// Cost of the first base of a gap (open + extend), as a negative
    /// score contribution.
    #[inline]
    pub fn gap_first(&self) -> i32 {
        -(self.gap_open + self.gap_extend)
    }

    /// Cost of each subsequent gap base, negative.
    #[inline]
    pub fn gap_next(&self) -> i32 {
        -self.gap_extend
    }

    /// Upper bound on the score of aligning a query of length `len`
    /// (every base matching).
    #[inline]
    pub fn max_score(&self, len: usize) -> i64 {
        self.match_score as i64 * len as i64
    }
}

impl Default for ScoringScheme {
    fn default() -> ScoringScheme {
        ScoringScheme::blastn()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substitution_scores() {
        let s = ScoringScheme::blastn();
        assert_eq!(s.substitution(Base::A, Base::A), 5);
        assert_eq!(s.substitution(Base::A, Base::G), -4);
    }

    #[test]
    fn gap_costs() {
        let s = ScoringScheme::unit();
        assert_eq!(s.gap_first(), -3);
        assert_eq!(s.gap_next(), -1);
        // A 3-base gap: first + 2 * next = -(2 + 3*1) = -5.
        assert_eq!(s.gap_first() + 2 * s.gap_next(), -5);
    }

    #[test]
    fn max_score_bound() {
        assert_eq!(ScoringScheme::blastn().max_score(100), 500);
        assert_eq!(ScoringScheme::unit().max_score(0), 0);
    }

    #[test]
    fn default_is_blastn() {
        assert_eq!(ScoringScheme::default(), ScoringScheme::blastn());
    }
}
