//! Statistical significance of local alignment scores.
//!
//! A raw Smith–Waterman score is meaningless without knowing what random
//! chance produces: local alignment scores of unrelated sequences follow
//! an extreme-value (Gumbel) distribution, so the expected number of
//! chance alignments scoring ≥ S in an `m × n` comparison is
//!
//! ```text
//! E = K · m · n · exp(−λ·S)
//! ```
//!
//! (Karlin & Altschul, 1990). Two ways to obtain the parameters:
//!
//! * [`ungapped_lambda`] — the exact analytic λ for ungapped scoring,
//!   found by solving `Σᵢⱼ pᵢ pⱼ e^{λ·s(i,j)} = 1`.
//! * [`calibrate_gumbel`] — empirical calibration: align seeded random
//!   sequence pairs and fit the Gumbel by the method of moments. This
//!   also covers *gapped* alignment, where no closed form exists — the
//!   same route BLAST's published parameter tables were produced by.

use rand::rngs::StdRng;
use rand::SeedableRng;

use nucdb_seq::random::random_seq;
use nucdb_seq::Base;

use crate::score::ScoringScheme;
use crate::sw::sw_score;

/// Euler–Mascheroni constant (mean of the standard Gumbel).
const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;

/// Solve for the ungapped Karlin–Altschul λ under base composition
/// `composition` (probabilities of A, C, G, T in 2-bit-code order).
///
/// Returns `None` when no positive solution exists — which happens
/// exactly when the expected pairwise score is non-negative (such a
/// scheme makes arbitrarily long random alignments profitable and local
/// alignment statistics break down).
pub fn ungapped_lambda(scheme: &ScoringScheme, composition: [f64; 4]) -> Option<f64> {
    let pairs = pair_probs(scheme, composition);
    let expected: f64 = pairs.iter().map(|&(pp, s)| pp * s as f64).sum();
    if expected >= 0.0 || scheme.match_score <= 0 {
        return None;
    }

    // f(λ) = Σ pᵢpⱼ e^{λ s} − 1 is convex, f(0) = 0, f'(0) = E[s] < 0,
    // f(λ) → ∞: exactly one positive root. Bracket then bisect.
    let f = |lambda: f64| -> f64 {
        pairs
            .iter()
            .map(|&(pp, s)| pp * (lambda * s as f64).exp())
            .sum::<f64>()
            - 1.0
    };
    let mut hi = 0.5;
    while f(hi) < 0.0 {
        hi *= 2.0;
        if hi > 1e4 {
            return None; // pathological scheme
        }
    }
    let mut lo = 0.0;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if f(mid) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(0.5 * (lo + hi))
}

/// All 16 base-pair terms `(pᵢ·pⱼ, s(i,j))`.
fn pair_probs(scheme: &ScoringScheme, composition: [f64; 4]) -> [(f64, i32); 16] {
    let mut out = [(0.0, 0); 16];
    let mut idx = 0;
    for a in Base::ALL {
        for b in Base::ALL {
            out[idx] = (
                composition[a.code() as usize] * composition[b.code() as usize],
                scheme.substitution(a, b),
            );
            idx += 1;
        }
    }
    out
}

/// Fitted Gumbel parameters for a scoring regime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GumbelFit {
    /// Scale parameter λ.
    pub lambda: f64,
    /// Pre-factor K.
    pub k: f64,
    /// The query/subject lengths the fit was calibrated at.
    pub calibrated_mn: (usize, usize),
}

impl GumbelFit {
    /// Expected number of chance alignments scoring at least `score` in
    /// an `m × n` comparison.
    pub fn evalue(&self, m: usize, n: usize, score: i32) -> f64 {
        self.k * m as f64 * n as f64 * (-self.lambda * score as f64).exp()
    }

    /// Normalised bit score `(λ·S − ln K) / ln 2`.
    pub fn bit_score(&self, score: i32) -> f64 {
        (self.lambda * score as f64 - self.k.ln()) / std::f64::consts::LN_2
    }

    /// The raw score needed for an e-value of `target` at `m × n`.
    pub fn score_for_evalue(&self, m: usize, n: usize, target: f64) -> i32 {
        ((self.k * m as f64 * n as f64 / target).ln() / self.lambda).ceil() as i32
    }
}

/// Calibrate Gumbel parameters empirically: Smith–Waterman scores of
/// `samples` random pairs (lengths `m`, `n`, uniform composition), fitted
/// by the method of moments. Deterministic in `seed`.
///
/// Moments of a Gumbel(μ, 1/λ): mean = μ + γ/λ, var = π²/(6λ²); then
/// `K = exp(λμ) / (m·n)`.
pub fn calibrate_gumbel(
    scheme: &ScoringScheme,
    m: usize,
    n: usize,
    samples: usize,
    seed: u64,
) -> GumbelFit {
    assert!(samples >= 8, "too few samples to fit a distribution");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut scores = Vec::with_capacity(samples);
    for _ in 0..samples {
        let q = random_seq(&mut rng, m, 0.5, 0.0).representative_bases();
        let t = random_seq(&mut rng, n, 0.5, 0.0).representative_bases();
        scores.push(sw_score(&q, &t, scheme) as f64);
    }
    let mean = scores.iter().sum::<f64>() / samples as f64;
    let var = scores.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (samples - 1) as f64;
    let lambda = std::f64::consts::PI / (6.0 * var.max(1e-9)).sqrt();
    let mu = mean - EULER_GAMMA / lambda;
    let k = (lambda * mu).exp() / (m as f64 * n as f64);
    GumbelFit {
        lambda,
        k,
        calibrated_mn: (m, n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_scheme_lambda_is_ln3() {
        // +1/−1 uniform composition: 0.25·e^λ + 0.75·e^{−λ} = 1 ⇒ λ = ln 3.
        let scheme = ScoringScheme {
            match_score: 1,
            mismatch_score: -1,
            gap_open: 0,
            gap_extend: 1,
        };
        let lambda = ungapped_lambda(&scheme, [0.25; 4]).unwrap();
        assert!((lambda - 3f64.ln()).abs() < 1e-9, "λ = {lambda}");
    }

    #[test]
    fn blastn_scheme_lambda_known_range() {
        // +5/−4 uniform: BLAST's published ungapped λ ≈ 0.192.
        let lambda = ungapped_lambda(&ScoringScheme::blastn(), [0.25; 4]).unwrap();
        assert!((0.18..0.21).contains(&lambda), "λ = {lambda}");
    }

    #[test]
    fn positive_expectation_has_no_lambda() {
        // Match +1, mismatch +1: expected score positive.
        let scheme = ScoringScheme {
            match_score: 1,
            mismatch_score: 1,
            gap_open: 1,
            gap_extend: 1,
        };
        assert!(ungapped_lambda(&scheme, [0.25; 4]).is_none());
    }

    #[test]
    fn skewed_composition_shifts_lambda() {
        // GC-rich composition makes matches likelier, so λ must drop
        // (high scores become less surprising).
        let uniform = ungapped_lambda(&ScoringScheme::blastn(), [0.25; 4]).unwrap();
        let skewed = ungapped_lambda(&ScoringScheme::blastn(), [0.05, 0.45, 0.45, 0.05]).unwrap();
        assert!(skewed < uniform, "skewed {skewed} vs uniform {uniform}");
    }

    #[test]
    fn calibration_is_deterministic_and_sane() {
        let scheme = ScoringScheme::blastn();
        let a = calibrate_gumbel(&scheme, 100, 200, 40, 9);
        let b = calibrate_gumbel(&scheme, 100, 200, 40, 9);
        assert_eq!(a, b);
        assert!(a.lambda > 0.0 && a.lambda < 2.0, "λ = {}", a.lambda);
        assert!(a.k > 0.0, "K = {}", a.k);
    }

    #[test]
    fn evalue_monotonic_in_score_and_size() {
        let fit = calibrate_gumbel(&ScoringScheme::blastn(), 100, 200, 40, 10);
        assert!(fit.evalue(100, 200, 50) > fit.evalue(100, 200, 100));
        assert!(fit.evalue(100, 400, 50) > fit.evalue(100, 200, 50));
        // A huge score is essentially never chance.
        assert!(fit.evalue(100, 200, 2_000) < 1e-6);
    }

    #[test]
    fn typical_random_score_has_evalue_near_one_or_more() {
        // The mean of the calibration distribution is by construction a
        // score random chance reaches easily: E-value must not be tiny.
        let scheme = ScoringScheme::blastn();
        let fit = calibrate_gumbel(&scheme, 150, 300, 60, 11);
        // Recompute a typical random score.
        let mut rng = StdRng::seed_from_u64(999);
        let q = random_seq(&mut rng, 150, 0.5, 0.0).representative_bases();
        let t = random_seq(&mut rng, 300, 0.5, 0.0).representative_bases();
        let typical = sw_score(&q, &t, &scheme);
        assert!(
            fit.evalue(150, 300, typical) > 0.05,
            "typical score {typical} got e-value {}",
            fit.evalue(150, 300, typical)
        );
    }

    #[test]
    fn bit_score_and_score_for_evalue_are_consistent() {
        let fit = calibrate_gumbel(&ScoringScheme::blastn(), 100, 100, 40, 12);
        let s = fit.score_for_evalue(100, 100, 1e-3);
        assert!(fit.evalue(100, 100, s) <= 1e-3);
        assert!(fit.evalue(100, 100, s - 2) > 1e-3);
        // Bit scores increase with raw scores.
        assert!(fit.bit_score(100) < fit.bit_score(200));
    }
}
