//! Needleman–Wunsch global alignment with affine gaps.
//!
//! Global alignment is not on the paper's query path (answers are *local*
//! alignments), but the test suites use it to validate mutation models and
//! the examples use it to display end-to-end alignments of homologous
//! fragments.

use nucdb_seq::Base;

use crate::result::{Alignment, CigarBuilder, CigarOp};
use crate::score::ScoringScheme;

const NEG: i32 = i32::MIN / 4;

const H_DIAG: u8 = 1;
const H_FROM_E: u8 = 2;
const H_FROM_F: u8 = 3;
const E_EXTEND: u8 = 1 << 2;
const F_EXTEND: u8 = 1 << 3;

/// Globally align `query` against `target` (both consumed end to end).
pub fn nw_align(query: &[Base], target: &[Base], scheme: &ScoringScheme) -> Alignment {
    let m = query.len();
    let n = target.len();
    let gap_first = scheme.gap_first();
    let gap_next = scheme.gap_next();

    let width = n + 1;
    let mut h = vec![NEG; (m + 1) * width];
    let mut e = vec![NEG; (m + 1) * width];
    let mut f = vec![NEG; (m + 1) * width];
    let mut dir = vec![0u8; (m + 1) * width];

    h[0] = 0;
    // First row: all-gap prefixes in the target (E states).
    for j in 1..=n {
        e[j] = if j == 1 {
            gap_first
        } else {
            e[j - 1] + gap_next
        };
        h[j] = e[j];
        dir[j] = H_FROM_E | if j > 1 { E_EXTEND } else { 0 };
    }
    // First column: all-gap prefixes in the query (F states).
    for i in 1..=m {
        let idx = i * width;
        f[idx] = if i == 1 {
            gap_first
        } else {
            f[idx - width] + gap_next
        };
        h[idx] = f[idx];
        dir[idx] = H_FROM_F | if i > 1 { F_EXTEND } else { 0 };
    }

    for i in 1..=m {
        let row = i * width;
        let prev = row - width;
        for j in 1..=n {
            let mut cell_dir = 0u8;

            let e_open = h[row + j - 1] + gap_first;
            let e_ext = e[row + j - 1] + gap_next;
            e[row + j] = if e_ext > e_open {
                cell_dir |= E_EXTEND;
                e_ext
            } else {
                e_open
            };

            let f_open = h[prev + j] + gap_first;
            let f_ext = f[prev + j] + gap_next;
            f[row + j] = if f_ext > f_open {
                cell_dir |= F_EXTEND;
                f_ext
            } else {
                f_open
            };

            let sub = h[prev + j - 1] + scheme.substitution(query[i - 1], target[j - 1]);
            let (score, source) = [
                (sub, H_DIAG),
                (e[row + j], H_FROM_E),
                (f[row + j], H_FROM_F),
            ]
            .into_iter()
            .max_by_key(|&(s, _)| s)
            .unwrap();
            h[row + j] = score;
            dir[row + j] = cell_dir | source;
        }
    }

    // Traceback from the bottom-right corner to the origin.
    #[derive(Clone, Copy)]
    enum State {
        H,
        E,
        F,
    }
    let mut i = m;
    let mut j = n;
    let mut state = State::H;
    let mut cigar = CigarBuilder::new();
    while i > 0 || j > 0 {
        let d = dir[i * width + j];
        match state {
            State::H => match d & 0b11 {
                H_DIAG => {
                    if query[i - 1] == target[j - 1] {
                        cigar.push(CigarOp::Match(1));
                    } else {
                        cigar.push(CigarOp::Mismatch(1));
                    }
                    i -= 1;
                    j -= 1;
                }
                H_FROM_E => state = State::E,
                _ => state = State::F,
            },
            State::E => {
                cigar.push(CigarOp::Delete(1));
                let extended = d & E_EXTEND != 0;
                j -= 1;
                if !extended {
                    state = State::H;
                }
            }
            State::F => {
                cigar.push(CigarOp::Insert(1));
                let extended = d & F_EXTEND != 0;
                i -= 1;
                if !extended {
                    state = State::H;
                }
            }
        }
    }

    let alignment = Alignment {
        score: h[m * width + n],
        query_range: 0..m,
        target_range: 0..n,
        cigar: cigar.into_reversed(),
    };
    debug_assert!(alignment.is_consistent());
    alignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sw::sw_score;
    use nucdb_seq::DnaSeq;

    fn bases(ascii: &[u8]) -> Vec<Base> {
        DnaSeq::from_ascii(ascii).unwrap().representative_bases()
    }

    fn unit() -> ScoringScheme {
        ScoringScheme::unit()
    }

    #[test]
    fn identical_sequences() {
        let s = bases(b"ACGTACGT");
        let a = nw_align(&s, &s, &unit());
        assert_eq!(a.score, 8);
        assert_eq!(a.cigar_string(), "8=");
    }

    #[test]
    fn empty_against_nonempty_is_all_gaps() {
        let s = bases(b"ACGT");
        let a = nw_align(&[], &s, &unit());
        assert_eq!(a.cigar_string(), "4D");
        // One gap of length 4: -(2 + 4*1) = -6.
        assert_eq!(a.score, -6);
        let b = nw_align(&s, &[], &unit());
        assert_eq!(b.cigar_string(), "4I");
        assert_eq!(b.score, -6);
    }

    #[test]
    fn both_empty() {
        let a = nw_align(&[], &[], &unit());
        assert_eq!(a.score, 0);
        assert!(a.cigar.is_empty());
    }

    #[test]
    fn single_substitution() {
        let a = nw_align(&bases(b"ACGT"), &bases(b"AGGT"), &unit());
        assert_eq!(a.score, 2);
        assert_eq!(a.cigar_string(), "1=1X2=");
    }

    #[test]
    fn global_must_consume_everything() {
        // Local would skip the mismatching prefix; global cannot.
        let q = bases(b"TTTTACGT");
        let t = bases(b"ACGT");
        let a = nw_align(&q, &t, &unit());
        assert!(a.is_consistent());
        assert_eq!(a.query_range, 0..8);
        assert_eq!(a.target_range, 0..4);
    }

    #[test]
    fn global_score_never_exceeds_local() {
        let q = bases(b"GGGACGTACGTAAA");
        let t = bases(b"TTACGTACGTCC");
        for scheme in [ScoringScheme::unit(), ScoringScheme::blastn()] {
            let global = nw_align(&q, &t, &scheme).score;
            let local = sw_score(&q, &t, &scheme);
            assert!(global <= local, "global {global} > local {local}");
        }
    }

    #[test]
    fn affine_prefers_single_gap() {
        let scheme = ScoringScheme {
            match_score: 2,
            mismatch_score: -3,
            gap_open: 5,
            gap_extend: 1,
        };
        let q = bases(b"AAAATTTT");
        let t = bases(b"AAAACCTTTT");
        let a = nw_align(&q, &t, &scheme);
        assert_eq!(a.cigar_string(), "4=2D4=");
        assert_eq!(a.score, 8 * 2 - (5 + 2));
    }
}
