//! A BLAST1-style exhaustive scanner: exact word hits extended ungapped
//! with an X-dropoff.
//!
//! The second exhaustive baseline. For nucleotides, BLAST (1990) seeds on
//! exact matches of length `w` (default 11) and extends each seed in both
//! directions without gaps, abandoning the extension when the running
//! score drops more than `x_drop` below the best seen. The record's score
//! is its best HSP (high-scoring segment pair) score.

use nucdb_seq::kmer::KmerIter;
use nucdb_seq::Base;

use crate::result::ScanHit;
use crate::score::ScoringScheme;
use crate::words::WordTable;

/// Parameters of the BLAST-style scanner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlastParams {
    /// Seed word length; 11 is the classic BLASTN setting.
    pub word_len: usize,
    /// Extension abandons when the running score falls this far below the
    /// best score on the current extension.
    pub x_drop: i32,
}

impl Default for BlastParams {
    fn default() -> BlastParams {
        BlastParams {
            word_len: 11,
            x_drop: 40,
        }
    }
}

/// Score one record against a prepared query word table
/// (built from `query` with `params.word_len`).
pub fn blast_score(
    table: &WordTable,
    query: &[Base],
    target: &[Base],
    params: &BlastParams,
    scheme: &ScoringScheme,
) -> i32 {
    debug_assert_eq!(table.k(), params.word_len);
    let m = query.len();
    let n = target.len();
    let w = params.word_len;
    if m < w || n < w {
        return 0;
    }

    // For each diagonal, the target column up to which an extension has
    // already covered it — a later seed inside that region would rediscover
    // the same HSP. Diagonal index = j - i + (m - 1).
    let mut covered_to = vec![0u32; m + n - 1];
    let mut best = 0i32;

    for (j, code) in KmerIter::new(target, w) {
        for &qi in table.lookup(code) {
            let i = qi as usize;
            let diag = j + (m - 1) - i;
            if (j as u32) < covered_to[diag] {
                continue;
            }

            // Seed: an exact w-mer match.
            let seed = w as i32 * scheme.match_score;

            // Extend right from (i + w, j + w).
            let mut cur = seed;
            let mut best_here = seed;
            let mut right = 0usize; // bases beyond the seed on the right
            let mut best_right = 0usize;
            while i + w + right < m && j + w + right < n {
                cur += scheme.substitution(query[i + w + right], target[j + w + right]);
                right += 1;
                if cur > best_here {
                    best_here = cur;
                    best_right = right;
                }
                if cur <= best_here - params.x_drop {
                    break;
                }
            }

            // Extend left from (i - 1, j - 1).
            let mut cur = best_here;
            let mut left = 0usize;
            while left < i && left < j {
                cur += scheme.substitution(query[i - 1 - left], target[j - 1 - left]);
                left += 1;
                if cur > best_here {
                    best_here = cur;
                }
                if cur <= best_here - params.x_drop {
                    break;
                }
            }

            covered_to[diag] = (j + w + best_right) as u32;
            best = best.max(best_here);
        }
    }
    best
}

/// Scan a whole collection: best-HSP score for every record, positive
/// scores only, sorted by descending score (ties by ascending id).
pub fn blast_scan<'a, I>(
    query: &[Base],
    targets: I,
    params: &BlastParams,
    scheme: &ScoringScheme,
) -> Vec<ScanHit>
where
    I: IntoIterator<Item = &'a [Base]>,
{
    let table = WordTable::build(query, params.word_len);
    let mut hits: Vec<ScanHit> = targets
        .into_iter()
        .enumerate()
        .filter_map(|(id, target)| {
            let score = blast_score(&table, query, target, params, scheme);
            (score > 0).then_some(ScanHit {
                id: id as u32,
                score,
            })
        })
        .collect();
    hits.sort_by(|a, b| b.score.cmp(&a.score).then(a.id.cmp(&b.id)));
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use nucdb_seq::DnaSeq;

    fn bases(ascii: &[u8]) -> Vec<Base> {
        DnaSeq::from_ascii(ascii).unwrap().representative_bases()
    }

    fn scheme() -> ScoringScheme {
        ScoringScheme::blastn()
    }

    #[test]
    fn exact_copy_scores_full_length() {
        let q = bases(b"ACGTAGCTAGCTGGATCCAGGT");
        let table = WordTable::build(&q, 11);
        let score = blast_score(&table, &q, &q, &BlastParams::default(), &scheme());
        assert_eq!(score, q.len() as i32 * scheme().match_score);
    }

    #[test]
    fn embedded_copy_found() {
        let core = b"ACGTAGCTAGCTGGATCCAGGT";
        let mut t = b"TTCCTTCCTTCC".to_vec();
        t.extend_from_slice(core);
        t.extend_from_slice(b"GAGAGAGAGA");
        let q = bases(core);
        let table = WordTable::build(&q, 11);
        let score = blast_score(&table, &q, &bases(&t), &BlastParams::default(), &scheme());
        assert_eq!(score, core.len() as i32 * scheme().match_score);
    }

    #[test]
    fn no_word_match_scores_zero() {
        // Query and target share stretches shorter than the word length.
        let q = bases(b"AAAAAAAAAACCCCCCCCCC");
        let t = bases(b"AAAAAAAAGGAAAAAAAAGG"); // runs of 8 < w=11
        let table = WordTable::build(&q, 11);
        assert_eq!(
            blast_score(&table, &q, &t, &BlastParams::default(), &scheme()),
            0
        );
    }

    #[test]
    fn extension_crosses_single_mismatch() {
        // Two 12-base exact runs separated by one mismatch: the ungapped
        // extension should bridge the mismatch and score the whole 25-mer.
        let q = bases(b"ACGTAGCTAGCTAGGATCCAGGTAC");
        let mut t_ascii = q.iter().map(|b| b.to_ascii()).collect::<Vec<u8>>();
        t_ascii[12] = b'C'; // single substitution mid-sequence (was A)
        let t = bases(&t_ascii);
        let table = WordTable::build(&q, 11);
        let score = blast_score(&table, &q, &t, &BlastParams::default(), &scheme());
        let s = scheme();
        assert_eq!(score, 24 * s.match_score + s.mismatch_score);
    }

    #[test]
    fn x_drop_stops_extension_into_noise() {
        // A 12-base shared core inside mutually hostile flanks: the score
        // must reflect the core only, not drown in the flanks.
        let mut q_ascii = vec![b'A'; 20];
        q_ascii.extend_from_slice(b"GCGCGGATCCGC");
        q_ascii.extend(vec![b'A'; 20]);
        let mut t_ascii = vec![b'T'; 20];
        t_ascii.extend_from_slice(b"GCGCGGATCCGC");
        t_ascii.extend(vec![b'T'; 20]);
        let q = bases(&q_ascii);
        let t = bases(&t_ascii);
        let table = WordTable::build(&q, 11);
        let score = blast_score(&table, &q, &t, &BlastParams::default(), &scheme());
        assert_eq!(score, 12 * scheme().match_score);
    }

    #[test]
    fn scan_ranks_by_similarity() {
        let core = b"ACGTAGCTAGCTGGATCCAGGTTTACGGAT";
        let mut related = b"CCGGCCGGCC".to_vec();
        related.extend_from_slice(core);
        let half = &core[..16];

        let records: Vec<Vec<Base>> = vec![
            bases(b"GAGAGAGAGAGAGAGAGAGAGAGAGAGAGA"),
            bases(half),
            bases(&related),
        ];
        let q = bases(core);
        let hits = blast_scan(
            &q,
            records.iter().map(Vec::as_slice),
            &BlastParams::default(),
            &scheme(),
        );
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].id, 2);
        assert_eq!(hits[1].id, 1);
        assert!(hits[0].score > hits[1].score);
    }

    #[test]
    fn shorter_word_finds_weaker_seeds() {
        // With w=11 a 9-base shared run is invisible; with w=8 it seeds.
        let q = bases(b"TTTTTTTTTTGGATCCGGATTTTTTTTTT");
        let t = bases(b"CCCCCCCCCCGGATCCGGACCCCCCCCCC");
        let t11 = WordTable::build(&q, 11);
        assert_eq!(
            blast_score(&t11, &q, &t, &BlastParams::default(), &scheme()),
            0
        );
        let params8 = BlastParams {
            word_len: 8,
            ..BlastParams::default()
        };
        let t8 = WordTable::build(&q, 8);
        assert_eq!(
            blast_score(&t8, &q, &t, &params8, &scheme()),
            9 * scheme().match_score
        );
    }
}
