//! # nucdb-align
//!
//! The alignment substrate of the partitioned-search system, and the
//! exhaustive baselines the paper compares against.
//!
//! * [`sw`] — Smith–Waterman local alignment with affine gaps (Gotoh),
//!   both a linear-memory score-only form (used for exhaustive ground
//!   truth) and a full-traceback form (used to report final alignments).
//! * [`banded`] — banded local alignment around a known diagonal: the
//!   cheap "local alignment on likely answers" that fine search runs,
//!   seeded with the best diagonal found by coarse ranking.
//! * [`nw`] — Needleman–Wunsch global alignment (used in tests and by
//!   callers that need end-to-end alignment of two fragments).
//! * [`fasta_heur`] / [`blast_heur`] — from-scratch FASTA-style (k-tuple
//!   diagonal method) and BLAST1-style (word hit + ungapped X-drop
//!   extension) scanners. They are *exhaustive*: they touch every record,
//!   exactly the behaviour the paper's partitioned search avoids.
//!
//! All alignment routines work over `&[Base]` — the representative-base
//! view that the packed sequence store decodes to.

#![warn(missing_docs)]

pub mod banded;
pub mod blast_heur;
pub mod evalue;
pub mod fasta_heur;
pub mod iupac;
pub mod nw;
pub mod result;
pub mod score;
pub mod sw;
pub mod words;

pub use banded::{band_for_diagonal, banded_sw_score};
pub use blast_heur::{blast_scan, blast_score, BlastParams};
pub use evalue::{calibrate_gumbel, ungapped_lambda, GumbelFit};
pub use fasta_heur::{fasta_scan, fasta_score, FastaParams};
pub use iupac::{iupac_substitution, sw_score_iupac};
pub use nw::nw_align;
pub use result::{Alignment, CigarOp, ScanHit};
pub use score::ScoringScheme;
pub use sw::{sw_align, sw_score};
pub use words::WordTable;
