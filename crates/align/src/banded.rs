//! Banded Smith–Waterman: local alignment restricted to a diagonal band.
//!
//! Partitioned search's fine stage must be cheap: the coarse stage has
//! already located the promising *diagonal* (query offset minus record
//! offset) for each candidate, so fine search only explores a band of
//! width `2·half_width + 1` around it — O(band × query) work instead of
//! O(query × record). The FASTA-style scanner uses the same routine for
//! its `opt` rescoring step.

use nucdb_seq::Base;

use crate::score::ScoringScheme;

const NEG: i32 = i32::MIN / 4;

/// The alignment diagonal of a hit pairing query position `q_pos` with
/// target position `t_pos` (the quantity the band is centred on).
#[inline]
pub fn band_for_diagonal(q_pos: usize, t_pos: usize) -> i64 {
    t_pos as i64 - q_pos as i64
}

/// Local alignment score within the band `|(j - i) - center| ≤ half_width`
/// (in 0-based positions `i` of `query` and `j` of `target`).
///
/// The result is a lower bound on the unbanded [`crate::sw_score`], equal
/// to it whenever the optimal local alignment stays inside the band.
pub fn banded_sw_score(
    query: &[Base],
    target: &[Base],
    scheme: &ScoringScheme,
    center: i64,
    half_width: usize,
) -> i32 {
    let m = query.len();
    let n = target.len();
    if m == 0 || n == 0 {
        return 0;
    }
    let gap_first = scheme.gap_first();
    let gap_next = scheme.gap_next();

    let width = 2 * half_width + 1;
    // Band-relative indexing: in row i, slot b covers target column
    // j = i + center - half_width + b. The diagonal neighbour (i-1, j-1)
    // sits at the same slot of the previous row, "up" at slot b+1,
    // "left" at slot b-1.
    let slot_to_col = |i: usize, b: usize| i as i64 + center - half_width as i64 + b as i64;

    let mut h_prev = vec![NEG; width + 2];
    let mut f_prev = vec![NEG; width + 2];
    let mut h_cur = vec![NEG; width + 2];
    let mut f_cur = vec![NEG; width + 2];

    // Row 0: empty-query prefixes; any in-band, in-range column may start
    // a local alignment at score 0. (Slots are offset by one so that b-1
    // and b+1 never go out of bounds.)
    for b in 0..width {
        let j = slot_to_col(0, b);
        if (0..=n as i64).contains(&j) {
            h_prev[b + 1] = 0;
        }
    }

    let mut best = 0i32;
    for i in 1..=m {
        let q = query[i - 1];
        h_cur[0] = NEG;
        f_cur[0] = NEG;
        h_cur[width + 1] = NEG;
        let mut e = NEG;
        for b in 0..width {
            let j = slot_to_col(i, b);
            if j < 1 || j > n as i64 {
                h_cur[b + 1] = if j == 0 { 0 } else { NEG };
                f_cur[b + 1] = NEG;
                // E resets outside the valid region.
                e = NEG;
                continue;
            }
            let j = j as usize;
            // Left neighbour is the current row's previous slot.
            e = (h_cur[b] + gap_first).max(e + gap_next);
            // Up neighbour is the previous row's next slot.
            let f = (h_prev[b + 2] + gap_first).max(f_prev[b + 2] + gap_next);
            f_cur[b + 1] = f;
            let sub = h_prev[b + 1] + scheme.substitution(q, target[j - 1]);
            let score = sub.max(e).max(f).max(0);
            h_cur[b + 1] = score;
            if score > best {
                best = score;
            }
        }
        std::mem::swap(&mut h_prev, &mut h_cur);
        std::mem::swap(&mut f_prev, &mut f_cur);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sw::sw_score;
    use nucdb_seq::DnaSeq;

    fn bases(ascii: &[u8]) -> Vec<Base> {
        DnaSeq::from_ascii(ascii).unwrap().representative_bases()
    }

    fn unit() -> ScoringScheme {
        ScoringScheme::unit()
    }

    #[test]
    fn wide_band_matches_full_sw() {
        let cases: &[(&[u8], &[u8])] = &[
            (b"ACGTACGTAA", b"ACGTTACGTA"),
            (b"AAAAACCCCC", b"AAAAAGGCCCCC"),
            (b"GATTACA", b"GCATGCT"),
            (b"ACACACACAC", b"CACACACACA"),
        ];
        for (q, t) in cases {
            let q = bases(q);
            let t = bases(t);
            let full = sw_score(&q, &t, &unit());
            // A band wide enough to cover the whole matrix from any center.
            let banded = banded_sw_score(&q, &t, &unit(), 0, q.len() + t.len());
            assert_eq!(banded, full, "q={q:?}");
        }
    }

    #[test]
    fn band_centred_on_true_diagonal_finds_alignment() {
        // Shared core at query offset 8, target offset 6 → diagonal -2.
        let q = bases(b"TTTTTTTTACGTAGCTAGCTGGGG");
        let t = bases(b"CCCCCCACGTAGCTAGCTAAAAAAAA");
        let diag = band_for_diagonal(8, 6);
        assert_eq!(diag, -2);
        let s = banded_sw_score(&q, &t, &unit(), diag, 4);
        assert_eq!(s, 12); // the 12-base core matches exactly
    }

    #[test]
    fn band_off_diagonal_misses_alignment() {
        let q = bases(b"TTTTTTTTACGTAGCTAGCTGGGG");
        let t = bases(b"CCCCCCACGTAGCTAGCTAAAAAAAA");
        // Center far from the true diagonal (-2) with a narrow band.
        let s = banded_sw_score(&q, &t, &unit(), 15, 2);
        assert!(s < 12, "off-band score {s}");
    }

    #[test]
    fn banded_never_exceeds_full() {
        let q = bases(b"ACGGTTCAGGATCCGATTACAGT");
        let t = bases(b"GGATCCGTTTACAGTACGGTTCA");
        let full = sw_score(&q, &t, &ScoringScheme::blastn());
        for center in -10i64..=10 {
            for half_width in [0usize, 1, 3, 8] {
                let banded = banded_sw_score(&q, &t, &ScoringScheme::blastn(), center, half_width);
                assert!(
                    banded <= full,
                    "center {center} hw {half_width}: banded {banded} > full {full}"
                );
            }
        }
    }

    #[test]
    fn zero_width_band_is_single_diagonal() {
        // half_width 0 on diagonal 0 scores the main-diagonal run only.
        let q = bases(b"ACGTACGT");
        let t = bases(b"ACGTTCGT");
        // Diagonal scores: 4 matches, one mismatch, 3 matches → best
        // cumulative local score 4 - 1 + 3 = 6.
        let s = banded_sw_score(&q, &t, &unit(), 0, 0);
        assert_eq!(s, 6);
    }

    #[test]
    fn empty_inputs_score_zero() {
        let s = bases(b"ACGT");
        assert_eq!(banded_sw_score(&[], &s, &unit(), 0, 5), 0);
        assert_eq!(banded_sw_score(&s, &[], &unit(), 0, 5), 0);
    }

    #[test]
    fn gap_within_band_is_used() {
        // 2-base deletion: needs band wide enough to shift diagonals.
        let q = bases(b"AAAAACCCCC");
        let t = bases(b"AAAAAGGCCCCC");
        let full = sw_score(&q, &t, &unit());
        let banded = banded_sw_score(&q, &t, &unit(), 0, 3);
        assert_eq!(banded, full);
    }
}
