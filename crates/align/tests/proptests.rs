//! Property tests for the alignment substrate: invariants that hold for
//! every input under every reasonable scheme.

use nucdb_align::{
    banded_sw_score, blast_score, fasta_score, nw_align, sw_align, sw_score, sw_score_iupac,
    BlastParams, FastaParams, ScoringScheme, WordTable,
};
use nucdb_seq::{Base, DnaSeq};
use proptest::prelude::*;

fn dna(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(prop::sample::select(b"ACGT".to_vec()), len)
}

fn bases(ascii: &[u8]) -> Vec<Base> {
    DnaSeq::from_ascii(ascii).unwrap().representative_bases()
}

fn schemes() -> [ScoringScheme; 3] {
    [
        ScoringScheme::unit(),
        ScoringScheme::blastn(),
        ScoringScheme {
            match_score: 2,
            mismatch_score: -7,
            gap_open: 6,
            gap_extend: 1,
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sw_score_nonnegative_and_bounded(q in dna(0..60), t in dna(0..60)) {
        for scheme in schemes() {
            let s = sw_score(&bases(&q), &bases(&t), &scheme);
            prop_assert!(s >= 0);
            let bound = scheme.max_score(q.len().min(t.len()));
            prop_assert!(s as i64 <= bound, "score {s} exceeds bound {bound}");
        }
    }

    #[test]
    fn sw_score_is_symmetric(q in dna(0..50), t in dna(0..50)) {
        for scheme in schemes() {
            prop_assert_eq!(
                sw_score(&bases(&q), &bases(&t), &scheme),
                sw_score(&bases(&t), &bases(&q), &scheme)
            );
        }
    }

    #[test]
    fn sw_align_agrees_with_sw_score(q in dna(1..50), t in dna(1..50)) {
        for scheme in schemes() {
            let score = sw_score(&bases(&q), &bases(&t), &scheme);
            let align = sw_align(&bases(&q), &bases(&t), &scheme);
            match align {
                None => prop_assert_eq!(score, 0),
                Some(a) => {
                    prop_assert_eq!(a.score, score);
                    prop_assert!(a.is_consistent());
                    prop_assert!(a.query_range.end <= q.len());
                    prop_assert!(a.target_range.end <= t.len());
                }
            }
        }
    }

    #[test]
    fn self_alignment_is_perfect(q in dna(1..80)) {
        for scheme in schemes() {
            let b = bases(&q);
            prop_assert_eq!(
                sw_score(&b, &b, &scheme) as i64,
                scheme.max_score(q.len())
            );
        }
    }

    #[test]
    fn extending_target_never_lowers_local_score(
        q in dna(1..40),
        t in dna(1..40),
        extra in dna(0..30),
    ) {
        // A local alignment within t is still available within t+extra.
        let scheme = ScoringScheme::blastn();
        let qb = bases(&q);
        let short = sw_score(&qb, &bases(&t), &scheme);
        let mut longer = t.clone();
        longer.extend_from_slice(&extra);
        let long = sw_score(&qb, &bases(&longer), &scheme);
        prop_assert!(long >= short, "extension lowered score {short} -> {long}");
    }

    #[test]
    fn banded_below_full_and_exact_when_wide(
        q in dna(1..40),
        t in dna(1..40),
        center in -15i64..15,
        half_width in 0usize..10,
    ) {
        let scheme = ScoringScheme::blastn();
        let qb = bases(&q);
        let tb = bases(&t);
        let full = sw_score(&qb, &tb, &scheme);
        let banded = banded_sw_score(&qb, &tb, &scheme, center, half_width);
        prop_assert!((0..=full).contains(&banded));
        let wide = banded_sw_score(&qb, &tb, &scheme, 0, q.len() + t.len());
        prop_assert_eq!(wide, full);
    }

    #[test]
    fn global_score_at_most_local(q in dna(0..40), t in dna(0..40)) {
        for scheme in schemes() {
            let qb = bases(&q);
            let tb = bases(&t);
            let global = nw_align(&qb, &tb, &scheme);
            prop_assert!(global.is_consistent());
            prop_assert!(global.score <= sw_score(&qb, &tb, &scheme));
        }
    }

    #[test]
    fn heuristics_bounded_by_sw(q in dna(12..60), t in dna(12..60)) {
        let scheme = ScoringScheme::blastn();
        let qb = bases(&q);
        let tb = bases(&t);
        let sw = sw_score(&qb, &tb, &scheme);
        let ft = WordTable::build(&qb, 6);
        let fasta = fasta_score(&ft, &qb, &tb, &FastaParams::default(), &scheme);
        prop_assert!(fasta <= sw, "fasta {fasta} > sw {sw}");
        let bt = WordTable::build(&qb, 11);
        let blast = blast_score(&bt, &qb, &tb, &BlastParams::default(), &scheme);
        prop_assert!(blast <= sw, "blast {blast} > sw {sw}");
    }

    #[test]
    fn iupac_matches_classic_on_plain_bases(q in dna(0..50), t in dna(0..50)) {
        let qs = DnaSeq::from_ascii(&q).unwrap();
        let ts = DnaSeq::from_ascii(&t).unwrap();
        for scheme in schemes() {
            prop_assert_eq!(
                sw_score_iupac(&qs, &ts, &scheme),
                sw_score(&bases(&q), &bases(&t), &scheme)
            );
        }
    }

    #[test]
    fn planted_substring_scores_at_least_its_length(
        flank_a in dna(0..30),
        core in dna(8..40),
        flank_b in dna(0..30),
    ) {
        // Embedding an exact copy of the query guarantees a full-score
        // local alignment regardless of the flanks.
        let scheme = ScoringScheme::blastn();
        let mut target = flank_a.clone();
        target.extend_from_slice(&core);
        target.extend_from_slice(&flank_b);
        let score = sw_score(&bases(&core), &bases(&target), &scheme);
        prop_assert!(score as i64 >= scheme.max_score(core.len()));
    }
}
