//! Live ingestion: the segmented, LSM-style database.
//!
//! The paper's index is built once and searched forever. This module
//! turns [`Database`] into an engine over an *ordered set of segments*
//! so records can be inserted while queries run:
//!
//! * [`SegmentedIndex`] / [`SegmentedStore`] — read-side composites
//!   implementing the same [`PostingsSource`] / [`RecordSource`] traits
//!   as a monolithic index/store. Each part covers a contiguous range of
//!   global record ids; postings are visited part by part in ascending
//!   base order with record ids remapped at the boundary, so the visit
//!   sequence — and therefore every coarse score, candidate cut, and
//!   final ranking — is bit-identical to a joint single-index build.
//! * [`LiveDatabase`] — the writer: an in-memory write buffer (memtable)
//!   of index+store runs, flushed to immutable on-disk segments
//!   (`NUCIDX03/04` + `NUCSTO02`, both written atomically) tracked by the
//!   crash-safe [`Manifest`]. Queries go through an epoch-swapped
//!   [`Database`] snapshot that is rebuilt after every mutation; readers
//!   holding an old snapshot keep their segment files alive through
//!   `Arc`s and are never torn.
//! * Size-tiered compaction ([`LiveDatabase::compact_once`]) — merges
//!   adjacent similar-sized segments with
//!   [`merge_indexes`](nucdb_index::merge_indexes) as the kernel,
//!   deleting superseded files only after the new manifest is durable.
//!   Merging only ever touches *adjacent* segments, so global record ids
//!   (positional) never change.
//!
//! Crash safety is inherited from two primitives: every file is written
//! via `AtomicFile` (temp + fsync + rename), and the manifest names
//! exactly the segment files that are live. Kill -9 at any point leaves
//! either the old manifest (old files still present) or the new one;
//! unreferenced files are orphans that [`LiveDatabase::open`] deletes.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use nucdb_index::manifest::{segment_index_file, segment_store_file, Manifest, SegmentMeta};
use nucdb_index::{
    load_index, merge_indexes, write_index, CompressedIndex, FetchStats, Granularity, IndexBuilder,
    IndexError, IndexParams, OnDiskIndex, Posting, PostingsList, PostingsVisitor,
};
use nucdb_obs::{Counter, Forensics, Gauge, MetricsRegistry, TraceSink};
use nucdb_seq::{Base, DnaSeq, SeqError};

use crate::coarse::PostingsSource;
use crate::engine::{io_err, Database, DbConfig, IndexVariant};
use crate::explain::SegmentExplain;
use crate::store::{OnDiskStore, RecordSource, SequenceStore, StorageMode, StoreVariant};

// ---------------------------------------------------------------------------
// Read side: segmented index and store
// ---------------------------------------------------------------------------

/// One index part of a [`SegmentedIndex`]: a memtable run (in memory) or
/// an immutable on-disk segment. Parts are shared via `Arc` so an old
/// query snapshot and the current one can reference the same bytes.
#[derive(Clone)]
pub enum SegmentIndexPart {
    /// In-memory part (a memtable run, or a test-built index).
    Memory(Arc<CompressedIndex>),
    /// Immutable on-disk segment index.
    Disk(Arc<OnDiskIndex>),
}

impl SegmentIndexPart {
    fn num_records(&self) -> u32 {
        match self {
            SegmentIndexPart::Memory(i) => i.num_records(),
            SegmentIndexPart::Disk(i) => i.num_records(),
        }
    }

    fn record_lens(&self) -> &[u32] {
        match self {
            SegmentIndexPart::Memory(i) => i.record_lens(),
            SegmentIndexPart::Disk(i) => i.record_lens(),
        }
    }

    fn params(&self) -> &IndexParams {
        match self {
            SegmentIndexPart::Memory(i) => i.params(),
            SegmentIndexPart::Disk(i) => i.params(),
        }
    }

    fn postings(&self, code: u64) -> Result<Option<PostingsList>, IndexError> {
        match self {
            SegmentIndexPart::Memory(i) => i.postings(code),
            SegmentIndexPart::Disk(i) => i.postings(code),
        }
    }

    fn counts(&self, code: u64) -> Result<Option<Vec<(u32, u32)>>, IndexError> {
        match self {
            SegmentIndexPart::Memory(i) => i.counts(code),
            SegmentIndexPart::Disk(i) => i.counts(code),
        }
    }

    fn postings_with(
        &self,
        code: u64,
        io_buf: &mut Vec<u8>,
        visit: &mut dyn FnMut(u32, u32),
    ) -> Result<Option<u32>, IndexError> {
        match self {
            SegmentIndexPart::Memory(i) => i.postings_with(code, visit),
            SegmentIndexPart::Disk(i) => i.postings_with(code, io_buf, visit),
        }
    }

    fn counts_with(
        &self,
        code: u64,
        io_buf: &mut Vec<u8>,
        visit: &mut dyn FnMut(u32, u32),
    ) -> Result<Option<u32>, IndexError> {
        match self {
            SegmentIndexPart::Memory(i) => i.counts_with(code, visit),
            SegmentIndexPart::Disk(i) => i.counts_with(code, io_buf, visit),
        }
    }

    fn list_max_count(&self, code: u64) -> Option<u32> {
        match self {
            SegmentIndexPart::Memory(i) => i.list_max_count(code),
            SegmentIndexPart::Disk(i) => i.list_max_count(code),
        }
    }

    fn postings_stream(
        &self,
        code: u64,
        io_buf: &mut Vec<u8>,
        visitor: &mut dyn PostingsVisitor,
    ) -> Result<Option<FetchStats>, IndexError> {
        match self {
            SegmentIndexPart::Memory(i) => i.postings_stream(code, visitor),
            SegmentIndexPart::Disk(i) => i.postings_stream(code, io_buf, visitor),
        }
    }

    fn counts_stream(
        &self,
        code: u64,
        io_buf: &mut Vec<u8>,
        visitor: &mut dyn PostingsVisitor,
    ) -> Result<Option<FetchStats>, IndexError> {
        match self {
            SegmentIndexPart::Memory(i) => i.counts_stream(code, visitor),
            SegmentIndexPart::Disk(i) => i.counts_stream(code, io_buf, visitor),
        }
    }
}

struct IndexPart {
    /// First global record id this part covers.
    base: u32,
    /// Human-readable name for explain plans (`seg-000003`, `memtable`).
    label: String,
    inner: SegmentIndexPart,
}

/// A [`PostingsSource`] over an ordered set of index parts with disjoint,
/// contiguous record-id ranges. Postings of a code are visited part by
/// part in ascending base order with each part's record ids shifted by
/// its base — exactly the sequence a joint single-index build would
/// produce, so coarse search over a segmented index is bit-identical to
/// coarse search over the merged index.
pub struct SegmentedIndex {
    parts: Vec<IndexPart>,
    /// Concatenated per-record lengths across all parts.
    record_lens: Vec<u32>,
    params: IndexParams,
}

impl SegmentedIndex {
    /// Compose parts (in global record-id order) into one index view.
    /// All parts must agree on interval parameters and granularity and
    /// be unstopped (live directories never use stopping; a stopped
    /// segment would break merge identity).
    pub fn new(parts: Vec<(String, SegmentIndexPart)>) -> Result<SegmentedIndex, IndexError> {
        let Some((_, first)) = parts.first() else {
            return Err(IndexError::Unsupported(
                "a segmented index needs at least one part",
            ));
        };
        let params = first.params().clone();
        if params.stopping.is_some() {
            return Err(IndexError::Unsupported(
                "segmented indexes must be unstopped",
            ));
        }
        let mut record_lens = Vec::new();
        let mut assembled = Vec::with_capacity(parts.len());
        let mut base = 0u64;
        for (label, part) in parts {
            let p = part.params();
            if p.k != params.k
                || p.stride != params.stride
                || p.granularity != params.granularity
                || p.stopping.is_some()
            {
                return Err(IndexError::Unsupported(
                    "segment parts disagree on index parameters",
                ));
            }
            record_lens.extend_from_slice(part.record_lens());
            assembled.push(IndexPart {
                base: u32::try_from(base)
                    .map_err(|_| IndexError::OutOfRange("segmented index exceeds u32 records"))?,
                label,
                inner: part,
            });
            base += u64::from(assembled.last().unwrap().inner.num_records());
        }
        if base > u64::from(u32::MAX) {
            return Err(IndexError::OutOfRange(
                "segmented index exceeds u32 records",
            ));
        }
        Ok(SegmentedIndex {
            parts: assembled,
            record_lens,
            params,
        })
    }

    /// Number of parts.
    pub fn num_parts(&self) -> usize {
        self.parts.len()
    }

    /// Explain-plan rows: one per part, in record-id order.
    pub fn explain_rows(&self) -> Vec<SegmentExplain> {
        self.parts
            .iter()
            .map(|p| SegmentExplain {
                label: p.label.clone(),
                base: p.base,
                records: p.inner.num_records(),
            })
            .collect()
    }
}

/// Visitor adapter shifting a part's local record ids to global ids
/// before forwarding, including the block-skip consultation — the skip
/// decision is made by the real visitor on global ids, so it is exactly
/// the decision it would make on the joint index.
struct ShiftVisitor<'a> {
    base: u32,
    inner: &'a mut dyn PostingsVisitor,
}

impl PostingsVisitor for ShiftVisitor<'_> {
    fn visit(&mut self, record: u32, value: u32) {
        self.inner.visit(record + self.base, value);
    }

    fn skip_block(&mut self, lo: u32, hi: u32) -> bool {
        self.inner.skip_block(lo + self.base, hi + self.base)
    }
}

impl PostingsSource for SegmentedIndex {
    fn num_records(&self) -> u32 {
        self.record_lens.len() as u32
    }

    fn record_lens(&self) -> &[u32] {
        &self.record_lens
    }

    fn index_params(&self) -> &IndexParams {
        &self.params
    }

    fn fetch(&self, code: u64) -> Result<Option<PostingsList>, IndexError> {
        let mut entries: Vec<Posting> = Vec::new();
        let mut present = false;
        for part in &self.parts {
            if let Some(list) = part.inner.postings(code)? {
                present = true;
                entries.extend(list.entries.into_iter().map(|p| Posting {
                    record: p.record + part.base,
                    offsets: p.offsets,
                }));
            }
        }
        Ok(present.then_some(PostingsList { entries }))
    }

    fn fetch_counts(&self, code: u64) -> Result<Option<Vec<(u32, u32)>>, IndexError> {
        let mut out: Vec<(u32, u32)> = Vec::new();
        let mut present = false;
        for part in &self.parts {
            if let Some(counts) = part.inner.counts(code)? {
                present = true;
                out.extend(counts.into_iter().map(|(r, c)| (r + part.base, c)));
            }
        }
        Ok(present.then_some(out))
    }

    fn fetch_with(
        &self,
        code: u64,
        io_buf: &mut Vec<u8>,
        visit: &mut dyn FnMut(u32, u32),
    ) -> Result<Option<u32>, IndexError> {
        let mut df_total = 0u32;
        let mut present = false;
        for part in &self.parts {
            let base = part.base;
            if let Some(df) = part
                .inner
                .postings_with(code, io_buf, &mut |record, offset| {
                    visit(record + base, offset)
                })?
            {
                present = true;
                df_total += df;
            }
        }
        Ok(present.then_some(df_total))
    }

    fn fetch_counts_with(
        &self,
        code: u64,
        io_buf: &mut Vec<u8>,
        visit: &mut dyn FnMut(u32, u32),
    ) -> Result<Option<u32>, IndexError> {
        let mut df_total = 0u32;
        let mut present = false;
        for part in &self.parts {
            let base = part.base;
            if let Some(df) = part.inner.counts_with(code, io_buf, &mut |record, count| {
                visit(record + base, count)
            })? {
                present = true;
                df_total += df;
            }
        }
        Ok(present.then_some(df_total))
    }

    fn list_max_count(&self, code: u64) -> Option<u32> {
        // Any part without the hint disables skipping (per the trait
        // contract); otherwise the max over parts bounds every block.
        let mut max = 0u32;
        for part in &self.parts {
            max = max.max(part.inner.list_max_count(code)?);
        }
        Some(max)
    }

    fn fetch_stream(
        &self,
        code: u64,
        io_buf: &mut Vec<u8>,
        visitor: &mut dyn PostingsVisitor,
    ) -> Result<Option<FetchStats>, IndexError> {
        let mut total: Option<FetchStats> = None;
        for part in &self.parts {
            let mut shifted = ShiftVisitor {
                base: part.base,
                inner: visitor,
            };
            if let Some(stats) = part.inner.postings_stream(code, io_buf, &mut shifted)? {
                total = Some(merge_stats(total, stats));
            }
        }
        Ok(total)
    }

    fn fetch_counts_stream(
        &self,
        code: u64,
        io_buf: &mut Vec<u8>,
        visitor: &mut dyn PostingsVisitor,
    ) -> Result<Option<FetchStats>, IndexError> {
        let mut total: Option<FetchStats> = None;
        for part in &self.parts {
            let mut shifted = ShiftVisitor {
                base: part.base,
                inner: visitor,
            };
            if let Some(stats) = part.inner.counts_stream(code, io_buf, &mut shifted)? {
                total = Some(merge_stats(total, stats));
            }
        }
        Ok(total)
    }
}

fn merge_stats(total: Option<FetchStats>, part: FetchStats) -> FetchStats {
    let mut acc = total.unwrap_or(FetchStats {
        df: 0,
        bytes_read: 0,
        ids_decoded: 0,
        blocks_decoded: 0,
        blocks_skipped: 0,
    });
    acc.df += part.df;
    acc.bytes_read += part.bytes_read;
    acc.ids_decoded += part.ids_decoded;
    acc.blocks_decoded += part.blocks_decoded;
    acc.blocks_skipped += part.blocks_skipped;
    acc
}

/// One store part of a [`SegmentedStore`].
#[derive(Clone)]
pub enum SegmentStorePart {
    /// In-memory part (a memtable run).
    Memory(Arc<SequenceStore>),
    /// Immutable on-disk segment store.
    Disk(Arc<OnDiskStore>),
}

impl SegmentStorePart {
    fn len(&self) -> usize {
        match self {
            SegmentStorePart::Memory(s) => RecordSource::len(&**s),
            SegmentStorePart::Disk(s) => RecordSource::len(&**s),
        }
    }
}

struct StorePart {
    base: u32,
    inner: SegmentStorePart,
}

/// A [`RecordSource`] over an ordered set of store parts with
/// contiguous record-id ranges; lookups binary-search the part bases.
pub struct SegmentedStore {
    parts: Vec<StorePart>,
    total: usize,
}

impl SegmentedStore {
    /// Compose parts in global record-id order.
    pub fn new(parts: Vec<SegmentStorePart>) -> SegmentedStore {
        let mut assembled = Vec::with_capacity(parts.len());
        let mut base = 0usize;
        for part in parts {
            let len = part.len();
            assembled.push(StorePart {
                base: base as u32,
                inner: part,
            });
            base += len;
        }
        SegmentedStore {
            parts: assembled,
            total: base,
        }
    }

    /// Bytes the stored sequence payloads occupy across parts.
    pub fn stored_bytes(&self) -> usize {
        self.parts
            .iter()
            .map(|p| match &p.inner {
                SegmentStorePart::Memory(s) => s.stored_bytes(),
                SegmentStorePart::Disk(s) => s.stored_bytes(),
            })
            .sum()
    }

    fn locate(&self, record: u32) -> (&SegmentStorePart, u32) {
        let idx = self
            .parts
            .partition_point(|p| p.base <= record)
            .checked_sub(1)
            .expect("record id below first part base");
        let part = &self.parts[idx];
        (&part.inner, record - part.base)
    }
}

impl RecordSource for SegmentedStore {
    fn len(&self) -> usize {
        self.total
    }

    fn id(&self, record: u32) -> &str {
        let (part, local) = self.locate(record);
        match part {
            SegmentStorePart::Memory(s) => RecordSource::id(&**s, local),
            SegmentStorePart::Disk(s) => RecordSource::id(&**s, local),
        }
    }

    fn record_len(&self, record: u32) -> usize {
        let (part, local) = self.locate(record);
        match part {
            SegmentStorePart::Memory(s) => RecordSource::record_len(&**s, local),
            SegmentStorePart::Disk(s) => RecordSource::record_len(&**s, local),
        }
    }

    fn bases(&self, record: u32) -> Vec<Base> {
        let (part, local) = self.locate(record);
        match part {
            SegmentStorePart::Memory(s) => RecordSource::bases(&**s, local),
            SegmentStorePart::Disk(s) => RecordSource::bases(&**s, local),
        }
    }

    fn try_bases(&self, record: u32) -> Result<Vec<Base>, SeqError> {
        let (part, local) = self.locate(record);
        match part {
            SegmentStorePart::Memory(s) => RecordSource::try_bases(&**s, local),
            SegmentStorePart::Disk(s) => RecordSource::try_bases(&**s, local),
        }
    }

    fn sequence(&self, record: u32) -> Result<DnaSeq, SeqError> {
        let (part, local) = self.locate(record);
        match part {
            SegmentStorePart::Memory(s) => RecordSource::sequence(&**s, local),
            SegmentStorePart::Disk(s) => RecordSource::sequence(&**s, local),
        }
    }

    fn total_bases(&self) -> usize {
        self.parts
            .iter()
            .map(|p| match &p.inner {
                SegmentStorePart::Memory(s) => RecordSource::total_bases(&**s),
                SegmentStorePart::Disk(s) => RecordSource::total_bases(&**s),
            })
            .sum()
    }
}

// ---------------------------------------------------------------------------
// Write side: the live database
// ---------------------------------------------------------------------------

/// Map a [`StorageMode`] to the opaque byte the manifest carries.
pub(crate) fn storage_tag(mode: StorageMode) -> u8 {
    match mode {
        StorageMode::Ascii => 0,
        StorageMode::DirectCoding => 1,
    }
}

/// Inverse of [`storage_tag`].
pub(crate) fn storage_from_tag(tag: u8) -> Result<StorageMode, IndexError> {
    match tag {
        0 => Ok(StorageMode::Ascii),
        1 => Ok(StorageMode::DirectCoding),
        _ => Err(IndexError::bad_in("unknown storage mode tag", "manifest")),
    }
}

/// Observability and tuning knobs for a [`LiveDatabase`]. Handles are
/// fixed at construction (segments bind their I/O counters as they are
/// opened), matching the engine's configure-then-share pattern.
#[derive(Clone)]
pub struct LiveOptions {
    /// Auto-flush the memtable once it holds this many records.
    pub memtable_max_records: usize,
    /// Soft cap on on-disk segments: above it, compaction merges the
    /// smallest adjacent pair even when no similar-sized pair exists.
    pub max_segments: usize,
    /// Metric registry for engine + segment + live-ingestion metrics.
    pub registry: Arc<MetricsRegistry>,
    /// Trace sink bound to every query snapshot.
    pub trace: TraceSink,
    /// Forensics handle bound to every query snapshot.
    pub forensics: Forensics,
}

impl Default for LiveOptions {
    fn default() -> LiveOptions {
        LiveOptions {
            memtable_max_records: 1024,
            max_segments: 8,
            registry: Arc::new(MetricsRegistry::disabled()),
            trace: TraceSink::disabled(),
            forensics: Forensics::disabled(),
        }
    }
}

/// Result of one insert call.
#[derive(Debug, Clone, Copy)]
pub struct InsertOutcome {
    /// Records added by this call.
    pub inserted: usize,
    /// Records in the memtable after the call (0 if it flushed).
    pub memtable_records: u32,
    /// Did the call trigger an auto-flush?
    pub flushed: bool,
}

/// Work accounting for one completed compaction run.
#[derive(Debug, Clone)]
pub struct CompactionRun {
    /// Ids of the segments that were merged away.
    pub inputs: Vec<u64>,
    /// Combined on-disk bytes of the inputs.
    pub input_bytes: u64,
    /// On-disk bytes of the merged output segment.
    pub output_bytes: u64,
    /// Wall time of the merge (including file writes).
    pub nanos: u64,
}

/// Point-in-time description of a live directory (for `/stats` and
/// `nucdb stat`).
#[derive(Debug, Clone)]
pub struct LiveStatus {
    /// Current manifest version.
    pub manifest_version: u64,
    /// On-disk segments, in record-id order.
    pub segments: Vec<SegmentMeta>,
    /// Records buffered in the memtable.
    pub memtable_records: u32,
    /// Memtable runs (merged opportunistically, binary-counter style).
    pub memtable_runs: usize,
    /// Flushes since open.
    pub flushes: u64,
    /// Compaction runs since open.
    pub compaction_runs: u64,
    /// Input bytes compaction has read since open.
    pub compaction_bytes: u64,
    /// Wall time compaction has spent since open, in nanoseconds.
    pub compaction_nanos: u64,
    /// Orphaned files removed when the directory was opened.
    pub orphans_removed: u64,
}

/// Prometheus handles for the live-ingestion metric family.
struct LiveMetrics {
    segment_count: Gauge,
    memtable_records: Gauge,
    flush_total: Counter,
    compaction_runs: Counter,
    compaction_bytes: Counter,
    /// Whole seconds only (the registry has no float counters); the
    /// sub-second remainder is carried in `LiveInner::seconds_carry_ns`
    /// and added once it crosses a second boundary. Precise nanos are in
    /// [`LiveStatus::compaction_nanos`].
    compaction_seconds: Counter,
}

impl LiveMetrics {
    fn new(registry: &MetricsRegistry) -> LiveMetrics {
        LiveMetrics {
            segment_count: registry
                .gauge("nucdb_segment_count", "On-disk segments in the manifest"),
            memtable_records: registry.gauge(
                "nucdb_memtable_records",
                "Records buffered in the in-memory write buffer",
            ),
            flush_total: registry.counter(
                "nucdb_flush_total",
                "Memtable flushes to an on-disk segment",
            ),
            compaction_runs: registry.counter(
                "nucdb_compaction_runs_total",
                "Completed background compaction merges",
            ),
            compaction_bytes: registry.counter(
                "nucdb_compaction_bytes_total",
                "Segment bytes read as compaction input",
            ),
            compaction_seconds: registry.counter(
                "nucdb_compaction_seconds_total",
                "Wall-clock seconds spent compacting (whole seconds)",
            ),
        }
    }
}

/// One memtable run: an in-memory store + index over a batch of recently
/// inserted records. Runs merge binary-counter style so their number
/// stays logarithmic in the memtable size.
struct MemRun {
    store: Arc<SequenceStore>,
    index: Arc<CompressedIndex>,
}

impl MemRun {
    fn records(&self) -> u32 {
        self.index.num_records()
    }
}

/// One open on-disk segment.
struct DiskSegment {
    meta: SegmentMeta,
    index: Arc<OnDiskIndex>,
    store: Arc<OnDiskStore>,
}

struct LiveInner {
    manifest: Manifest,
    segments: Vec<DiskSegment>,
    runs: Vec<MemRun>,
    /// Next segment id to allocate; seeded past the manifest's max and
    /// bumped on every reservation so a flush racing a compaction can
    /// never collide on a file name.
    next_id: u64,
    /// Serializes compactions (at most one in flight).
    compacting: bool,
    flushes: u64,
    compaction_runs: u64,
    compaction_bytes: u64,
    compaction_nanos: u64,
    seconds_carry_ns: u64,
    orphans_removed: u64,
}

impl LiveInner {
    fn memtable_records(&self) -> u32 {
        self.runs.iter().map(MemRun::records).sum()
    }
}

/// A database that accepts inserts while serving queries.
///
/// Writers (insert / flush / compaction) serialize on an internal lock;
/// readers never take it — they clone the current [`Database`] snapshot
/// via [`LiveDatabase::snapshot`] and search it lock-free. Every
/// mutation rebuilds the snapshot; old snapshots stay valid (their
/// segment parts are `Arc`-shared) until the last reader drops them.
pub struct LiveDatabase {
    dir: PathBuf,
    config: DbConfig,
    opts: LiveOptions,
    metrics: LiveMetrics,
    inner: Mutex<LiveInner>,
    view: RwLock<Arc<Database>>,
}

impl LiveDatabase {
    /// Create a new live directory at `dir` (the directory is created if
    /// absent; it must not already hold a manifest). Stopping is
    /// rejected: stopped indexes cannot be merged, so they cannot be
    /// flushed or compacted.
    pub fn create(
        dir: &Path,
        config: &DbConfig,
        opts: LiveOptions,
    ) -> Result<LiveDatabase, IndexError> {
        if config.index.stopping.is_some() {
            return Err(IndexError::Unsupported(
                "live databases must be unstopped (stopped indexes cannot be merged)",
            ));
        }
        std::fs::create_dir_all(dir)?;
        if Manifest::exists_in(dir) {
            return Err(IndexError::Io(std::io::Error::new(
                std::io::ErrorKind::AlreadyExists,
                format!("{} already holds a manifest", dir.display()),
            )));
        }
        let manifest = Manifest::new(
            config.index.k,
            config.index.stride,
            config.index.granularity,
            config.codec,
            storage_tag(config.storage),
        );
        manifest.save(dir)?;
        LiveDatabase::assemble(dir, config.clone(), manifest, opts, 0)
    }

    /// Open an existing live directory: load and verify the manifest,
    /// delete orphaned segment files and stale temps (debris from an
    /// interrupted flush or compaction), and open every referenced
    /// segment. The configuration is recovered from the manifest itself.
    pub fn open(dir: &Path, opts: LiveOptions) -> Result<LiveDatabase, IndexError> {
        let manifest = Manifest::load(dir)?;
        let config = DbConfig {
            index: IndexParams {
                k: manifest.k,
                stride: manifest.stride,
                stopping: None,
                granularity: manifest.granularity,
            },
            codec: manifest.codec,
            storage: storage_from_tag(manifest.storage)?,
        };
        let mut removed = 0u64;
        for orphan in manifest.orphans_in(dir)? {
            if std::fs::remove_file(dir.join(&orphan)).is_ok() {
                removed += 1;
            }
        }
        LiveDatabase::assemble(dir, config, manifest, opts, removed)
    }

    /// Open a live directory as a plain read-only [`Database`] over its
    /// committed segments — no memtable, no mutation, no orphan
    /// cleanup. Offline tools (`nucdb search`, `bench`, examples) use
    /// this to query exactly the view a restarted server would serve.
    /// Segment I/O counters are bound to `registry` at open time.
    pub fn open_readonly(dir: &Path, registry: &MetricsRegistry) -> Result<Database, IndexError> {
        let manifest = Manifest::load(dir)?;
        let config = DbConfig {
            index: IndexParams {
                k: manifest.k,
                stride: manifest.stride,
                stopping: None,
                granularity: manifest.granularity,
            },
            codec: manifest.codec,
            storage: storage_from_tag(manifest.storage)?,
        };
        if manifest.segments.is_empty() {
            return Ok(Database::build(std::iter::empty(), &config));
        }
        let mut index_parts = Vec::with_capacity(manifest.segments.len());
        let mut store_parts = Vec::with_capacity(manifest.segments.len());
        for meta in &manifest.segments {
            let seg = open_segment(dir, meta, registry)?;
            index_parts.push((
                format!("seg-{:06}", meta.id),
                SegmentIndexPart::Disk(seg.index),
            ));
            store_parts.push(SegmentStorePart::Disk(seg.store));
        }
        let mut db = Database::from_variants(
            StoreVariant::Segmented(SegmentedStore::new(store_parts)),
            IndexVariant::Segmented(SegmentedIndex::new(index_parts)?),
        );
        db.bind_metrics(registry);
        Ok(db)
    }

    /// [`LiveDatabase::open`] if `dir` holds a manifest, else
    /// [`LiveDatabase::create`].
    pub fn open_or_create(
        dir: &Path,
        config: &DbConfig,
        opts: LiveOptions,
    ) -> Result<LiveDatabase, IndexError> {
        if Manifest::exists_in(dir) {
            LiveDatabase::open(dir, opts)
        } else {
            LiveDatabase::create(dir, config, opts)
        }
    }

    fn assemble(
        dir: &Path,
        config: DbConfig,
        manifest: Manifest,
        opts: LiveOptions,
        orphans_removed: u64,
    ) -> Result<LiveDatabase, IndexError> {
        let mut segments = Vec::with_capacity(manifest.segments.len());
        for meta in &manifest.segments {
            segments.push(open_segment(dir, meta, &opts.registry)?);
        }
        let next_id = manifest.next_segment_id();
        let metrics = LiveMetrics::new(&opts.registry);
        let inner = LiveInner {
            manifest,
            segments,
            runs: Vec::new(),
            next_id,
            compacting: false,
            flushes: 0,
            compaction_runs: 0,
            compaction_bytes: 0,
            compaction_nanos: 0,
            seconds_carry_ns: 0,
            orphans_removed,
        };
        let live = LiveDatabase {
            dir: dir.to_path_buf(),
            config,
            opts,
            metrics,
            inner: Mutex::new(inner),
            view: RwLock::new(Arc::new(Database::build(
                std::iter::empty(),
                &DbConfig::default(),
            ))),
        };
        {
            let inner = live.lock_inner();
            live.rebuild_view(&inner)?;
        }
        Ok(live)
    }

    fn lock_inner(&self) -> std::sync::MutexGuard<'_, LiveInner> {
        self.inner.lock().expect("live database lock poisoned")
    }

    /// The directory this database lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The build configuration (recovered from the manifest on open).
    pub fn config(&self) -> &DbConfig {
        &self.config
    }

    /// The current query snapshot. Cheap (one `RwLock` read + `Arc`
    /// clone); the snapshot stays consistent for as long as the caller
    /// holds it, regardless of concurrent inserts or compactions.
    pub fn snapshot(&self) -> Arc<Database> {
        self.view.read().expect("live view lock poisoned").clone()
    }

    /// Point-in-time status for `/stats` and `nucdb stat`.
    pub fn status(&self) -> LiveStatus {
        let inner = self.lock_inner();
        LiveStatus {
            manifest_version: inner.manifest.version,
            segments: inner.manifest.segments.clone(),
            memtable_records: inner.memtable_records(),
            memtable_runs: inner.runs.len(),
            flushes: inner.flushes,
            compaction_runs: inner.compaction_runs,
            compaction_bytes: inner.compaction_bytes,
            compaction_nanos: inner.compaction_nanos,
            orphans_removed: inner.orphans_removed,
        }
    }

    /// Insert one record. See [`LiveDatabase::insert_batch`].
    pub fn insert(&self, id: String, seq: &DnaSeq) -> Result<InsertOutcome, IndexError> {
        self.insert_batch(vec![(id, seq.clone())])
    }

    /// Insert a batch of records into the memtable. The records are
    /// searchable as soon as the call returns (the query snapshot is
    /// rebuilt); they become durable at the next flush. Auto-flushes
    /// when the memtable reaches the configured size.
    pub fn insert_batch(
        &self,
        records: Vec<(String, DnaSeq)>,
    ) -> Result<InsertOutcome, IndexError> {
        let mut inner = self.lock_inner();
        if records.is_empty() {
            return Ok(InsertOutcome {
                inserted: 0,
                memtable_records: inner.memtable_records(),
                flushed: false,
            });
        }
        let total = inner.manifest.total_records()
            + u64::from(inner.memtable_records())
            + records.len() as u64;
        if total > u64::from(u32::MAX) {
            return Err(IndexError::OutOfRange("database exceeds u32 records"));
        }

        let inserted = records.len();
        let mut store = SequenceStore::new(self.config.storage);
        let mut builder =
            IndexBuilder::new(self.config.index.clone()).with_codec(self.config.codec);
        for (id, seq) in records {
            builder.add_record(&seq.representative_bases());
            store.add(id, &seq);
        }
        inner.runs.push(MemRun {
            store: Arc::new(store),
            index: Arc::new(builder.finish()),
        });
        // Binary-counter merging: collapse the tail while the newest run
        // is at least as large as its predecessor, so run count stays
        // logarithmic and every record is merged O(log n) times.
        while inner.runs.len() >= 2 {
            let n = inner.runs.len();
            if inner.runs[n - 2].records() > inner.runs[n - 1].records() {
                break;
            }
            let b = inner.runs.pop().unwrap();
            let a = inner.runs.pop().unwrap();
            inner.runs.push(self.merge_runs(&a, &b)?);
        }

        let mut flushed = false;
        if inner.memtable_records() as usize >= self.opts.memtable_max_records {
            flushed = self.flush_locked(&mut inner)?;
        }
        self.rebuild_view(&inner)?;
        Ok(InsertOutcome {
            inserted,
            memtable_records: inner.memtable_records(),
            flushed,
        })
    }

    /// Merge two adjacent memtable runs (`b` follows `a`).
    fn merge_runs(&self, a: &MemRun, b: &MemRun) -> Result<MemRun, IndexError> {
        let mut store = SequenceStore::new(self.config.storage);
        store.extend_from_store(&a.store).map_err(io_err)?;
        store.extend_from_store(&b.store).map_err(io_err)?;
        let index = self.merged_index_for(&a.index, &b.index, &store)?;
        Ok(MemRun {
            store: Arc::new(store),
            index: Arc::new(index),
        })
    }

    /// Merge two adjacent indexes: `merge_indexes` for offset
    /// granularity, rebuild from the (already merged) store for record
    /// granularity — `merge_indexes` proves blob-identity to a joint
    /// build for offsets, and a rebuild is identical by construction.
    fn merged_index_for(
        &self,
        a: &CompressedIndex,
        b: &CompressedIndex,
        merged_store: &SequenceStore,
    ) -> Result<CompressedIndex, IndexError> {
        match self.config.index.granularity {
            Granularity::Offsets => merge_indexes(a, b),
            Granularity::Records => {
                let mut builder =
                    IndexBuilder::new(self.config.index.clone()).with_codec(self.config.codec);
                for record in 0..RecordSource::len(merged_store) as u32 {
                    builder.add_record(&RecordSource::bases(merged_store, record));
                }
                Ok(builder.finish())
            }
        }
    }

    /// Flush the memtable to a new immutable on-disk segment and swap in
    /// a manifest naming it. No-op (returns `false`) when the memtable
    /// is empty.
    pub fn flush(&self) -> Result<bool, IndexError> {
        let mut inner = self.lock_inner();
        let flushed = self.flush_locked(&mut inner)?;
        if flushed {
            self.rebuild_view(&inner)?;
        }
        Ok(flushed)
    }

    fn flush_locked(&self, inner: &mut LiveInner) -> Result<bool, IndexError> {
        if inner.runs.is_empty() {
            return Ok(false);
        }
        // Collapse the memtable to a single run.
        while inner.runs.len() >= 2 {
            let b = inner.runs.pop().unwrap();
            let a = inner.runs.pop().unwrap();
            inner.runs.push(self.merge_runs(&a, &b)?);
        }
        let run = inner.runs.last().unwrap();

        let id = inner.next_id;
        let index_path = self.dir.join(segment_index_file(id));
        let store_path = self.dir.join(segment_store_file(id));
        write_index(&run.index, &index_path)?;
        run.store.write_to(&store_path).map_err(io_err)?;
        let meta = SegmentMeta {
            id,
            records: run.records(),
            index_bytes: std::fs::metadata(&index_path)?.len(),
            store_bytes: std::fs::metadata(&store_path)?.len(),
        };
        let segment = open_segment(&self.dir, &meta, &self.opts.registry)?;

        inner.manifest.segments.push(meta);
        inner.manifest.version += 1;
        if let Err(e) = inner.manifest.save(&self.dir) {
            // The manifest on disk is unchanged; put memory back in sync
            // and leave the segment files as orphans for open() to sweep.
            inner.manifest.segments.pop();
            inner.manifest.version -= 1;
            return Err(e);
        }
        // The new manifest is durable: commit the in-memory state.
        inner.next_id = id + 1;
        inner.segments.push(segment);
        inner.runs.clear();
        inner.flushes += 1;
        self.metrics.flush_total.inc();
        Ok(true)
    }

    /// Run one size-tiered compaction step if the policy finds a
    /// candidate pair: merge two adjacent segments into one (via
    /// `merge_indexes`), swap in a manifest naming the replacement, and
    /// delete the superseded files. The expensive merge runs *outside*
    /// the writer lock, so inserts and flushes proceed concurrently.
    /// Returns `None` when there is nothing to compact (or another
    /// compaction is in flight).
    pub fn compact_once(&self) -> Result<Option<CompactionRun>, IndexError> {
        let (pos, a, b, new_id) = {
            let mut inner = self.lock_inner();
            if inner.compacting {
                return Ok(None);
            }
            let Some(pos) = compaction_candidate(&inner.manifest.segments, self.opts.max_segments)
            else {
                return Ok(None);
            };
            inner.compacting = true;
            let new_id = inner.next_id;
            inner.next_id += 1;
            (
                pos,
                inner.manifest.segments[pos].clone(),
                inner.manifest.segments[pos + 1].clone(),
                new_id,
            )
        };
        let result = self.compact_pair(pos, &a, &b, new_id);
        self.lock_inner().compacting = false;
        result
    }

    fn compact_pair(
        &self,
        pos: usize,
        a: &SegmentMeta,
        b: &SegmentMeta,
        new_id: u64,
    ) -> Result<Option<CompactionRun>, IndexError> {
        let started = Instant::now();

        // Merge outside the lock: load both segments fully, merge, write
        // the replacement files (atomically, under the reserved id).
        let store_a = SequenceStore::read_from(&self.dir.join(a.store_file())).map_err(io_err)?;
        let store_b = SequenceStore::read_from(&self.dir.join(b.store_file())).map_err(io_err)?;
        let mut merged_store = SequenceStore::new(self.config.storage);
        merged_store.extend_from_store(&store_a).map_err(io_err)?;
        merged_store.extend_from_store(&store_b).map_err(io_err)?;
        let index_a = load_index(&self.dir.join(a.index_file()))?;
        let index_b = load_index(&self.dir.join(b.index_file()))?;
        let merged_index = self.merged_index_for(&index_a, &index_b, &merged_store)?;

        let index_path = self.dir.join(segment_index_file(new_id));
        let store_path = self.dir.join(segment_store_file(new_id));
        write_index(&merged_index, &index_path)?;
        merged_store.write_to(&store_path).map_err(io_err)?;
        let meta = SegmentMeta {
            id: new_id,
            records: merged_index.num_records(),
            index_bytes: std::fs::metadata(&index_path)?.len(),
            store_bytes: std::fs::metadata(&store_path)?.len(),
        };
        let segment = open_segment(&self.dir, &meta, &self.opts.registry)?;
        let input_bytes = a.bytes() + b.bytes();

        // Swap: replace the pair at its list position. Flushes only
        // append and compactions are serialized, so the pair is still
        // where we left it — verified defensively anyway.
        let mut inner = self.lock_inner();
        let pair_intact = inner.manifest.segments.get(pos).map(|s| s.id) == Some(a.id)
            && inner.manifest.segments.get(pos + 1).map(|s| s.id) == Some(b.id);
        if !pair_intact {
            drop(inner);
            let _ = std::fs::remove_file(&index_path);
            let _ = std::fs::remove_file(&store_path);
            return Ok(None);
        }
        let replaced: Vec<SegmentMeta> = inner
            .manifest
            .segments
            .splice(pos..=pos + 1, [meta.clone()])
            .collect();
        inner.manifest.version += 1;
        if let Err(e) = inner.manifest.save(&self.dir) {
            inner
                .manifest
                .segments
                .splice(pos..=pos, replaced)
                .for_each(drop);
            inner.manifest.version -= 1;
            drop(inner);
            let _ = std::fs::remove_file(&index_path);
            let _ = std::fs::remove_file(&store_path);
            return Err(e);
        }
        inner
            .segments
            .splice(pos..=pos + 1, [segment])
            .for_each(drop);
        // Only now — with the new manifest durable — delete the
        // superseded files.
        for name in [
            a.index_file(),
            a.store_file(),
            b.index_file(),
            b.store_file(),
        ] {
            let _ = std::fs::remove_file(self.dir.join(name));
        }

        let nanos = started.elapsed().as_nanos() as u64;
        inner.compaction_runs += 1;
        inner.compaction_bytes += input_bytes;
        inner.compaction_nanos += nanos;
        self.metrics.compaction_runs.inc();
        self.metrics.compaction_bytes.add(input_bytes);
        inner.seconds_carry_ns += nanos;
        let whole = inner.seconds_carry_ns / 1_000_000_000;
        if whole > 0 {
            self.metrics.compaction_seconds.add(whole);
            inner.seconds_carry_ns %= 1_000_000_000;
        }
        self.rebuild_view(&inner)?;
        Ok(Some(CompactionRun {
            inputs: vec![a.id, b.id],
            input_bytes,
            output_bytes: meta.bytes(),
            nanos,
        }))
    }

    /// Compact until the policy finds no further candidate. Returns the
    /// completed runs (possibly empty).
    pub fn compact_all(&self) -> Result<Vec<CompactionRun>, IndexError> {
        let mut runs = Vec::new();
        while let Some(run) = self.compact_once()? {
            runs.push(run);
        }
        Ok(runs)
    }

    /// Rebuild the query snapshot from the current segments + memtable
    /// and publish it. Readers holding the old snapshot are unaffected.
    fn rebuild_view(&self, inner: &LiveInner) -> Result<(), IndexError> {
        let mut db = if inner.segments.is_empty() && inner.runs.is_empty() {
            // Empty database: a plain empty memory build with the right
            // parameters (a segmented view needs at least one part).
            Database::build(std::iter::empty(), &self.config)
        } else {
            let mut index_parts = Vec::new();
            let mut store_parts = Vec::new();
            for seg in &inner.segments {
                index_parts.push((
                    format!("seg-{:06}", seg.meta.id),
                    SegmentIndexPart::Disk(seg.index.clone()),
                ));
                store_parts.push(SegmentStorePart::Disk(seg.store.clone()));
            }
            for run in &inner.runs {
                index_parts.push((
                    "memtable".to_string(),
                    SegmentIndexPart::Memory(run.index.clone()),
                ));
                store_parts.push(SegmentStorePart::Memory(run.store.clone()));
            }
            Database::from_variants(
                StoreVariant::Segmented(SegmentedStore::new(store_parts)),
                IndexVariant::Segmented(SegmentedIndex::new(index_parts)?),
            )
        };
        db.bind_metrics(&self.opts.registry);
        db.set_trace(self.opts.trace.clone());
        db.set_forensics(self.opts.forensics.clone());
        *self.view.write().expect("live view lock poisoned") = Arc::new(db);
        self.metrics.segment_count.set(inner.segments.len() as i64);
        self.metrics
            .memtable_records
            .set(i64::from(inner.memtable_records()));
        Ok(())
    }
}

fn open_segment(
    dir: &Path,
    meta: &SegmentMeta,
    registry: &MetricsRegistry,
) -> Result<DiskSegment, IndexError> {
    let mut index = OnDiskIndex::open(&dir.join(meta.index_file()))?;
    index.bind_metrics(registry);
    let mut store = OnDiskStore::open(&dir.join(meta.store_file())).map_err(io_err)?;
    store.bind_metrics(registry);
    Ok(DiskSegment {
        meta: meta.clone(),
        index: Arc::new(index),
        store: Arc::new(store),
    })
}

/// Size-tiered compaction policy over adjacent segments. Prefers the
/// smallest adjacent pair of *similar* size (within `TIER_FACTOR`), so a
/// large settled segment is not rewritten every time a small flush lands
/// next to it. When the segment count exceeds `max_segments`, falls back
/// to the smallest adjacent pair regardless of tier, bounding segment
/// count (and so per-query fan-out) even for adversarial size patterns.
fn compaction_candidate(segments: &[SegmentMeta], max_segments: usize) -> Option<usize> {
    const TIER_FACTOR: u64 = 4;
    if segments.len() < 2 {
        return None;
    }
    let pair_bytes = |i: usize| segments[i].bytes().max(1) + segments[i + 1].bytes().max(1);
    let tiered = (0..segments.len() - 1)
        .filter(|&i| {
            let a = segments[i].bytes().max(1);
            let b = segments[i + 1].bytes().max(1);
            a.max(b) <= TIER_FACTOR * a.min(b)
        })
        .min_by_key(|&i| pair_bytes(i));
    if tiered.is_some() {
        return tiered;
    }
    if segments.len() > max_segments {
        return (0..segments.len() - 1).min_by_key(|&i| pair_bytes(i));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SearchParams;
    use nucdb_seq::random::{CollectionSpec, SyntheticCollection};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "nucdb-seg-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn collection() -> Vec<(String, DnaSeq)> {
        let coll = SyntheticCollection::generate(&CollectionSpec::tiny(5));
        coll.records
            .iter()
            .map(|r| (r.id.clone(), r.seq.clone()))
            .collect()
    }

    fn results_of(db: &Database, query: &DnaSeq) -> Vec<(u32, i32, String)> {
        db.search(query, &SearchParams::default())
            .unwrap()
            .results
            .iter()
            .map(|r| (r.record, r.score, r.id.clone()))
            .collect()
    }

    #[test]
    fn segmented_view_matches_joint_build() {
        let records = collection();
        let config = DbConfig::default();
        let joint = Database::build(records.clone(), &config);

        // Split into three memory parts at arbitrary boundaries.
        let mut parts = Vec::new();
        let mut stores = Vec::new();
        for chunk in records.chunks(records.len() / 3 + 1) {
            let mut store = SequenceStore::new(config.storage);
            let mut builder = IndexBuilder::new(config.index.clone()).with_codec(config.codec);
            for (id, seq) in chunk {
                builder.add_record(&seq.representative_bases());
                store.add(id.clone(), seq);
            }
            parts.push((
                format!("part-{}", parts.len()),
                SegmentIndexPart::Memory(Arc::new(builder.finish())),
            ));
            stores.push(SegmentStorePart::Memory(Arc::new(store)));
        }
        let segmented = Database::from_variants(
            StoreVariant::Segmented(SegmentedStore::new(stores)),
            IndexVariant::Segmented(SegmentedIndex::new(parts).unwrap()),
        );

        let coll = SyntheticCollection::generate(&CollectionSpec::tiny(5));
        for fam in 0..3 {
            let query =
                coll.query_for_family(fam, 0.7, &nucdb_seq::MutationModel::substitutions(0.05));
            assert_eq!(results_of(&joint, &query), results_of(&segmented, &query));
        }
    }

    #[test]
    fn live_insert_flush_compact_round_trip() {
        let dir = temp_dir("live");
        let records = collection();
        let config = DbConfig::default();
        let live = LiveDatabase::create(&dir, &config, LiveOptions::default()).unwrap();

        // Insert in three batches with a flush between each, producing
        // multiple on-disk segments plus a memtable tail.
        let chunks: Vec<_> = records.chunks(records.len() / 3 + 1).collect();
        for (i, chunk) in chunks.iter().enumerate() {
            live.insert_batch(chunk.to_vec()).unwrap();
            if i + 1 < chunks.len() {
                assert!(live.flush().unwrap());
            }
        }
        let joint = Database::build(records.clone(), &config);
        let coll = SyntheticCollection::generate(&CollectionSpec::tiny(5));
        let query = coll.query_for_family(0, 0.7, &nucdb_seq::MutationModel::substitutions(0.05));
        assert_eq!(
            results_of(&joint, &query),
            results_of(&live.snapshot(), &query)
        );

        // Flush the tail, compact everything, reopen: same answers.
        live.flush().unwrap();
        let runs = live.compact_all().unwrap();
        assert!(!runs.is_empty());
        assert_eq!(
            results_of(&joint, &query),
            results_of(&live.snapshot(), &query)
        );
        let status = live.status();
        assert_eq!(status.memtable_records, 0);
        assert!(status.compaction_runs as usize >= runs.len());
        drop(live);

        let reopened = LiveDatabase::open(&dir, LiveOptions::default()).unwrap();
        assert_eq!(
            results_of(&joint, &query),
            results_of(&reopened.snapshot(), &query)
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn policy_prefers_similar_sizes_and_bounds_count() {
        let seg = |id, bytes| SegmentMeta {
            id,
            records: 1,
            index_bytes: bytes,
            store_bytes: 0,
        };
        // A big settled segment next to a small flush: no candidate.
        assert_eq!(
            compaction_candidate(&[seg(0, 1 << 20), seg(1, 100)], 8),
            None
        );
        // Two similar smalls after the big one: merge those.
        assert_eq!(
            compaction_candidate(&[seg(0, 1 << 20), seg(1, 100), seg(2, 150)], 8),
            Some(1)
        );
        // Over the cap, tier is waived: smallest adjacent pair merges.
        let steep: Vec<SegmentMeta> = (0..4)
            .map(|i| seg(i, 10u64.pow(6 - 2 * i as u32)))
            .collect();
        assert_eq!(compaction_candidate(&steep, 3), Some(2));
        assert_eq!(compaction_candidate(&steep, 8), None);
    }

    #[test]
    fn explain_plan_lists_segments() {
        let dir = temp_dir("explain");
        let records = collection();
        let live =
            LiveDatabase::create(&dir, &DbConfig::default(), LiveOptions::default()).unwrap();
        live.insert_batch(records[..3].to_vec()).unwrap();
        live.flush().unwrap();
        live.insert_batch(records[3..6].to_vec()).unwrap();

        let coll = SyntheticCollection::generate(&CollectionSpec::tiny(5));
        let query = coll.query_for_family(0, 0.7, &nucdb_seq::MutationModel::substitutions(0.05));
        let params = SearchParams {
            explain: true,
            ..SearchParams::default()
        };
        let outcome = live.snapshot().search(&query, &params).unwrap();
        let plan = outcome.explain.expect("explain plan");
        assert_eq!(plan.segments.len(), 2);
        assert_eq!(plan.segments[0].label, "seg-000000");
        assert_eq!(plan.segments[0].base, 0);
        assert_eq!(plan.segments[1].label, "memtable");
        let text = plan.render_text(5);
        assert!(text.contains("segments: 2 consulted"), "{text}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
