//! Search parameters for partitioned query evaluation.

use nucdb_align::ScoringScheme;

use crate::coarse::RankingScheme;
use crate::fine::FineMode;

/// Which strands of the query to search.
///
/// A homologous region may sit on either strand of a stored record, so
/// production nucleotide search evaluates the query *and* its reverse
/// complement; the forward-only mode exists for experiments where the
/// workload generator plants forward-strand homologs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strand {
    /// Query as given.
    #[default]
    Forward,
    /// The reverse complement of the query.
    Reverse,
    /// Both, merged per record by best score.
    Both,
}

/// Everything a query evaluation needs besides the query itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchParams {
    /// Coarse ranking scheme.
    pub ranking: RankingScheme,
    /// Which strands to evaluate.
    pub strand: Strand,
    /// Number of coarse candidates passed to fine search (the paper's
    /// central speed/accuracy dial; experiment E3 sweeps it).
    pub max_candidates: usize,
    /// Records with fewer coarse hits than this are never candidates
    /// (filters accidental single-interval matches).
    pub min_coarse_hits: u32,
    /// Look up only every `query_stride`-th interval of the query (1 =
    /// all). Overlapping intervals are highly redundant, so striding cuts
    /// index lookups almost proportionally at modest accuracy cost — one
    /// of the coarse-search cost dials of the CAFE line.
    pub query_stride: usize,
    /// Cap the number of records tracked during accumulation (`None` =
    /// unlimited). Once the accumulator table is full, hits on new
    /// records are dropped while existing accumulators keep updating —
    /// the classic bounded-memory "accumulator limiting" of 1990s
    /// inverted-file ranking.
    pub max_accumulators: Option<usize>,
    /// DUST-style masking of low-complexity *query* regions: intervals
    /// starting inside a masked region are not looked up, so a
    /// microsatellite in the query cannot flood coarse search with
    /// meaningless hits. `None` disables masking.
    pub mask: Option<nucdb_seq::DustParams>,
    /// How fine search aligns candidates.
    pub fine: FineMode,
    /// Alignment scoring scheme (shared by fine search and baselines).
    pub scheme: ScoringScheme,
    /// Results scoring below this are dropped.
    pub min_score: i32,
    /// At most this many results are returned.
    pub max_results: usize,
    /// Collect an [`ExplainPlan`](crate::ExplainPlan) alongside the
    /// results. Collection is passive — answers are bit-identical either
    /// way — but it allocates, so it is off by default.
    pub explain: bool,
}

impl Default for SearchParams {
    fn default() -> SearchParams {
        SearchParams {
            ranking: RankingScheme::default(),
            strand: Strand::Forward,
            max_candidates: 30,
            query_stride: 1,
            max_accumulators: None,
            mask: None,
            min_coarse_hits: 2,
            fine: FineMode::default(),
            scheme: ScoringScheme::blastn(),
            min_score: 1,
            max_results: 100,
            explain: false,
        }
    }
}

impl SearchParams {
    /// Convenience: set the candidate cutoff.
    pub fn with_candidates(mut self, max_candidates: usize) -> SearchParams {
        self.max_candidates = max_candidates;
        self
    }

    /// Convenience: set the ranking scheme.
    pub fn with_ranking(mut self, ranking: RankingScheme) -> SearchParams {
        self.ranking = ranking;
        self
    }

    /// Convenience: set the fine mode.
    pub fn with_fine(mut self, fine: FineMode) -> SearchParams {
        self.fine = fine;
        self
    }

    /// Convenience: set the strand mode.
    pub fn with_strand(mut self, strand: Strand) -> SearchParams {
        self.strand = strand;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_apply() {
        let p = SearchParams::default()
            .with_candidates(7)
            .with_ranking(RankingScheme::Count)
            .with_fine(FineMode::Full);
        assert_eq!(p.max_candidates, 7);
        assert_eq!(p.ranking, RankingScheme::Count);
        assert_eq!(p.fine, FineMode::Full);
    }

    #[test]
    fn defaults_are_sane() {
        let p = SearchParams::default();
        assert!(p.max_candidates > 0);
        assert!(p.max_results > 0);
        assert!(p.min_coarse_hits >= 1);
    }
}
