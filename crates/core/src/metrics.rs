//! Engine-side observability: the bundle of registered metric handles a
//! [`Database`](crate::Database) records into, plus per-query trace
//! emission.
//!
//! The bundle is resolved once (at [`Database::bind_metrics`]
//! (crate::Database::bind_metrics) time) so the hot path never touches
//! the registry lock — each query records through pre-registered atomic
//! handles. A default-constructed [`SearchMetrics`] is fully disabled:
//! every handle is detached, so each record call is one branch.

use nucdb_obs::{Counter, Forensics, Histogram, MetricsRegistry, SpanNode, TraceEvent, TraceSink};

use crate::engine::{QueryStats, SearchResult};

/// Pre-registered metric handles for the search path.
///
/// Histogram values are nanoseconds unless the metric name says
/// otherwise.
#[derive(Debug, Clone, Default)]
pub struct SearchMetrics {
    /// Queries evaluated.
    pub queries: Counter,
    /// End-to-end per-query latency.
    pub query_latency: Histogram,
    /// Coarse stage: interval extraction + code sort.
    pub stage_extract: Histogram,
    /// Coarse stage: postings fetch + hit accumulation.
    pub stage_accumulate: Histogram,
    /// Coarse stage: diagonal scatter, window scoring, ranking.
    pub stage_rank: Histogram,
    /// Fine stage: local alignment of the candidates.
    pub stage_fine: Histogram,
    /// Strand merge + result assembly.
    pub stage_merge: Histogram,
    /// Candidates promoted to fine search, per query.
    pub candidates: Histogram,
    /// Postings lists fetched.
    pub lists_fetched: Counter,
    /// Postings entries decoded.
    pub postings_decoded: Counter,
    /// Hit pairs accumulated.
    pub total_hits: Counter,
    /// Fine alignments computed.
    pub fine_alignments: Counter,
    /// Queries that failed on detected on-disk corruption (checksum
    /// mismatch, structural violation, or truncated read). Incremented
    /// per failing query; the query errors out, the engine stays up.
    pub io_corruption: Counter,
    /// Queries captured by tail sampling for exceeding the forensics
    /// slow-query threshold.
    pub slow_queries: Counter,
    /// Trace events lost to write errors (bound onto the trace sink as
    /// `nucdb_trace_dropped_total`).
    pub trace_dropped: Counter,
    /// Slow-query log captures lost to write errors (bound onto the
    /// forensics slow log as `nucdb_slow_log_dropped_total`).
    pub slow_log_dropped: Counter,
    /// Slow-query log size-cap rotations (bound onto the forensics slow
    /// log as `nucdb_slow_log_rotations_total`).
    pub slow_log_rotations: Counter,
    /// Sampled per-query trace sink.
    pub trace: TraceSink,
    /// Query forensics: flight-recorder rings + tail sampling. Captures
    /// independently of the trace stride.
    pub forensics: Forensics,
}

impl SearchMetrics {
    /// Register the search metric family in `registry` and return live
    /// handles (detached no-op handles if the registry is disabled).
    pub fn new(registry: &MetricsRegistry) -> SearchMetrics {
        let stage = |name: &str| {
            registry.histogram_with(
                "nucdb_stage_latency_ns",
                "Per-stage search latency in nanoseconds",
                &[("stage", name)],
            )
        };
        SearchMetrics {
            queries: registry.counter("nucdb_queries_total", "Queries evaluated"),
            query_latency: registry.histogram(
                "nucdb_query_latency_ns",
                "End-to-end per-query latency in nanoseconds",
            ),
            stage_extract: stage("coarse_extract"),
            stage_accumulate: stage("coarse_accumulate"),
            stage_rank: stage("coarse_rank"),
            stage_fine: stage("fine_align"),
            stage_merge: stage("strand_merge"),
            candidates: registry.histogram(
                "nucdb_candidates_per_query",
                "Candidates promoted to fine search per query",
            ),
            lists_fetched: registry.counter("nucdb_lists_fetched_total", "Postings lists fetched"),
            postings_decoded: registry
                .counter("nucdb_postings_decoded_total", "Postings entries decoded"),
            total_hits: registry
                .counter("nucdb_hits_total", "Hit pairs accumulated in coarse search"),
            fine_alignments: registry
                .counter("nucdb_fine_alignments_total", "Fine alignments computed"),
            io_corruption: registry.counter(
                "nucdb_io_corruption_total",
                "Queries failed on detected on-disk corruption",
            ),
            slow_queries: registry.counter(
                "nucdb_slow_queries_total",
                "Queries tail-sampled for exceeding the slow-query threshold",
            ),
            trace_dropped: registry.counter(
                "nucdb_trace_dropped_total",
                "Trace events dropped on write error",
            ),
            slow_log_dropped: registry.counter(
                "nucdb_slow_log_dropped_total",
                "Slow-query log captures dropped on write error",
            ),
            slow_log_rotations: registry.counter(
                "nucdb_slow_log_rotations_total",
                "Slow-query log size-cap rotations",
            ),
            trace: TraceSink::disabled(),
            forensics: Forensics::disabled(),
        }
    }

    /// A fully detached bundle: every record call is one branch.
    pub fn disabled() -> SearchMetrics {
        SearchMetrics::default()
    }

    /// Attach a trace sink (sampling is the sink's). The sink's dropped
    /// events bump this bundle's `nucdb_trace_dropped_total` counter.
    pub fn with_trace(mut self, trace: TraceSink) -> SearchMetrics {
        trace.bind_dropped(self.trace_dropped.clone());
        self.trace = trace;
        self
    }

    /// Attach a forensics handle (flight recorder + tail sampling). The
    /// slow log's drop and rotation tallies bind to this bundle's
    /// `nucdb_slow_log_{dropped,rotations}_total` counters.
    pub fn with_forensics(mut self, forensics: Forensics) -> SearchMetrics {
        let slow_log = forensics.slow_log();
        slow_log.bind_dropped(self.slow_log_dropped.clone());
        slow_log.bind_rotations(self.slow_log_rotations.clone());
        self.forensics = forensics;
        self
    }

    /// Is any metric handle or the trace sink live?
    pub fn is_enabled(&self) -> bool {
        self.queries.is_enabled() || self.trace.is_enabled()
    }

    /// Record one evaluated query's stats into the registered handles.
    pub fn record_query(&self, stats: &QueryStats, total_nanos: u64) {
        self.queries.inc();
        self.query_latency.record(total_nanos);
        self.stage_extract.record(stats.extract_nanos);
        self.stage_accumulate.record(stats.accumulate_nanos);
        self.stage_rank.record(stats.rank_nanos);
        self.stage_fine.record(stats.fine_nanos);
        self.stage_merge.record(stats.merge_nanos);
        self.candidates.record(stats.candidates);
        self.lists_fetched.add(stats.lists_fetched);
        self.postings_decoded.add(stats.postings_decoded);
        self.total_hits.add(stats.total_hits);
        self.fine_alignments.add(stats.fine_alignments);
    }

    /// Build the JSONL trace event for one sampled query. The event is
    /// shaped so [`nucdb_obs::QueryTrace::from_value`] parses it back:
    /// `total_ns`, `results`, plus `request_id` and the span tree when
    /// the caller has them.
    pub fn trace_event(
        &self,
        stats: &QueryStats,
        results: &[SearchResult],
        total_nanos: u64,
        request_id: Option<&str>,
        spans: Option<&SpanNode>,
    ) -> TraceEvent {
        let mut event = TraceEvent::new("query");
        if let Some(id) = request_id {
            event = event.str("request_id", id);
        }
        event = event
            .num("total_ns", total_nanos)
            .num("latency_ns", total_nanos)
            .num("coarse_ns", stats.coarse_nanos)
            .num("extract_ns", stats.extract_nanos)
            .num("accumulate_ns", stats.accumulate_nanos)
            .num("rank_ns", stats.rank_nanos)
            .num("fine_ns", stats.fine_nanos)
            .num("merge_ns", stats.merge_nanos)
            .num("intervals", stats.intervals_looked_up)
            .num("lists_fetched", stats.lists_fetched)
            .num("postings_decoded", stats.postings_decoded)
            .num("hits", stats.total_hits)
            .num("candidates", stats.candidates)
            .num("fine_alignments", stats.fine_alignments)
            .num("results", results.len() as u64);
        if let Some(top) = results.first() {
            event = event
                .str("top_id", &top.id)
                .field("top_score", nucdb_obs::json::Value::Num(top.score as f64));
        }
        if let Some(spans) = spans {
            event = event.field("spans", spans.to_value());
        }
        event
    }
}
