//! # nucdb — partitioned search over indexed nucleotide databases
//!
//! A from-scratch Rust reproduction of *Indexing Nucleotide Databases for
//! Fast Query Evaluation* (Williams & Zobel, EDBT 1996), the precursor of
//! the CAFE genomic retrieval system.
//!
//! A query is a DNA sequence; answers are database records with
//! high-quality **local alignments** to it. Instead of exhaustively
//! scanning every record (Smith–Waterman, FASTA, BLAST — all implemented
//! in [`nucdb_align`] as baselines), search is **partitioned**:
//!
//! 1. **Coarse search** looks every fixed-length substring (*interval*) of
//!    the query up in a compressed inverted index ([`nucdb_index`]) and
//!    ranks records by how strongly their interval hits suggest a local
//!    alignment — at its best with the *frame* heuristic, which scores
//!    hits concentrated on a common alignment diagonal.
//! 2. **Fine search** runs (banded) local alignment only on the top
//!    candidates and ranks the survivors by alignment score.
//!
//! ## Quickstart
//!
//! ```
//! use nucdb::{Database, DbConfig, SearchParams};
//! use nucdb_seq::random::{CollectionSpec, SyntheticCollection};
//!
//! // A small synthetic collection with planted homolog families.
//! let coll = SyntheticCollection::generate(&CollectionSpec::tiny(7));
//! let db = Database::build(
//!     coll.records.iter().map(|r| (r.id.clone(), r.seq.clone())),
//!     &DbConfig::default(),
//! );
//!
//! // Query with a mutated fragment of family 0's parent: its members
//! // should surface.
//! let query = coll.query_for_family(0, 0.6, &nucdb_seq::MutationModel::substitutions(0.05));
//! let outcome = db.search(&query, &SearchParams::default()).unwrap();
//! assert!(!outcome.results.is_empty());
//! let top: Vec<u32> = outcome.results.iter().map(|r| r.record).collect();
//! assert!(coll.families[0].member_ids.iter().any(|m| top.contains(m)));
//! ```

#![warn(missing_docs)]

pub mod baseline;
pub mod build_info;
pub mod coarse;
pub mod engine;
pub mod eval;
pub mod explain;
pub mod fine;
pub mod health;
pub mod metrics;
pub mod params;
pub mod segment;
pub mod shard;
pub mod store;

pub use baseline::{exhaustive_blast, exhaustive_fasta, exhaustive_sw};
pub use coarse::{
    coarse_rank, coarse_rank_explain, coarse_rank_with, CoarseHit, CoarseOutcome, CoarseScratch,
    PostingsSource, RankingScheme,
};
pub use engine::{Database, DbConfig, IndexVariant, QueryStats, SearchOutcome, SearchResult};
pub use eval::{average_precision, eleven_point_precision, ground_truth_sw, recall_at};
pub use explain::{
    CandidateExplain, CoarseExplain, ExplainPlan, ListExplain, SegmentExplain, StrandExplain,
    SurvivorExplain,
};
pub use fine::{fine_search, fine_search_traced, CandidateTiming, FineMode, FineResult};
pub use health::{
    fsck_index, fsck_store, FsckFinding, FsckReport, FsckSeverity, HistBucket, IndexStatReport,
    StatReport, StoreStatReport,
};
pub use metrics::SearchMetrics;
pub use params::{SearchParams, Strand};
pub use segment::{
    CompactionRun, InsertOutcome, LiveDatabase, LiveOptions, LiveStatus, SegmentIndexPart,
    SegmentStorePart, SegmentedIndex, SegmentedStore,
};
pub use shard::{
    build_sharded_root, open_shard_dir, Coverage, LocalShard, Shard, ShardFailure, ShardSet,
    ShardSetConfig, ShardWork, ShardedOutcome,
};
pub use store::{OnDiskStore, RecordSource, SequenceStore, StorageMode, StoreVariant};
