//! Scatter-gather sharded search (ROADMAP item 3).
//!
//! A [`ShardSet`] partitions a collection into N shards, each an
//! independent index + store holding a contiguous slice of the record-id
//! space. A query fans coarse search out across a per-shard worker pool,
//! merges the per-shard top-C candidates globally, runs fine alignment
//! only on the global winners, and merges strands exactly as the
//! single-database engine does.
//!
//! ## Merge proof obligation
//!
//! Sharded answers must be **bit-identical** to a joint single-index
//! build (pinned by `tests/sharding.rs`). The argument:
//!
//! * Every coarse score is a function of one record alone — `Count` is
//!   the record's hit count, `Proportional` divides by the record's own
//!   length, `Frame` windows the record's own diagonal histogram. No
//!   collection-global statistic enters, so a record scores the same in
//!   its shard as in the joint index.
//! * Shards hold *contiguous* id ranges (shard `s` covers
//!   `[base_s, base_s + n_s)`), so adding `base_s` to a local id
//!   preserves the joint `(score desc, record asc)` tie-break order.
//! * Any member of the joint top-C has fewer than C records ahead of it
//!   globally, hence fewer than C within its own shard: it survives the
//!   per-shard `top-C` truncation. Merging the per-shard lists and
//!   truncating to C therefore reproduces the joint candidate list
//!   exactly — same set, same order.
//!
//! The one engine knob that breaks this argument is
//! [`SearchParams::max_accumulators`]: accumulator limiting keeps
//! whichever records are touched *first*, a property of global postings
//! order that sharding changes. [`ShardSet::search`] rejects it.
//!
//! ## Degraded mode
//!
//! A shard that cannot be opened (dead at open), fails a query
//! (corruption), or misses its deadline is dropped from the answer; the
//! query still succeeds with the surviving shards and a
//! [`Coverage`] of `shards_ok / shards_total`. Results from a shard
//! that failed *any* phase are discarded entirely, so a degraded answer
//! equals the answer of a `ShardSet` over the surviving shards alone.
//! Only when every shard fails does the query error.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use nucdb_index::{
    shard_dir_name, Granularity, IndexError, IndexParams, OnDiskIndex, ShardManifest, ShardMeta,
};
use nucdb_obs::{Counter, Histogram, MetricsRegistry};
use nucdb_seq::DnaSeq;

use crate::coarse::{coarse_rank_explain, CoarseHit, CoarseOutcome, CoarseScratch};
use crate::engine::{io_err, Database, DbConfig, IndexVariant, QueryStats, SearchResult};
use crate::fine::{fine_search_traced, FineMode, FineResult};
use crate::params::{SearchParams, Strand};
use crate::store::{OnDiskStore, RecordSource, SequenceStore, StoreVariant};

/// Answer completeness of a sharded query: how many shards contributed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Coverage {
    /// Shards that answered every phase of the query.
    pub shards_ok: usize,
    /// Total shards in the set (including dead-at-open shards).
    pub shards_total: usize,
}

impl Coverage {
    /// Fraction of shards that contributed, in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        if self.shards_total == 0 {
            return 1.0;
        }
        self.shards_ok as f64 / self.shards_total as f64
    }

    /// Did every shard contribute?
    pub fn is_full(&self) -> bool {
        self.shards_ok == self.shards_total
    }
}

/// One shard's failure within a query (or at open).
#[derive(Debug, Clone)]
pub struct ShardFailure {
    /// Shard directory name (`shard-000`, …).
    pub shard: String,
    /// Human-readable cause.
    pub error: String,
}

/// Per-shard work attribution for one query (the bench's scaling story:
/// wall time on a loaded box lies, decoded postings do not).
#[derive(Debug, Clone, Default)]
pub struct ShardWork {
    /// Shard directory name.
    pub shard: String,
    /// Compressed postings bytes this shard read.
    pub postings_bytes_read: u64,
    /// Postings entries this shard decoded.
    pub ids_decoded: u64,
    /// Coarse candidates this shard surfaced (pre-merge).
    pub candidates: u64,
}

/// A sharded query's answer: engine-shaped results plus coverage.
#[derive(Debug, Clone)]
pub struct ShardedOutcome {
    /// Ranked answers, best first — bit-identical to a joint build when
    /// coverage is full.
    pub results: Vec<SearchResult>,
    /// Aggregated cost counters across all shards and phases.
    pub stats: QueryStats,
    /// How many shards contributed.
    pub coverage: Coverage,
    /// Why non-contributing shards failed (empty at full coverage).
    pub failures: Vec<ShardFailure>,
    /// Per-shard work attribution, one entry per *live* shard that
    /// completed coarse search.
    pub work: Vec<ShardWork>,
}

/// The search surface one shard must expose. Object-safe and free of
/// local-filesystem assumptions, so a follow-up can put a remote
/// (HTTP) shard behind it; [`LocalShard`] is the in-process
/// implementation.
pub trait Shard: Send + Sync {
    /// Shard name (its directory name for local shards).
    fn name(&self) -> &str;
    /// Number of records in the shard.
    fn num_records(&self) -> u32;
    /// The shard's index parameters (must agree across the set).
    fn index_params(&self) -> IndexParams;
    /// Run coarse ranking for one strand orientation. `query_bases` is
    /// the strand-oriented representative-base view of the query.
    fn coarse(
        &self,
        query_bases: &[nucdb_seq::Base],
        params: &SearchParams,
    ) -> Result<CoarseOutcome, IndexError>;
    /// Run fine alignment on `candidates` (shard-local record ids).
    fn fine(
        &self,
        query: &DnaSeq,
        candidates: &[CoarseHit],
        mode: FineMode,
        params: &SearchParams,
    ) -> Result<Vec<FineResult>, IndexError>;
    /// External identifier of a shard-local record.
    fn record_id(&self, local: u32) -> String;
    /// Length in bases of a shard-local record.
    fn record_len(&self, local: u32) -> usize;
    /// Total bases stored in the shard.
    fn total_bases(&self) -> u64;
}

/// An in-process shard: a [`Database`] slice of the collection.
pub struct LocalShard {
    name: String,
    db: Database,
}

impl LocalShard {
    /// Wrap a database as a shard named `name`.
    pub fn new(name: impl Into<String>, db: Database) -> LocalShard {
        LocalShard {
            name: name.into(),
            db,
        }
    }

    /// The wrapped database.
    pub fn database(&self) -> &Database {
        &self.db
    }
}

impl Shard for LocalShard {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_records(&self) -> u32 {
        self.db.len() as u32
    }

    fn index_params(&self) -> IndexParams {
        use crate::coarse::PostingsSource;
        self.db.index().index_params().clone()
    }

    fn coarse(
        &self,
        query_bases: &[nucdb_seq::Base],
        params: &SearchParams,
    ) -> Result<CoarseOutcome, IndexError> {
        // Coarse results are independent of scratch history, so a fresh
        // scratch per call costs allocations but nothing in answers.
        let mut scratch = CoarseScratch::new();
        coarse_rank_explain(self.db.index(), query_bases, params, &mut scratch, None)
    }

    fn fine(
        &self,
        query: &DnaSeq,
        candidates: &[CoarseHit],
        mode: FineMode,
        params: &SearchParams,
    ) -> Result<Vec<FineResult>, IndexError> {
        fine_search_traced(
            self.db.store(),
            query,
            candidates,
            mode,
            &params.scheme,
            params.min_score,
            None,
        )
        .map_err(io_err)
    }

    fn record_id(&self, local: u32) -> String {
        self.db.store().id(local).to_string()
    }

    fn record_len(&self, local: u32) -> usize {
        self.db.store().record_len(local)
    }

    fn total_bases(&self) -> u64 {
        (0..self.db.len() as u32)
            .map(|r| self.db.store().record_len(r) as u64)
            .sum()
    }
}

/// Dispatch tuning for a [`ShardSet`].
#[derive(Debug, Clone)]
pub struct ShardSetConfig {
    /// Per-phase, per-shard deadline. A shard that has not answered a
    /// phase within this long is marked failed for the query.
    pub shard_deadline: Duration,
    /// After this long without an answer, re-dispatch the phase to the
    /// hedge worker (tail-latency insurance against a stuck shard
    /// thread). `None` disables hedging.
    pub hedge_after: Option<Duration>,
}

impl Default for ShardSetConfig {
    fn default() -> ShardSetConfig {
        ShardSetConfig {
            shard_deadline: Duration::from_secs(10),
            hedge_after: Some(Duration::from_millis(250)),
        }
    }
}

/// Per-shard metric handles (`nucdb_shard_*` families, labeled by
/// shard name). Disabled handles when no registry is bound.
#[derive(Clone, Default)]
struct ShardMetrics {
    queries: Counter,
    errors: Counter,
    timeouts: Counter,
    hedges: Counter,
    hedge_wins: Counter,
    latency: Histogram,
}

impl ShardMetrics {
    fn bind(registry: &MetricsRegistry, shard: &str) -> ShardMetrics {
        let labels: &[(&str, &str)] = &[("shard", shard)];
        ShardMetrics {
            queries: registry.counter_with(
                "nucdb_shard_queries_total",
                "Phase dispatches to this shard",
                labels,
            ),
            errors: registry.counter_with(
                "nucdb_shard_errors_total",
                "Queries this shard failed (error or timeout)",
                labels,
            ),
            timeouts: registry.counter_with(
                "nucdb_shard_timeouts_total",
                "Phase deadlines this shard missed",
                labels,
            ),
            hedges: registry.counter_with(
                "nucdb_shard_hedges_total",
                "Hedged re-dispatches triggered by this shard's slowness",
                labels,
            ),
            hedge_wins: registry.counter_with(
                "nucdb_shard_hedge_wins_total",
                "Phases where the hedge replica answered first",
                labels,
            ),
            latency: registry.histogram_with(
                "nucdb_shard_latency_ns",
                "Per-phase shard service time in nanoseconds",
                labels,
            ),
        }
    }
}

/// A phase of work for one shard.
enum JobKind {
    Coarse,
    Fine {
        candidates: Arc<Vec<CoarseHit>>,
        mode: FineMode,
    },
}

enum PhaseOutput {
    Coarse(CoarseOutcome),
    Fine(Vec<FineResult>),
}

struct Job {
    shard: Arc<dyn Shard>,
    slot: usize,
    query: Arc<DnaSeq>,
    query_bases: Arc<Vec<nucdb_seq::Base>>,
    params: SearchParams,
    kind: JobKind,
    seq: u64,
    hedged: bool,
    delay: Arc<AtomicU64>,
    reply: mpsc::Sender<Reply>,
}

struct Reply {
    slot: usize,
    seq: u64,
    hedged: bool,
    nanos: u64,
    output: Result<PhaseOutput, IndexError>,
}

fn run_job(job: Job) {
    // Injected delay (tests) applies only to a shard's primary worker,
    // never to the hedge — so a hedged re-dispatch provably overtakes a
    // delayed straggler with a bit-identical answer.
    if !job.hedged {
        let ns = job.delay.load(Ordering::Relaxed);
        if ns > 0 {
            std::thread::sleep(Duration::from_nanos(ns));
        }
    }
    let start = Instant::now();
    let output = match &job.kind {
        JobKind::Coarse => job
            .shard
            .coarse(&job.query_bases, &job.params)
            .map(PhaseOutput::Coarse),
        JobKind::Fine { candidates, mode } => job
            .shard
            .fine(&job.query, candidates, *mode, &job.params)
            .map(PhaseOutput::Fine),
    };
    // The dispatcher may have moved on (deadline, or the other replica
    // answered); a dropped receiver is not an error.
    let _ = job.reply.send(Reply {
        slot: job.slot,
        seq: job.seq,
        hedged: job.hedged,
        nanos: start.elapsed().as_nanos() as u64,
        output,
    });
}

fn spawn_worker(name: String, rx: mpsc::Receiver<Job>) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(name)
        .spawn(move || {
            while let Ok(job) = rx.recv() {
                run_job(job);
            }
        })
        .expect("spawn shard worker")
}

/// One shard slot: the shard (when it opened), its record-id base, and
/// its dispatch plumbing. Dead-at-open shards keep their slot — their
/// record count, and therefore every later shard's id base, comes from
/// the shard manifest.
struct ShardSlot {
    name: String,
    base: u32,
    records: u32,
    shard: Option<Arc<dyn Shard>>,
    dead: Option<String>,
    tx: Option<mpsc::Sender<Job>>,
    delay: Arc<AtomicU64>,
    metrics: ShardMetrics,
}

/// The scatter-gather planner over N shards. See the module docs for
/// the identity argument and degraded-mode contract.
pub struct ShardSet {
    slots: Vec<ShardSlot>,
    config: ShardSetConfig,
    hedge_tx: Option<mpsc::Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    seq: AtomicU64,
    degraded_queries: Counter,
}

/// One shard slot before assembly: name, manifest record count, the
/// opened shard (or `None` for a dead slot), and the dead-slot error.
type ShardEntry = (String, u32, Option<Arc<dyn Shard>>, Option<String>);

impl ShardSet {
    /// Assemble a set from already-opened shards. `dead` carries
    /// placeholder entries for shards that failed to open:
    /// `(name, records-from-manifest, error)` — their record counts
    /// keep the id bases of later shards correct.
    pub fn assemble(
        shards: Vec<Arc<dyn Shard>>,
        dead: Vec<(String, u32, Option<String>)>,
        config: ShardSetConfig,
        registry: &MetricsRegistry,
    ) -> Result<ShardSet, IndexError> {
        // `dead` is interleaved by name order with live shards; simpler:
        // callers pass slots pre-ordered via `assemble_slots`.
        let mut entries: Vec<ShardEntry> = Vec::new();
        for shard in shards {
            let records = shard.num_records();
            entries.push((shard.name().to_string(), records, Some(shard), None));
        }
        for (name, records, err) in dead {
            entries.push((name, records, None, err));
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        ShardSet::from_entries(entries, config, registry)
    }

    fn from_entries(
        entries: Vec<ShardEntry>,
        config: ShardSetConfig,
        registry: &MetricsRegistry,
    ) -> Result<ShardSet, IndexError> {
        if entries.is_empty() {
            return Err(IndexError::Unsupported(
                "a shard set needs at least one shard",
            ));
        }
        // All live shards must agree on index parameters: coarse scores
        // are only comparable across shards built the same way.
        let mut params: Option<IndexParams> = None;
        for (_, _, shard, _) in &entries {
            if let Some(shard) = shard {
                let p = shard.index_params();
                match &params {
                    None => params = Some(p),
                    Some(first) if *first != p => {
                        return Err(IndexError::Unsupported(
                            "shards disagree on index parameters",
                        ))
                    }
                    Some(_) => {}
                }
            }
        }
        let mut slots = Vec::with_capacity(entries.len());
        let mut workers = Vec::new();
        let mut base: u64 = 0;
        for (name, records, shard, dead_err) in entries {
            let delay = Arc::new(AtomicU64::new(0));
            let (tx, dead) = match (&shard, dead_err) {
                (Some(_), _) => {
                    let (tx, rx) = mpsc::channel();
                    workers.push(spawn_worker(format!("nucdb-{name}"), rx));
                    (Some(tx), None)
                }
                (None, err) => (None, Some(err.unwrap_or_else(|| "failed to open".into()))),
            };
            if base + u64::from(records) > u64::from(u32::MAX) {
                return Err(IndexError::Unsupported(
                    "total shard records overflow the u32 id space",
                ));
            }
            slots.push(ShardSlot {
                metrics: ShardMetrics::bind(registry, &name),
                name,
                base: base as u32,
                records,
                shard,
                dead,
                tx,
                delay,
            });
            base += u64::from(records);
        }
        let hedge_tx = if config.hedge_after.is_some() {
            let (tx, rx) = mpsc::channel();
            workers.push(spawn_worker("nucdb-shard-hedge".into(), rx));
            Some(tx)
        } else {
            None
        };
        Ok(ShardSet {
            slots,
            config,
            hedge_tx,
            workers,
            seq: AtomicU64::new(0),
            degraded_queries: registry.counter(
                "nucdb_shard_degraded_queries_total",
                "Queries answered with partial shard coverage",
            ),
        })
    }

    /// Build a set from in-memory databases (tests, benches). Shard `i`
    /// is named `shard-00i`.
    pub fn from_databases(
        dbs: Vec<Database>,
        config: ShardSetConfig,
        registry: &MetricsRegistry,
    ) -> Result<ShardSet, IndexError> {
        let shards = dbs
            .into_iter()
            .enumerate()
            .map(|(i, db)| Arc::new(LocalShard::new(shard_dir_name(i), db)) as Arc<dyn Shard>)
            .collect();
        ShardSet::assemble(shards, Vec::new(), config, registry)
    }

    /// Open a sharded root written by [`build_sharded_root`] (or
    /// `nucdb build --shards N`). A shard whose files are missing or
    /// corrupt becomes a *dead* slot: the set still opens and answers
    /// degraded queries, with the dead shard's record count taken from
    /// the manifest so every other shard's id base stays correct.
    pub fn open_root(
        root: &Path,
        config: ShardSetConfig,
        registry: &MetricsRegistry,
    ) -> Result<ShardSet, IndexError> {
        let manifest = ShardManifest::load(root)?;
        let mut entries: Vec<ShardEntry> = Vec::new();
        for (i, meta) in manifest.shards.iter().enumerate() {
            let name = shard_dir_name(i);
            let dir = root.join(&name);
            match open_shard_dir(&dir, &name) {
                Ok(shard) => {
                    if shard.num_records() != meta.records {
                        entries.push((
                            name,
                            meta.records,
                            None,
                            Some("shard record count disagrees with SHARDS manifest".into()),
                        ));
                    } else {
                        entries.push((name, meta.records, Some(shard), None));
                    }
                }
                Err(e) => entries.push((name, meta.records, None, Some(e.to_string()))),
            }
        }
        ShardSet::from_entries(entries, config, registry)
    }

    /// Number of shards (including dead ones).
    pub fn num_shards(&self) -> usize {
        self.slots.len()
    }

    /// Names and liveness of all shards, in id order:
    /// `(name, base, records, dead-error)`.
    pub fn shard_rows(&self) -> Vec<(String, u32, u32, Option<String>)> {
        self.slots
            .iter()
            .map(|s| (s.name.clone(), s.base, s.records, s.dead.clone()))
            .collect()
    }

    /// Total records across all shards (the joint id space).
    pub fn len(&self) -> usize {
        self.slots.iter().map(|s| s.records as usize).sum()
    }

    /// Is the whole set empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total stored bases across *live* shards.
    pub fn total_bases(&self) -> u64 {
        self.slots
            .iter()
            .filter_map(|s| s.shard.as_ref())
            .map(|s| s.total_bases())
            .sum()
    }

    /// External id of a global record (empty for records on dead shards).
    pub fn record_id(&self, global: u32) -> String {
        match self.slot_of(global) {
            Some((slot, local)) => match &slot.shard {
                Some(shard) => shard.record_id(local),
                None => String::new(),
            },
            None => String::new(),
        }
    }

    /// Length of a global record in bases (0 for records on dead shards).
    pub fn record_len(&self, global: u32) -> usize {
        match self.slot_of(global) {
            Some((slot, local)) => match &slot.shard {
                Some(shard) => shard.record_len(local),
                None => 0,
            },
            None => 0,
        }
    }

    /// Index parameters of the set (from the first live shard).
    pub fn index_params(&self) -> Option<IndexParams> {
        self.slots
            .iter()
            .filter_map(|s| s.shard.as_ref())
            .map(|s| s.index_params())
            .next()
    }

    /// Inject a fixed service delay into one shard's primary worker
    /// (tests): the hedge replica is never delayed, so a delayed shard
    /// deterministically loses the race once `hedge_after` elapses.
    pub fn inject_delay_ns(&self, shard: usize, ns: u64) {
        self.slots[shard].delay.store(ns, Ordering::Relaxed);
    }

    fn slot_of(&self, global: u32) -> Option<(&ShardSlot, u32)> {
        self.slots
            .iter()
            .find(|s| {
                global >= s.base && u64::from(global) < u64::from(s.base) + u64::from(s.records)
            })
            .map(|s| (s, global - s.base))
    }

    /// Fan one phase out to `targets` (slot indexes) and gather replies
    /// under the per-shard deadline, hedging stragglers. Returns
    /// per-slot `Some(Ok(output))`, `Some(Err(msg))`, or is marked in
    /// `failed` on timeout.
    fn run_phase(
        &self,
        targets: &[usize],
        make_kind: impl Fn(usize) -> JobKind,
        query: &Arc<DnaSeq>,
        query_bases: &Arc<Vec<nucdb_seq::Base>>,
        params: &SearchParams,
    ) -> Vec<Option<Result<PhaseOutput, String>>> {
        let mut outputs: Vec<Option<Result<PhaseOutput, String>>> = Vec::new();
        outputs.resize_with(self.slots.len(), || None);
        if targets.is_empty() {
            return outputs;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let (reply_tx, reply_rx) = mpsc::channel::<Reply>();
        let start = Instant::now();
        let mut pending: Vec<usize> = Vec::new();
        for &slot_idx in targets {
            let slot = &self.slots[slot_idx];
            let (Some(shard), Some(tx)) = (&slot.shard, &slot.tx) else {
                continue; // dead shard: stays None
            };
            let job = Job {
                shard: Arc::clone(shard),
                slot: slot_idx,
                query: Arc::clone(query),
                query_bases: Arc::clone(query_bases),
                params: *params,
                kind: make_kind(slot_idx),
                seq,
                hedged: false,
                delay: Arc::clone(&slot.delay),
                reply: reply_tx.clone(),
            };
            slot.metrics.queries.inc();
            if tx.send(job).is_err() {
                outputs[slot_idx] = Some(Err("shard worker exited".into()));
                continue;
            }
            pending.push(slot_idx);
        }

        let deadline = self.config.shard_deadline;
        let mut hedged = false;
        while !pending.is_empty() {
            let elapsed = start.elapsed();
            if elapsed >= deadline {
                break;
            }
            let mut wait = deadline - elapsed;
            if let (Some(after), false) = (self.config.hedge_after, hedged) {
                if elapsed >= after {
                    // Straggler(s): re-dispatch every unanswered shard to
                    // the hedge worker. First answer per shard wins; the
                    // loser's reply is dropped on the closed channel.
                    hedged = true;
                    if let Some(hedge_tx) = &self.hedge_tx {
                        for &slot_idx in &pending {
                            let slot = &self.slots[slot_idx];
                            let Some(shard) = &slot.shard else { continue };
                            slot.metrics.hedges.inc();
                            let _ = hedge_tx.send(Job {
                                shard: Arc::clone(shard),
                                slot: slot_idx,
                                query: Arc::clone(query),
                                query_bases: Arc::clone(query_bases),
                                params: *params,
                                kind: make_kind(slot_idx),
                                seq,
                                hedged: true,
                                delay: Arc::clone(&slot.delay),
                                reply: reply_tx.clone(),
                            });
                        }
                    }
                    continue;
                }
                wait = wait.min(after - elapsed);
            }
            match reply_rx.recv_timeout(wait) {
                Ok(reply) => {
                    if reply.seq != seq {
                        continue; // stale reply from an earlier phase
                    }
                    let Some(pos) = pending.iter().position(|&i| i == reply.slot) else {
                        continue; // both replicas answered; first won
                    };
                    pending.swap_remove(pos);
                    let slot = &self.slots[reply.slot];
                    slot.metrics.latency.record(reply.nanos);
                    if reply.hedged {
                        slot.metrics.hedge_wins.inc();
                    }
                    outputs[reply.slot] = Some(match reply.output {
                        Ok(out) => Ok(out),
                        Err(e) => Err(e.to_string()),
                    });
                }
                Err(mpsc::RecvTimeoutError::Timeout) => continue,
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
        for slot_idx in pending {
            let slot = &self.slots[slot_idx];
            slot.metrics.timeouts.inc();
            outputs[slot_idx] = Some(Err(format!(
                "shard {} missed the {:?} deadline",
                slot.name, deadline
            )));
        }
        outputs
    }

    /// Evaluate a query across all shards. Bit-identical to a joint
    /// build at full coverage; partial results plus `coverage < 1`
    /// when shards fail; an error only when *no* shard answers.
    pub fn search(
        &self,
        query: &DnaSeq,
        params: &SearchParams,
    ) -> Result<ShardedOutcome, IndexError> {
        if params.max_accumulators.is_some() {
            // Accumulator limiting keeps first-touched records — a
            // global postings-order property sharding cannot reproduce.
            return Err(IndexError::Unsupported(
                "max_accumulators is incompatible with sharded search",
            ));
        }
        let mut stats = QueryStats::default();
        let mut failures: BTreeMap<usize, String> = BTreeMap::new();
        for (i, slot) in self.slots.iter().enumerate() {
            if let Some(err) = &slot.dead {
                failures.insert(i, err.clone());
            }
        }
        let mut work: Vec<ShardWork> = Vec::new();
        // (strand, slot, fine result with *global* record id)
        let mut merged: Vec<(Strand, usize, FineResult)> = Vec::new();

        let mut strands: Vec<(Strand, DnaSeq)> = Vec::new();
        if params.strand != Strand::Reverse {
            strands.push((Strand::Forward, query.clone()));
        }
        if params.strand != Strand::Forward {
            strands.push((Strand::Reverse, query.reverse_complement()));
        }

        let query_start = Instant::now();
        for (strand, oriented) in strands {
            let oriented = Arc::new(oriented);
            let query_bases = Arc::new(oriented.representative_bases());
            let live: Vec<usize> = (0..self.slots.len())
                .filter(|i| !failures.contains_key(i))
                .collect();
            if live.is_empty() {
                break;
            }

            // Phase 1: coarse everywhere.
            let coarse_start = Instant::now();
            let coarse_outputs =
                self.run_phase(&live, |_| JobKind::Coarse, &oriented, &query_bases, params);
            stats.coarse_nanos += coarse_start.elapsed().as_nanos() as u64;

            // Gather per-shard candidate lists; merge to the global
            // top-C exactly as joint coarse ranking would.
            let mut global: Vec<(usize, CoarseHit)> = Vec::new();
            for (slot_idx, output) in coarse_outputs.into_iter().enumerate() {
                let Some(output) = output else { continue };
                let slot = &self.slots[slot_idx];
                match output {
                    Ok(PhaseOutput::Coarse(coarse)) => {
                        stats.intervals_looked_up += coarse.intervals_looked_up;
                        stats.lists_fetched += coarse.lists_fetched;
                        stats.postings_decoded += coarse.postings_decoded;
                        stats.postings_bytes_read += coarse.postings_bytes_read;
                        stats.blocks_decoded += coarse.blocks_decoded;
                        stats.blocks_skipped += coarse.blocks_skipped;
                        stats.total_hits += coarse.total_hits;
                        stats.extract_nanos += coarse.extract_nanos;
                        stats.accumulate_nanos += coarse.accumulate_nanos;
                        stats.rank_nanos += coarse.rank_nanos;
                        if let Some(w) = work.iter_mut().find(|w| w.shard == slot.name) {
                            w.postings_bytes_read += coarse.postings_bytes_read;
                            w.ids_decoded += coarse.postings_decoded;
                            w.candidates += coarse.candidates.len() as u64;
                        } else {
                            work.push(ShardWork {
                                shard: slot.name.clone(),
                                postings_bytes_read: coarse.postings_bytes_read,
                                ids_decoded: coarse.postings_decoded,
                                candidates: coarse.candidates.len() as u64,
                            });
                        }
                        for hit in coarse.candidates {
                            global.push((slot_idx, hit));
                        }
                    }
                    Ok(PhaseOutput::Fine(_)) => unreachable!("coarse phase returned fine output"),
                    Err(e) => {
                        slot.metrics.errors.inc();
                        failures.insert(slot_idx, e);
                    }
                }
            }

            // The joint candidate order: score desc, global record asc.
            // Globalised ids preserve the joint tie-break because shards
            // hold contiguous, ordered id ranges.
            global.sort_by(|(sa, a), (sb, b)| {
                b.score
                    .partial_cmp(&a.score)
                    .expect("coarse scores are finite")
                    .then((self.slots[*sa].base + a.record).cmp(&(self.slots[*sb].base + b.record)))
            });
            global.truncate(params.max_candidates);
            stats.candidates += global.len() as u64;
            stats.fine_alignments += global.len() as u64;

            // A record-granularity index reports no diagonals, so banded
            // fine alignment falls back to full — same rule as the engine.
            let granularity = self
                .index_params()
                .map(|p| p.granularity)
                .unwrap_or(Granularity::Offsets);
            let fine_mode = if granularity == Granularity::Records
                && matches!(params.fine, FineMode::Banded { .. })
            {
                FineMode::Full
            } else {
                params.fine
            };

            // Phase 2: fine only on shards owning a global winner.
            let mut per_shard: BTreeMap<usize, Vec<CoarseHit>> = BTreeMap::new();
            for (slot_idx, hit) in &global {
                per_shard.entry(*slot_idx).or_default().push(*hit);
            }
            let fine_targets: Vec<usize> = per_shard.keys().copied().collect();
            let batches: BTreeMap<usize, Arc<Vec<CoarseHit>>> = per_shard
                .into_iter()
                .map(|(slot_idx, hits)| (slot_idx, Arc::new(hits)))
                .collect();
            let fine_start = Instant::now();
            let fine_outputs = self.run_phase(
                &fine_targets,
                |slot_idx| JobKind::Fine {
                    candidates: Arc::clone(&batches[&slot_idx]),
                    mode: fine_mode,
                },
                &oriented,
                &query_bases,
                params,
            );
            stats.fine_nanos += fine_start.elapsed().as_nanos() as u64;
            for (slot_idx, output) in fine_outputs.into_iter().enumerate() {
                let Some(output) = output else { continue };
                let slot = &self.slots[slot_idx];
                match output {
                    Ok(PhaseOutput::Fine(results)) => {
                        for mut r in results {
                            r.record += slot.base;
                            r.coarse.record += slot.base;
                            merged.push((strand, slot_idx, r));
                        }
                    }
                    Ok(PhaseOutput::Coarse(_)) => unreachable!("fine phase returned coarse output"),
                    Err(e) => {
                        slot.metrics.errors.inc();
                        failures.insert(slot_idx, e);
                    }
                }
            }
        }

        let shards_total = self.slots.len();
        if failures.len() == shards_total {
            let detail = failures
                .values()
                .next()
                .cloned()
                .unwrap_or_else(|| "no shards".into());
            return Err(IndexError::Io(std::io::Error::other(format!(
                "all {shards_total} shards failed: {detail}"
            ))));
        }

        // A shard that failed any phase contributes nothing: drop even
        // results it returned for other strands/phases, so a degraded
        // answer equals a clean answer over the surviving shards.
        let merge_start = Instant::now();
        merged.retain(|(_, slot_idx, _)| !failures.contains_key(slot_idx));

        // Strand merge: exactly the engine's sequence — best strand per
        // record, then (score desc, record asc).
        merged.sort_by(|(_, _, a), (_, _, b)| a.record.cmp(&b.record).then(b.score.cmp(&a.score)));
        merged.dedup_by_key(|(_, _, r)| r.record);
        merged.sort_by(|(_, _, a), (_, _, b)| b.score.cmp(&a.score).then(a.record.cmp(&b.record)));

        let results: Vec<SearchResult> = merged
            .into_iter()
            .take(params.max_results)
            .map(|(strand, slot_idx, r)| {
                let slot = &self.slots[slot_idx];
                let local = r.record - slot.base;
                SearchResult {
                    record: r.record,
                    id: slot
                        .shard
                        .as_ref()
                        .map(|s| s.record_id(local))
                        .unwrap_or_default(),
                    score: r.score,
                    coarse_score: r.coarse.score,
                    coarse_hits: r.coarse.hits,
                    strand,
                    alignment: r.alignment,
                }
            })
            .collect();
        stats.merge_nanos += merge_start.elapsed().as_nanos() as u64;
        let _ = query_start; // total time is the caller's to observe

        let coverage = Coverage {
            shards_ok: shards_total - failures.len(),
            shards_total,
        };
        if !coverage.is_full() {
            self.degraded_queries.inc();
        }
        Ok(ShardedOutcome {
            results,
            stats,
            coverage,
            failures: failures
                .into_iter()
                .map(|(i, error)| ShardFailure {
                    shard: self.slots[i].name.clone(),
                    error,
                })
                .collect(),
            work,
        })
    }
}

impl Drop for ShardSet {
    fn drop(&mut self) {
        for slot in &mut self.slots {
            slot.tx = None; // close the channel so the worker exits
        }
        self.hedge_tx = None;
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Open one shard directory (`index.nucidx` + `store.nucsto`) as a
/// [`LocalShard`].
pub fn open_shard_dir(dir: &Path, name: &str) -> Result<Arc<dyn Shard>, IndexError> {
    let index = OnDiskIndex::open(&dir.join("index.nucidx"))?;
    let store = OnDiskStore::open(&dir.join("store.nucsto")).map_err(io_err)?;
    let db = Database::from_variants(StoreVariant::Disk(store), IndexVariant::Disk(index));
    Ok(Arc::new(LocalShard::new(name, db)) as Arc<dyn Shard>)
}

/// Partition `records` into `num_shards` contiguous slices and write a
/// sharded root: `root/SHARDS` plus one plain database directory per
/// shard, built in parallel (one builder thread per shard). Returns the
/// per-shard record counts.
pub fn build_sharded_root(
    root: &Path,
    records: Vec<(String, DnaSeq)>,
    num_shards: usize,
    config: &DbConfig,
) -> Result<Vec<u32>, IndexError> {
    assert!(num_shards > 0, "need at least one shard");
    std::fs::create_dir_all(root)?;
    let n = records.len();
    let mut slices: Vec<Vec<(String, DnaSeq)>> = Vec::with_capacity(num_shards);
    let mut rest = records;
    for i in 0..num_shards {
        // Shard i gets records [i*n/N, (i+1)*n/N) — contiguous, and
        // sizes differ by at most one.
        let start = i * n / num_shards;
        let end = (i + 1) * n / num_shards;
        let tail = rest.split_off(end - start);
        slices.push(rest);
        rest = tail;
    }
    let results: Vec<Result<(u32, u64, u64), IndexError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = slices
            .into_iter()
            .enumerate()
            .map(|(i, slice)| {
                let dir: PathBuf = root.join(shard_dir_name(i));
                scope.spawn(move || build_shard_dir(&dir, slice, config))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard build thread panicked"))
            .collect()
    });
    let mut manifest = ShardManifest::new(
        config.index.k,
        config.index.stride,
        config.index.granularity,
        config.codec,
        crate::segment::storage_tag(config.storage),
    );
    let mut counts = Vec::with_capacity(num_shards);
    for result in results {
        let (records, index_bytes, store_bytes) = result?;
        counts.push(records);
        manifest.shards.push(ShardMeta {
            records,
            index_bytes,
            store_bytes,
        });
    }
    manifest.save(root)?;
    Ok(counts)
}

fn build_shard_dir(
    dir: &Path,
    records: Vec<(String, DnaSeq)>,
    config: &DbConfig,
) -> Result<(u32, u64, u64), IndexError> {
    std::fs::create_dir_all(dir)?;
    let mut store = SequenceStore::new(config.storage);
    let mut builder = nucdb_index::IndexBuilder::new(config.index.clone()).with_codec(config.codec);
    let count = records.len() as u32;
    for (id, seq) in records {
        builder.add_record(&seq.representative_bases());
        store.add(id, &seq);
    }
    let index_path = dir.join("index.nucidx");
    let store_path = dir.join("store.nucsto");
    nucdb_index::write_index(&builder.finish(), &index_path)?;
    store.write_to(&store_path).map_err(io_err)?;
    let index_bytes = std::fs::metadata(&index_path)?.len();
    let store_bytes = std::fs::metadata(&store_path)?.len();
    Ok((count, index_bytes, store_bytes))
}
