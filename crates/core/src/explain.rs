//! Query EXPLAIN plans: *why* coarse search kept, skipped, or dropped
//! what it did, and what fine search made of the survivors.
//!
//! [`QueryStats`](crate::QueryStats) says where time and I/O went; an
//! [`ExplainPlan`] says why — per-interval vocabulary hits with list
//! length and `max_count` hint, per-list blocks decoded vs skipped with
//! the τ threshold that justified each skip, whether the skip plan was
//! active and under which floor, the candidate-cutoff survivors with
//! their coarse scores, and the per-candidate fine outcome.
//!
//! Collection is strictly passive: the plan observes decisions the
//! engine already made and never feeds back into them, so results are
//! bit-identical with explain on or off (pinned by the `explain`
//! integration tests). When explain is off the whole layer costs one
//! `Option` discriminant branch per stage.
//!
//! Plans serialize to the workspace mini-JSON ([`ExplainPlan::to_value`])
//! — the shape `POST /search` returns under `"plan"` and flight-recorder
//! slow captures embed — and render as a text tree
//! ([`ExplainPlan::render_text`]) for `nucdb search --explain`.

use nucdb_obs::json::{num, Value};

use crate::fine::FineMode;
use crate::params::Strand;

/// One postings list consulted by coarse search, with the evidence that
/// justified decoding or skipping its blocks.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ListExplain {
    /// Packed interval code.
    pub code: u64,
    /// Query positions mapping to this interval (the run length).
    pub qlen: u32,
    /// List length: records containing the interval. Zero when the
    /// interval is absent from the index (never seen, or stopped).
    pub df: u32,
    /// The per-list `max_count` hint (largest per-record occurrence
    /// count), when the codec stores one. Feeds the skip plan.
    pub max_count: Option<u32>,
    /// The τ threshold active while this list was decoded: any block
    /// whose covered records all sit below τ accumulated hits is
    /// provably hopeless and skipped. Zero = no skipping possible here.
    pub tau: u32,
    /// Postings entries actually decoded (skipped blocks excluded).
    pub ids_decoded: u64,
    /// Compressed bytes fetched for the list.
    pub bytes_read: u64,
    /// Blocks checksummed and unpacked (block codec only).
    pub blocks_decoded: u32,
    /// Blocks proven hopeless under τ and skipped without decoding.
    pub blocks_skipped: u32,
    /// The interval was looked up but is not in the index — never
    /// indexed, or discarded by the stopping policy.
    pub absent: bool,
}

/// A record that survived the coarse candidate cutoff.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SurvivorExplain {
    /// Record id.
    pub record: u32,
    /// Coarse score under the active ranking scheme.
    pub score: f64,
    /// Total interval hits.
    pub hits: u32,
    /// Hits within the best diagonal window.
    pub frame_hits: u32,
    /// Centre of the best diagonal window (seeds the fine band).
    pub best_diagonal: i64,
}

/// The coarse stage of one strand's plan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CoarseExplain {
    /// Interval length of the index (for rendering codes as sequence).
    pub k: usize,
    /// The build-time stopping policy, rendered (`"none"` when the index
    /// kept every interval). Absent lists under a policy were likely
    /// stopped rather than unseen.
    pub stopping: String,
    /// Was the hopeless-block skip plan active for this query?
    pub skipping: bool,
    /// The coarse floor (`min_coarse_hits`, floored at 1 on the counts
    /// path) the skip plan proved records against.
    pub floor: u64,
    /// Every list consulted, in ascending code order.
    pub lists: Vec<ListExplain>,
    /// Candidates that survived the cutoff, descending score.
    pub survivors: Vec<SurvivorExplain>,
}

/// One fine-alignment outcome. Candidates the `min_score` filter dropped
/// are still listed (with `kept: false`) — that rejection is exactly the
/// kind of decision an explain plan exists to surface.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CandidateExplain {
    /// Record id.
    pub record: u32,
    /// Smith–Waterman score.
    pub score: i32,
    /// Nanoseconds spent aligning this candidate.
    pub nanos: u64,
    /// Did the candidate clear `min_score`?
    pub kept: bool,
}

/// One strand's plan: coarse evidence plus fine outcomes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StrandExplain {
    /// Which strand (`Forward` or `Reverse`).
    pub strand: Strand,
    /// The coarse stage.
    pub coarse: CoarseExplain,
    /// The fine mode that actually ran (after any granularity fallback).
    pub fine_mode: String,
    /// Per-candidate fine outcomes, in alignment order.
    pub candidates: Vec<CandidateExplain>,
}

/// The complete explain plan for one query.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExplainPlan {
    /// Query length in bases.
    pub query_len: usize,
    /// The ranking scheme, rendered (`"count"`, `"prop"`, `"frame:16"`).
    pub ranking: String,
    /// Candidate cutoff (`max_candidates`).
    pub max_candidates: usize,
    /// Fine-score filter (`min_score`).
    pub min_score: i32,
    /// Per-strand plans, in evaluation order.
    pub strands: Vec<StrandExplain>,
    /// Results after the strand merge.
    pub results: usize,
    /// The segments a segmented (live) database consulted, in record-id
    /// order. Empty for a monolithic database.
    pub segments: Vec<SegmentExplain>,
}

/// One segment row of a segmented database's plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentExplain {
    /// Human-readable part name (`seg-000003` or `memtable`).
    pub label: String,
    /// First global record id the segment covers.
    pub base: u32,
    /// Records in the segment.
    pub records: u32,
}

/// Render a [`FineMode`] the way the CLI spells it.
pub fn fine_mode_name(mode: FineMode) -> String {
    match mode {
        FineMode::Banded { half_width } => format!("banded:{half_width}"),
        FineMode::Full => "full".to_string(),
        FineMode::FullWithTraceback => "trace".to_string(),
        FineMode::FullIupac => "iupac".to_string(),
    }
}

/// Render a [`RankingScheme`](crate::RankingScheme) the way the CLI
/// spells it.
pub fn ranking_name(ranking: crate::RankingScheme) -> String {
    match ranking {
        crate::RankingScheme::Count => "count".to_string(),
        crate::RankingScheme::Proportional => "prop".to_string(),
        crate::RankingScheme::Frame { window } => format!("frame:{window}"),
    }
}

fn strand_symbol(strand: Strand) -> &'static str {
    match strand {
        Strand::Forward => "+",
        Strand::Reverse => "-",
        Strand::Both => "?",
    }
}

/// Render an interval code as its base sequence (best-effort; falls back
/// to the numeric code when `k` is unknown).
fn interval_text(code: u64, k: usize) -> String {
    if k == 0 || k > 32 {
        return code.to_string();
    }
    nucdb_seq::unpack_kmer(code, k)
        .into_iter()
        .map(|b| b.to_ascii() as char)
        .collect()
}

impl ListExplain {
    fn to_value(&self, k: usize) -> Value {
        let mut members = vec![
            (
                "interval".to_string(),
                Value::Str(interval_text(self.code, k)),
            ),
            ("code".to_string(), num(self.code)),
            ("qlen".to_string(), num(u64::from(self.qlen))),
            ("df".to_string(), num(u64::from(self.df))),
        ];
        members.push((
            "max_count".to_string(),
            match self.max_count {
                Some(m) => num(u64::from(m)),
                None => Value::Null,
            },
        ));
        members.push(("tau".to_string(), num(u64::from(self.tau))));
        members.push(("ids_decoded".to_string(), num(self.ids_decoded)));
        members.push(("bytes_read".to_string(), num(self.bytes_read)));
        if self.blocks_decoded > 0 || self.blocks_skipped > 0 {
            members.push((
                "blocks_decoded".to_string(),
                num(u64::from(self.blocks_decoded)),
            ));
            members.push((
                "blocks_skipped".to_string(),
                num(u64::from(self.blocks_skipped)),
            ));
        }
        if self.absent {
            members.push(("absent".to_string(), Value::Bool(true)));
        }
        Value::Obj(members)
    }
}

impl CoarseExplain {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("stopping".to_string(), Value::Str(self.stopping.clone())),
            ("skipping".to_string(), Value::Bool(self.skipping)),
            ("floor".to_string(), num(self.floor)),
            (
                "lists".to_string(),
                Value::Arr(self.lists.iter().map(|l| l.to_value(self.k)).collect()),
            ),
            (
                "survivors".to_string(),
                Value::Arr(
                    self.survivors
                        .iter()
                        .map(|s| {
                            Value::Obj(vec![
                                ("record".to_string(), num(u64::from(s.record))),
                                ("score".to_string(), Value::Num(s.score)),
                                ("hits".to_string(), num(u64::from(s.hits))),
                                ("frame_hits".to_string(), num(u64::from(s.frame_hits))),
                                (
                                    "best_diagonal".to_string(),
                                    Value::Num(s.best_diagonal as f64),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl ExplainPlan {
    /// The plan as a JSON object (the `"plan"` member of `/search`
    /// responses and flight-recorder slow captures).
    pub fn to_value(&self) -> Value {
        let mut members = vec![
            ("query_len".to_string(), num(self.query_len as u64)),
            ("ranking".to_string(), Value::Str(self.ranking.clone())),
            (
                "max_candidates".to_string(),
                num(self.max_candidates as u64),
            ),
            (
                "min_score".to_string(),
                Value::Num(f64::from(self.min_score)),
            ),
            (
                "strands".to_string(),
                Value::Arr(
                    self.strands
                        .iter()
                        .map(|strand| {
                            Value::Obj(vec![
                                (
                                    "strand".to_string(),
                                    Value::Str(strand_symbol(strand.strand).to_string()),
                                ),
                                ("coarse".to_string(), strand.coarse.to_value()),
                                (
                                    "fine_mode".to_string(),
                                    Value::Str(strand.fine_mode.clone()),
                                ),
                                (
                                    "fine".to_string(),
                                    Value::Arr(
                                        strand
                                            .candidates
                                            .iter()
                                            .map(|c| {
                                                Value::Obj(vec![
                                                    (
                                                        "record".to_string(),
                                                        num(u64::from(c.record)),
                                                    ),
                                                    (
                                                        "score".to_string(),
                                                        Value::Num(f64::from(c.score)),
                                                    ),
                                                    ("ns".to_string(), num(c.nanos)),
                                                    ("kept".to_string(), Value::Bool(c.kept)),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("results".to_string(), num(self.results as u64)),
        ];
        if !self.segments.is_empty() {
            members.push((
                "segments".to_string(),
                Value::Arr(
                    self.segments
                        .iter()
                        .map(|seg| {
                            Value::Obj(vec![
                                ("segment".to_string(), Value::Str(seg.label.clone())),
                                ("base".to_string(), num(u64::from(seg.base))),
                                ("records".to_string(), num(u64::from(seg.records))),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        Value::Obj(members)
    }

    /// Render the plan as an indented text tree (what `nucdb search
    /// --explain` prints). Lists beyond the `max_lists` heaviest (by
    /// decoded work) are summarized on one line; pass `usize::MAX` for
    /// everything.
    pub fn render_text(&self, max_lists: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "plan: {} bases, ranking {}, cutoff {}, min_score {} -> {} result(s)",
            self.query_len, self.ranking, self.max_candidates, self.min_score, self.results
        );
        if !self.segments.is_empty() {
            let _ = writeln!(out, "  segments: {} consulted", self.segments.len());
            for seg in &self.segments {
                let _ = writeln!(
                    out,
                    "      {:<12}  records {:>7}  base {:>7}",
                    seg.label, seg.records, seg.base,
                );
            }
        }
        for strand in &self.strands {
            let coarse = &strand.coarse;
            let absent = coarse.lists.iter().filter(|l| l.absent).count();
            let _ = writeln!(
                out,
                "  strand {}: coarse floor {}, skip plan {}, stopping {}",
                strand_symbol(strand.strand),
                coarse.floor,
                if coarse.skipping {
                    "ACTIVE"
                } else {
                    "inactive"
                },
                coarse.stopping,
            );
            let _ = writeln!(
                out,
                "    lists: {} consulted, {} absent{}",
                coarse.lists.len(),
                absent,
                if absent > 0 && coarse.stopping != "none" {
                    " (possibly stopped)"
                } else {
                    ""
                },
            );
            // Heaviest lists first: decoded work is what the reader is
            // hunting for.
            let mut by_work: Vec<&ListExplain> =
                coarse.lists.iter().filter(|l| !l.absent).collect();
            by_work.sort_by_key(|l| std::cmp::Reverse((l.ids_decoded, l.df)));
            for list in by_work.iter().take(max_lists) {
                let max_count = list
                    .max_count
                    .map_or_else(|| "-".to_string(), |m| m.to_string());
                let blocks = if list.blocks_decoded > 0 || list.blocks_skipped > 0 {
                    format!(
                        "  blocks {}+{} skipped",
                        list.blocks_decoded, list.blocks_skipped
                    )
                } else {
                    String::new()
                };
                let _ = writeln!(
                    out,
                    "      {}  df {:>6}  qlen {:>3}  max {:>3}  tau {:>3}  ids {:>7}  {:>7} B{}",
                    interval_text(list.code, coarse.k),
                    list.df,
                    list.qlen,
                    max_count,
                    list.tau,
                    list.ids_decoded,
                    list.bytes_read,
                    blocks,
                );
            }
            if by_work.len() > max_lists {
                let rest = &by_work[max_lists..];
                let ids: u64 = rest.iter().map(|l| l.ids_decoded).sum();
                let _ = writeln!(
                    out,
                    "      ... {} more list(s), {} further ids decoded",
                    rest.len(),
                    ids
                );
            }
            let _ = writeln!(
                out,
                "    survivors: {} past cutoff {}",
                coarse.survivors.len(),
                self.max_candidates
            );
            for survivor in &coarse.survivors {
                let _ = writeln!(
                    out,
                    "      record {:>6}  score {:>10.3}  hits {:>5}  frame {:>5}  diag {:+}",
                    survivor.record,
                    survivor.score,
                    survivor.hits,
                    survivor.frame_hits,
                    survivor.best_diagonal,
                );
            }
            let kept = strand.candidates.iter().filter(|c| c.kept).count();
            let _ = writeln!(
                out,
                "    fine {}: {} aligned, {} kept (min_score {})",
                strand.fine_mode,
                strand.candidates.len(),
                kept,
                self.min_score,
            );
            for candidate in &strand.candidates {
                let _ = writeln!(
                    out,
                    "      record {:>6}  score {:>6}  {:>9.3} ms  {}",
                    candidate.record,
                    candidate.score,
                    candidate.nanos as f64 / 1e6,
                    if candidate.kept { "kept" } else { "dropped" },
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> ExplainPlan {
        ExplainPlan {
            query_len: 40,
            ranking: "frame:16".to_string(),
            max_candidates: 30,
            min_score: 1,
            strands: vec![StrandExplain {
                strand: Strand::Forward,
                coarse: CoarseExplain {
                    k: 4,
                    stopping: "none".to_string(),
                    skipping: true,
                    floor: 4,
                    lists: vec![
                        ListExplain {
                            code: 0b00011011, // ACGT
                            qlen: 2,
                            df: 17,
                            max_count: Some(3),
                            tau: 2,
                            ids_decoded: 12,
                            bytes_read: 96,
                            blocks_decoded: 1,
                            blocks_skipped: 1,
                            absent: false,
                        },
                        ListExplain {
                            code: 0,
                            qlen: 1,
                            absent: true,
                            ..ListExplain::default()
                        },
                    ],
                    survivors: vec![SurvivorExplain {
                        record: 3,
                        score: 9.0,
                        hits: 11,
                        frame_hits: 9,
                        best_diagonal: -2,
                    }],
                },
                fine_mode: "banded:24".to_string(),
                candidates: vec![
                    CandidateExplain {
                        record: 3,
                        score: 55,
                        nanos: 120_000,
                        kept: true,
                    },
                    CandidateExplain {
                        record: 7,
                        score: 0,
                        nanos: 90_000,
                        kept: false,
                    },
                ],
            }],
            results: 1,
            segments: vec![
                SegmentExplain {
                    label: "seg-000000".to_string(),
                    base: 0,
                    records: 5,
                },
                SegmentExplain {
                    label: "memtable".to_string(),
                    base: 5,
                    records: 2,
                },
            ],
        }
    }

    #[test]
    fn json_shape_round_trips_through_the_parser() {
        let plan = sample_plan();
        let rendered = plan.to_value().render();
        let parsed = nucdb_obs::json::parse(&rendered).unwrap();
        assert_eq!(parsed, plan.to_value());
        assert_eq!(parsed.get("query_len").and_then(Value::as_f64), Some(40.0));
        let Some(Value::Arr(strands)) = parsed.get("strands") else {
            panic!("no strands");
        };
        assert_eq!(strands.len(), 1);
        let coarse = strands[0].get("coarse").unwrap();
        assert_eq!(
            coarse.get("skipping"),
            Some(&Value::Bool(true)),
            "{rendered}"
        );
        let Some(Value::Arr(lists)) = coarse.get("lists") else {
            panic!("no lists");
        };
        assert_eq!(
            lists[0].get("interval").and_then(Value::as_str),
            Some("ACGT")
        );
        assert_eq!(lists[0].get("tau").and_then(Value::as_f64), Some(2.0));
        assert_eq!(lists[1].get("absent"), Some(&Value::Bool(true)));
    }

    #[test]
    fn text_tree_names_the_decisions() {
        let text = sample_plan().render_text(16);
        assert!(text.contains("skip plan ACTIVE"), "{text}");
        assert!(text.contains("ACGT"), "{text}");
        assert!(text.contains("survivors: 1"), "{text}");
        assert!(text.contains("dropped"), "{text}");
        assert!(text.contains("kept"), "{text}");
    }

    #[test]
    fn list_cap_summarizes_the_tail() {
        let mut plan = sample_plan();
        for code in 0..20u64 {
            plan.strands[0].coarse.lists.push(ListExplain {
                code,
                qlen: 1,
                df: 1,
                ids_decoded: 1,
                ..ListExplain::default()
            });
        }
        let text = plan.render_text(4);
        assert!(text.contains("more list(s)"), "{text}");
    }

    #[test]
    fn mode_names_match_the_cli_spelling() {
        assert_eq!(
            fine_mode_name(FineMode::Banded { half_width: 24 }),
            "banded:24"
        );
        assert_eq!(fine_mode_name(FineMode::Full), "full");
        assert_eq!(ranking_name(crate::RankingScheme::Count), "count");
        assert_eq!(
            ranking_name(crate::RankingScheme::Frame { window: 8 }),
            "frame:8"
        );
    }
}
