//! Retrieval-effectiveness evaluation.
//!
//! The paper's accuracy story is comparative: partitioned search trades a
//! little effectiveness for a lot of speed. Effectiveness is measured the
//! way the CAFE papers (and the IR tradition they come from) measure it:
//!
//! * **recall@k** against a relevant set — here either the planted
//!   homolog family (exact ground truth) or the top answers of an
//!   exhaustive Smith–Waterman ranking;
//! * **average precision** over a ranking (the single-number summary of
//!   the precision–recall curve);
//! * **11-point interpolated precision**, the classic TREC-era curve.

use std::collections::HashSet;

use nucdb_align::{ScanHit, ScoringScheme};
use nucdb_seq::Base;

use crate::baseline::exhaustive_sw;
use crate::store::RecordSource;

/// Exhaustive Smith–Waterman ranking of the store for `query` — the
/// ground truth the paper judges indexed retrieval against.
pub fn ground_truth_sw<S: RecordSource>(
    store: &S,
    query: &[Base],
    scheme: &ScoringScheme,
) -> Vec<ScanHit> {
    exhaustive_sw(store, query, scheme)
}

/// Fraction of `relevant` found within the first `k` entries of `ranked`.
/// 1.0 when `relevant` is empty (nothing to miss).
pub fn recall_at(ranked: &[u32], relevant: &HashSet<u32>, k: usize) -> f64 {
    if relevant.is_empty() {
        return 1.0;
    }
    let found = ranked
        .iter()
        .take(k)
        .filter(|r| relevant.contains(r))
        .count();
    found as f64 / relevant.len() as f64
}

/// Mean of precision values at each relevant rank (average precision).
/// Relevant records missing from `ranked` contribute zero.
pub fn average_precision(ranked: &[u32], relevant: &HashSet<u32>) -> f64 {
    if relevant.is_empty() {
        return 1.0;
    }
    let mut hits = 0usize;
    let mut sum = 0.0;
    for (rank, record) in ranked.iter().enumerate() {
        if relevant.contains(record) {
            hits += 1;
            sum += hits as f64 / (rank + 1) as f64;
        }
    }
    sum / relevant.len() as f64
}

/// Interpolated precision at the 11 standard recall points 0.0, 0.1, …,
/// 1.0: at each point, the maximum precision achieved at that recall or
/// beyond.
pub fn eleven_point_precision(ranked: &[u32], relevant: &HashSet<u32>) -> [f64; 11] {
    let mut curve = [0.0f64; 11];
    if relevant.is_empty() {
        return [1.0; 11];
    }
    // Precision/recall after each rank.
    let mut points: Vec<(f64, f64)> = Vec::new(); // (recall, precision)
    let mut hits = 0usize;
    for (rank, record) in ranked.iter().enumerate() {
        if relevant.contains(record) {
            hits += 1;
            points.push((
                hits as f64 / relevant.len() as f64,
                hits as f64 / (rank + 1) as f64,
            ));
        }
    }
    for (i, slot) in curve.iter_mut().enumerate() {
        let level = i as f64 / 10.0;
        *slot = points
            .iter()
            .filter(|(recall, _)| *recall + 1e-12 >= level)
            .map(|&(_, precision)| precision)
            .fold(0.0, f64::max);
    }
    curve
}

#[cfg(test)]
mod tests {
    use super::*;

    fn relevant(ids: &[u32]) -> HashSet<u32> {
        ids.iter().copied().collect()
    }

    #[test]
    fn recall_basic() {
        let ranked = vec![5, 3, 9, 1, 7];
        let rel = relevant(&[3, 7]);
        assert_eq!(recall_at(&ranked, &rel, 1), 0.0);
        assert_eq!(recall_at(&ranked, &rel, 2), 0.5);
        assert_eq!(recall_at(&ranked, &rel, 5), 1.0);
        assert_eq!(recall_at(&ranked, &rel, 100), 1.0);
    }

    #[test]
    fn recall_empty_relevant_is_one() {
        assert_eq!(recall_at(&[1, 2], &HashSet::new(), 1), 1.0);
    }

    #[test]
    fn ap_perfect_ranking_is_one() {
        let ranked = vec![1, 2, 3, 10, 11];
        let rel = relevant(&[1, 2, 3]);
        assert!((average_precision(&ranked, &rel) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ap_worst_ranking_is_low() {
        // Relevant at the very end of a long ranking.
        let mut ranked: Vec<u32> = (100..200).collect();
        ranked.push(1);
        let rel = relevant(&[1]);
        let ap = average_precision(&ranked, &rel);
        assert!((ap - 1.0 / 101.0).abs() < 1e-12);
    }

    #[test]
    fn ap_missing_relevant_penalised() {
        let ranked = vec![1];
        let rel = relevant(&[1, 2]); // 2 never retrieved
        assert!((average_precision(&ranked, &rel) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ap_known_mixed_case() {
        // Ranks: rel, non, rel → precisions 1/1 and 2/3, AP = (1 + 2/3)/2.
        let ranked = vec![4, 9, 6];
        let rel = relevant(&[4, 6]);
        assert!((average_precision(&ranked, &rel) - (1.0 + 2.0 / 3.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn eleven_point_perfect() {
        let ranked = vec![1, 2];
        let rel = relevant(&[1, 2]);
        let curve = eleven_point_precision(&ranked, &rel);
        assert!(curve.iter().all(|&p| (p - 1.0).abs() < 1e-12));
    }

    #[test]
    fn eleven_point_monotone_nonincreasing() {
        let ranked = vec![1, 50, 2, 51, 52, 3, 53, 4];
        let rel = relevant(&[1, 2, 3, 4]);
        let curve = eleven_point_precision(&ranked, &rel);
        for pair in curve.windows(2) {
            assert!(
                pair[0] + 1e-12 >= pair[1],
                "curve not non-increasing: {curve:?}"
            );
        }
        assert!(curve[0] > 0.9); // precision at recall 0 is the best seen
    }

    #[test]
    fn eleven_point_empty_relevant() {
        assert_eq!(eleven_point_precision(&[1, 2], &HashSet::new()), [1.0; 11]);
    }
}
