//! The database engine: sequence store + inverted index + partitioned
//! query evaluation.

use std::path::Path;
use std::time::Instant;

use nucdb_align::Alignment;
use nucdb_index::{
    CompressedIndex, FetchStats, IndexBuilder, IndexError, IndexParams, ListCodec, OnDiskIndex,
    PostingsList, PostingsVisitor,
};
use nucdb_seq::DnaSeq;

use nucdb_obs::{CaptureReason, Forensics, MetricsRegistry, QueryTrace, SpanNode, TraceSink};

use crate::coarse::{coarse_rank_explain, CoarseScratch, PostingsSource};
use crate::explain::{
    fine_mode_name, ranking_name, CandidateExplain, CoarseExplain, ExplainPlan, StrandExplain,
};
use crate::fine::{fine_search_traced, CandidateTiming, FineResult};
use crate::metrics::SearchMetrics;
use crate::params::{SearchParams, Strand};
use crate::store::{OnDiskStore, RecordSource, SequenceStore, StorageMode, StoreVariant};

/// Build-time configuration of a database.
#[derive(Debug, Clone)]
pub struct DbConfig {
    /// Interval index parameters.
    pub index: IndexParams,
    /// Postings codec.
    pub codec: ListCodec,
    /// Sequence storage mode.
    pub storage: StorageMode,
}

impl Default for DbConfig {
    fn default() -> DbConfig {
        DbConfig {
            index: IndexParams::new(8),
            codec: ListCodec::Paper,
            storage: StorageMode::DirectCoding,
        }
    }
}

/// The index backing a database: memory-resident or on disk.
pub enum IndexVariant {
    /// Fully in-memory compressed index.
    Memory(CompressedIndex),
    /// On-disk index with per-list fetching.
    Disk(OnDiskIndex),
    /// Ordered set of index parts (live ingestion segments + memtable).
    Segmented(crate::segment::SegmentedIndex),
}

impl PostingsSource for IndexVariant {
    fn num_records(&self) -> u32 {
        match self {
            IndexVariant::Memory(i) => i.num_records(),
            IndexVariant::Disk(i) => i.num_records(),
            IndexVariant::Segmented(i) => i.num_records(),
        }
    }

    fn record_lens(&self) -> &[u32] {
        match self {
            IndexVariant::Memory(i) => i.record_lens(),
            IndexVariant::Disk(i) => i.record_lens(),
            IndexVariant::Segmented(i) => i.record_lens(),
        }
    }

    fn index_params(&self) -> &IndexParams {
        match self {
            IndexVariant::Memory(i) => i.params(),
            IndexVariant::Disk(i) => i.params(),
            IndexVariant::Segmented(i) => i.index_params(),
        }
    }

    fn fetch(&self, code: u64) -> Result<Option<PostingsList>, IndexError> {
        match self {
            IndexVariant::Memory(i) => i.postings(code),
            IndexVariant::Disk(i) => i.postings(code),
            IndexVariant::Segmented(i) => i.fetch(code),
        }
    }

    fn fetch_counts(&self, code: u64) -> Result<Option<Vec<(u32, u32)>>, IndexError> {
        match self {
            IndexVariant::Memory(i) => i.counts(code),
            IndexVariant::Disk(i) => i.counts(code),
            IndexVariant::Segmented(i) => i.fetch_counts(code),
        }
    }

    fn fetch_with(
        &self,
        code: u64,
        io_buf: &mut Vec<u8>,
        visit: &mut dyn FnMut(u32, u32),
    ) -> Result<Option<u32>, IndexError> {
        match self {
            IndexVariant::Memory(i) => i.postings_with(code, visit),
            IndexVariant::Disk(i) => i.postings_with(code, io_buf, visit),
            IndexVariant::Segmented(i) => i.fetch_with(code, io_buf, visit),
        }
    }

    fn fetch_counts_with(
        &self,
        code: u64,
        io_buf: &mut Vec<u8>,
        visit: &mut dyn FnMut(u32, u32),
    ) -> Result<Option<u32>, IndexError> {
        match self {
            IndexVariant::Memory(i) => i.counts_with(code, visit),
            IndexVariant::Disk(i) => i.counts_with(code, io_buf, visit),
            IndexVariant::Segmented(i) => i.fetch_counts_with(code, io_buf, visit),
        }
    }

    fn list_max_count(&self, code: u64) -> Option<u32> {
        match self {
            IndexVariant::Memory(i) => i.list_max_count(code),
            IndexVariant::Disk(i) => i.list_max_count(code),
            IndexVariant::Segmented(i) => PostingsSource::list_max_count(i, code),
        }
    }

    fn fetch_stream(
        &self,
        code: u64,
        io_buf: &mut Vec<u8>,
        visitor: &mut dyn PostingsVisitor,
    ) -> Result<Option<FetchStats>, IndexError> {
        match self {
            IndexVariant::Memory(i) => i.postings_stream(code, visitor),
            IndexVariant::Disk(i) => i.postings_stream(code, io_buf, visitor),
            IndexVariant::Segmented(i) => i.fetch_stream(code, io_buf, visitor),
        }
    }

    fn fetch_counts_stream(
        &self,
        code: u64,
        io_buf: &mut Vec<u8>,
        visitor: &mut dyn PostingsVisitor,
    ) -> Result<Option<FetchStats>, IndexError> {
        match self {
            IndexVariant::Memory(i) => i.counts_stream(code, visitor),
            IndexVariant::Disk(i) => i.counts_stream(code, io_buf, visitor),
            IndexVariant::Segmented(i) => i.fetch_counts_stream(code, io_buf, visitor),
        }
    }
}

/// One answer to a query.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Record id within the collection.
    pub record: u32,
    /// The record's external identifier.
    pub id: String,
    /// Local alignment score from fine search.
    pub score: i32,
    /// Coarse score that promoted the record.
    pub coarse_score: f64,
    /// Total coarse interval hits.
    pub coarse_hits: u32,
    /// Which strand of the query produced this answer.
    pub strand: Strand,
    /// Full alignment when fine search ran with traceback (coordinates
    /// are in the searched strand's orientation).
    pub alignment: Option<Alignment>,
}

/// Per-query cost counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryStats {
    /// Distinct query intervals.
    pub intervals_looked_up: u64,
    /// Postings lists found and decoded.
    pub lists_fetched: u64,
    /// Postings entries decoded (entries inside skipped blocks are not
    /// counted).
    pub postings_decoded: u64,
    /// Compressed postings bytes read.
    pub postings_bytes_read: u64,
    /// Block-codec blocks unpacked.
    pub blocks_decoded: u64,
    /// Block-codec blocks proven hopeless and skipped undecoded.
    pub blocks_skipped: u64,
    /// Hit pairs accumulated.
    pub total_hits: u64,
    /// Candidates passed to fine search.
    pub candidates: u64,
    /// Alignments computed in fine search.
    pub fine_alignments: u64,
    /// Coarse stage wall time in nanoseconds.
    pub coarse_nanos: u64,
    /// Fine stage wall time in nanoseconds.
    pub fine_nanos: u64,
    /// Coarse sub-stage: interval extraction + code sort, nanoseconds.
    pub extract_nanos: u64,
    /// Coarse sub-stage: postings fetch + hit accumulation, nanoseconds.
    pub accumulate_nanos: u64,
    /// Coarse sub-stage: diagonal scatter + scoring + ranking, nanoseconds.
    pub rank_nanos: u64,
    /// Strand merge + result assembly wall time in nanoseconds.
    pub merge_nanos: u64,
}

/// Results plus cost counters.
#[derive(Debug, Clone, Default)]
pub struct SearchOutcome {
    /// Ranked answers, best first.
    pub results: Vec<SearchResult>,
    /// Cost counters.
    pub stats: QueryStats,
    /// The explain plan, when [`SearchParams::explain`] was set. Plans
    /// are passive observers: `results` and `stats` are bit-identical
    /// with or without one.
    pub explain: Option<ExplainPlan>,
}

/// Cap on per-candidate child spans under a `fine` span, so one query
/// with a huge candidate list cannot bloat a trace (and therefore the
/// flight recorder's memory bound). The slowest candidates are kept.
const MAX_CANDIDATE_SPANS: usize = 8;

/// Adapt a store-layer error to the engine's error type. Checksum
/// mismatches map variant-to-variant (so callers see one corruption type
/// regardless of which file failed); plain I/O errors pass through; the
/// rest surface as `InvalidData` I/O errors with the
/// [`nucdb_seq::SeqError`] reachable through `source()`. Every branch
/// satisfies [`IndexError::is_corruption`] when the cause is corrupt
/// bytes.
pub(crate) fn io_err(e: nucdb_seq::SeqError) -> IndexError {
    match e {
        nucdb_seq::SeqError::Corruption {
            section,
            offset,
            expected,
            actual,
        } => IndexError::Corruption {
            section,
            offset,
            expected,
            actual,
        },
        nucdb_seq::SeqError::Io(io) => IndexError::Io(io),
        other => IndexError::Io(std::io::Error::new(std::io::ErrorKind::InvalidData, other)),
    }
}

/// An indexed nucleotide database.
///
/// # Concurrency
///
/// The entire query path takes `&self`: [`Database::search`],
/// [`Database::search_with`], and [`Database::search_batch_parallel`]
/// never mutate the database, so a `Database` inside an
/// [`Arc`](std::sync::Arc) can serve any number of threads
/// concurrently with no external lock. Per-query mutable state lives in
/// the caller-owned [`CoarseScratch`]; everything the database itself
/// touches during a query is either immutable (vocabulary, postings,
/// stored sequences — on-disk variants use positional reads, so there
/// is no shared file cursor) or an interior atomic (the metric
/// counters, histograms, and I/O tallies behind [`SearchMetrics`],
/// which are relaxed `AtomicU64`s designed for concurrent writers).
///
/// The only `&mut self` methods are setup: [`Database::bind_metrics`],
/// [`Database::set_trace`], and the disk-conversion constructors.
/// Configure observability first, then share the database —
/// `nucdb-serve` follows exactly this pattern.
pub struct Database {
    store: StoreVariant,
    index: IndexVariant,
    /// Observability handles; fully detached (free) until
    /// [`Database::bind_metrics`] is called.
    metrics: SearchMetrics,
}

impl Database {
    /// Build an in-memory database from `(id, sequence)` records.
    pub fn build(
        records: impl IntoIterator<Item = (String, DnaSeq)>,
        config: &DbConfig,
    ) -> Database {
        let mut store = SequenceStore::new(config.storage);
        let mut builder = IndexBuilder::new(config.index.clone()).with_codec(config.codec);
        for (id, seq) in records {
            let bases = seq.representative_bases();
            store.add(id, &seq);
            builder.add_record(&bases);
        }
        Database {
            store: StoreVariant::Memory(store),
            index: IndexVariant::Memory(builder.finish()),
            metrics: SearchMetrics::disabled(),
        }
    }

    /// Assemble from already-built parts. The index must cover exactly
    /// the store's records.
    pub fn from_parts(store: SequenceStore, index: IndexVariant) -> Database {
        Database::from_variants(StoreVariant::Memory(store), index)
    }

    /// Assemble from any store/index variant combination.
    pub fn from_variants(store: StoreVariant, index: IndexVariant) -> Database {
        assert_eq!(
            RecordSource::len(&store) as u32,
            index.num_records(),
            "store and index disagree on record count"
        );
        Database {
            store,
            index,
            metrics: SearchMetrics::disabled(),
        }
    }

    /// Persist the index to `path` and reopen it in on-disk mode, so
    /// postings are fetched per query (the paper's disk setting).
    pub fn with_disk_index(self, path: &Path) -> Result<Database, IndexError> {
        let index = match self.index {
            IndexVariant::Memory(index) => {
                nucdb_index::write_index(&index, path)?;
                IndexVariant::Disk(OnDiskIndex::open(path)?)
            }
            other @ (IndexVariant::Disk(_) | IndexVariant::Segmented(_)) => other,
        };
        Ok(Database {
            store: self.store,
            index,
            metrics: self.metrics,
        })
    }

    /// Persist the sequence store to `path` and reopen it in on-disk
    /// mode, so candidate records are fetched per query — completing the
    /// paper's disk setting (index *and* collection on disk).
    pub fn with_disk_store(self, path: &Path) -> Result<Database, IndexError> {
        let store = match self.store {
            StoreVariant::Memory(store) => {
                store.write_to(path).map_err(io_err)?;
                StoreVariant::Disk(OnDiskStore::open(path).map_err(io_err)?)
            }
            other @ (StoreVariant::Disk(_) | StoreVariant::Segmented(_)) => other,
        };
        Ok(Database {
            store,
            index: self.index,
            metrics: self.metrics,
        })
    }

    /// Bind this database to a metrics registry: register the engine's
    /// stage histograms and counters, and migrate the on-disk index and
    /// store I/O counters onto registry-backed handles (their accumulated
    /// values carry over). Call after the final
    /// [`Database::with_disk_index`] / [`Database::with_disk_store`]
    /// conversion; binding to [`MetricsRegistry::disabled`] detaches
    /// everything again.
    pub fn bind_metrics(&mut self, registry: &MetricsRegistry) {
        let trace = std::mem::take(&mut self.metrics.trace);
        let forensics = std::mem::take(&mut self.metrics.forensics);
        self.metrics = SearchMetrics::new(registry)
            .with_trace(trace)
            .with_forensics(forensics);
        if let IndexVariant::Disk(index) = &mut self.index {
            index.bind_metrics(registry);
        }
        if let StoreVariant::Disk(store) = &mut self.store {
            store.bind_metrics(registry);
        }
    }

    /// Attach a sampled trace sink; subsequent queries emit JSONL events
    /// through it. Works with or without a bound metrics registry.
    pub fn set_trace(&mut self, trace: TraceSink) {
        trace.bind_dropped(self.metrics.trace_dropped.clone());
        self.metrics.trace = trace;
    }

    /// Attach a query-forensics handle (flight recorder + tail
    /// sampling); subsequent queries are captured per its configuration,
    /// independently of the trace sink's stride. Works with or without a
    /// bound metrics registry; like the other observability setters this
    /// is `&mut self` — configure before sharing the database.
    pub fn set_forensics(&mut self, forensics: Forensics) {
        let slow_log = forensics.slow_log();
        slow_log.bind_dropped(self.metrics.slow_log_dropped.clone());
        slow_log.bind_rotations(self.metrics.slow_log_rotations.clone());
        self.metrics.forensics = forensics;
    }

    /// The forensics handle bound to this database (disabled by default).
    pub fn forensics(&self) -> &Forensics {
        &self.metrics.forensics
    }

    /// Per-part rows for explain plans: empty unless this database is a
    /// segmented (live ingestion) view.
    pub fn segment_rows(&self) -> Vec<crate::explain::SegmentExplain> {
        match &self.index {
            IndexVariant::Segmented(i) => i.explain_rows(),
            _ => Vec::new(),
        }
    }

    /// The engine's observability handles.
    pub fn metrics(&self) -> &SearchMetrics {
        &self.metrics
    }

    /// The sequence store.
    pub fn store(&self) -> &StoreVariant {
        &self.store
    }

    /// The index.
    pub fn index(&self) -> &IndexVariant {
        &self.index
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        RecordSource::len(&self.store)
    }

    /// Is the database empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Run coarse + fine for one strand orientation of the query,
    /// accumulating cost counters into `stats`. When `spans` is given,
    /// a `coarse` span (children `extract`/`accumulate`/`rank`) and a
    /// `fine` span (children: the slowest candidates) are appended, each
    /// carrying its work counters; `query_start` anchors their offsets.
    #[allow(clippy::too_many_arguments)]
    fn search_strand(
        &self,
        query: &DnaSeq,
        params: &SearchParams,
        scratch: &mut CoarseScratch,
        stats: &mut QueryStats,
        query_start: Instant,
        strand_idx: u64,
        spans: Option<&mut Vec<SpanNode>>,
        explain: Option<&mut Vec<StrandExplain>>,
    ) -> Result<Vec<FineResult>, IndexError> {
        let query_bases = query.representative_bases();
        let mut coarse_explain = explain.is_some().then(CoarseExplain::default);
        let coarse_offset = query_start.elapsed().as_nanos() as u64;
        let coarse_start = Instant::now();
        let coarse = coarse_rank_explain(
            &self.index,
            &query_bases,
            params,
            scratch,
            coarse_explain.as_mut(),
        )?;
        let coarse_nanos = coarse_start.elapsed().as_nanos() as u64;
        stats.coarse_nanos += coarse_nanos;
        stats.extract_nanos += coarse.extract_nanos;
        stats.accumulate_nanos += coarse.accumulate_nanos;
        stats.rank_nanos += coarse.rank_nanos;
        stats.intervals_looked_up += coarse.intervals_looked_up;
        stats.lists_fetched += coarse.lists_fetched;
        stats.postings_decoded += coarse.postings_decoded;
        stats.postings_bytes_read += coarse.postings_bytes_read;
        stats.blocks_decoded += coarse.blocks_decoded;
        stats.blocks_skipped += coarse.blocks_skipped;
        stats.total_hits += coarse.total_hits;
        stats.candidates += coarse.candidates.len() as u64;
        stats.fine_alignments += coarse.candidates.len() as u64;

        // A record-granularity index reports no diagonals, so banded
        // fine alignment has nothing to centre on: fall back to full
        // local alignment (score-only) for correctness.
        let fine_mode = if self.index.index_params().granularity
            == nucdb_index::Granularity::Records
            && matches!(params.fine, crate::fine::FineMode::Banded { .. })
        {
            crate::fine::FineMode::Full
        } else {
            params.fine
        };

        let fine_offset = query_start.elapsed().as_nanos() as u64;
        let fine_start = Instant::now();
        let mut timings: Vec<CandidateTiming> = Vec::new();
        let fine = fine_search_traced(
            &self.store,
            query,
            &coarse.candidates,
            fine_mode,
            &params.scheme,
            params.min_score,
            (spans.is_some() || explain.is_some()).then_some(&mut timings),
        )
        .map_err(io_err);
        let fine_nanos = fine_start.elapsed().as_nanos() as u64;
        stats.fine_nanos += fine_nanos;

        // The explain candidates want alignment order; take them before
        // the span builder below re-sorts `timings` by duration.
        if let (Some(strands), Some(coarse_explain)) = (explain, coarse_explain) {
            strands.push(StrandExplain {
                strand: if strand_idx == 0 {
                    Strand::Forward
                } else {
                    Strand::Reverse
                },
                coarse: coarse_explain,
                fine_mode: fine_mode_name(fine_mode),
                candidates: timings
                    .iter()
                    .map(|t| CandidateExplain {
                        record: t.record,
                        score: t.score,
                        nanos: t.nanos,
                        kept: t.score >= params.min_score,
                    })
                    .collect(),
            });
        }

        if let Some(spans) = spans {
            spans.push(
                SpanNode::new("coarse", coarse_offset, coarse_nanos)
                    .counter("@strand", strand_idx)
                    .child(
                        SpanNode::new("extract", coarse_offset, coarse.extract_nanos)
                            .counter("intervals_looked_up", coarse.intervals_looked_up),
                    )
                    .child(
                        SpanNode::new(
                            "accumulate",
                            coarse_offset + coarse.extract_nanos,
                            coarse.accumulate_nanos,
                        )
                        .counter("lists_fetched", coarse.lists_fetched)
                        .counter("ids_decoded", coarse.postings_decoded)
                        .counter("postings_bytes_read", coarse.postings_bytes_read)
                        .counter("blocks_decoded", coarse.blocks_decoded)
                        .counter("blocks_skipped", coarse.blocks_skipped)
                        .counter("hits", coarse.total_hits),
                    )
                    .child(
                        SpanNode::new(
                            "rank",
                            coarse_offset + coarse.extract_nanos + coarse.accumulate_nanos,
                            coarse.rank_nanos,
                        )
                        .counter("candidates", coarse.candidates.len() as u64),
                    ),
            );

            let mut fine_span = SpanNode::new("fine", fine_offset, fine_nanos)
                .counter("@strand", strand_idx)
                .counter("alignments", coarse.candidates.len() as u64);
            // Keep only the slowest candidates so trace size stays bounded.
            timings.sort_by(|a, b| b.nanos.cmp(&a.nanos).then(a.record.cmp(&b.record)));
            for t in timings.iter().take(MAX_CANDIDATE_SPANS) {
                fine_span = fine_span.child(
                    SpanNode::new("candidate", fine_offset + t.start_ns, t.nanos)
                        .counter("@record", t.record as u64)
                        .counter("@score", t.score.max(0) as u64),
                );
            }
            spans.push(fine_span);
        }
        fine
    }

    /// Evaluate a query with partitioned search: coarse index ranking,
    /// then fine local alignment of the top candidates. With
    /// [`Strand::Both`], the query and its reverse complement are each
    /// evaluated and merged per record by best score.
    ///
    /// Allocates fresh coarse working memory; batch callers should hold a
    /// [`CoarseScratch`] and use [`Database::search_with`].
    pub fn search(
        &self,
        query: &DnaSeq,
        params: &SearchParams,
    ) -> Result<SearchOutcome, IndexError> {
        self.search_with(query, params, &mut CoarseScratch::new())
    }

    /// [`Database::search`] with caller-provided coarse working memory.
    /// One scratch serves any number of sequential queries without
    /// per-query allocation; results are independent of its history.
    ///
    /// A query that trips over on-disk corruption (checksum mismatch,
    /// structural violation, truncated read) fails with a typed error and
    /// increments `nucdb_io_corruption_total`; the database itself stays
    /// healthy and keeps serving queries that touch intact bytes.
    pub fn search_with(
        &self,
        query: &DnaSeq,
        params: &SearchParams,
        scratch: &mut CoarseScratch,
    ) -> Result<SearchOutcome, IndexError> {
        self.search_with_id(query, params, scratch, None)
    }

    /// [`Database::search_with`] carrying a caller-assigned request id,
    /// which flows into every span, trace line, and flight-recorder
    /// entry this query produces — `nucdb-serve` passes the id it echoed
    /// to the client, so a slow trace is joinable with the client's own
    /// records. Results are unaffected by the id.
    pub fn search_with_id(
        &self,
        query: &DnaSeq,
        params: &SearchParams,
        scratch: &mut CoarseScratch,
        request_id: Option<&str>,
    ) -> Result<SearchOutcome, IndexError> {
        let outcome = self.search_attempt(query, params, scratch, request_id);
        if let Err(e) = &outcome {
            if e.is_corruption() {
                self.metrics.io_corruption.inc();
            }
        }
        outcome
    }

    fn search_attempt(
        &self,
        query: &DnaSeq,
        params: &SearchParams,
        scratch: &mut CoarseScratch,
        request_id: Option<&str>,
    ) -> Result<SearchOutcome, IndexError> {
        // Decide capture up front: the flight recorder sees every query,
        // the stride sink its 1-in-K sample. Either one wants spans.
        let stride_sample = self.metrics.trace.should_sample();
        let capture = self.metrics.forensics.is_enabled() || stride_sample;
        // Collect an explain plan when asked, and also while tail
        // sampling is armed — a slow query is only known to be slow after
        // it finishes, so its explanation must already exist.
        let tail_armed = self
            .metrics
            .forensics
            .slow_threshold_ns()
            .is_some_and(|t| t < u64::MAX);
        let want_plan = params.explain || tail_armed;
        let mut strand_plans: Vec<StrandExplain> = Vec::new();

        // Deterministic latency injection for tail-sampler tests; only a
        // sleep, so results are bit-identical with or without it.
        let inject_ns = self.metrics.forensics.inject_delay_ns();
        if inject_ns > 0 {
            std::thread::sleep(std::time::Duration::from_nanos(inject_ns));
        }

        let query_start = Instant::now();
        let mut stats = QueryStats::default();
        let mut spans: Vec<SpanNode> = Vec::new();

        let strands = (|| -> Result<Vec<(Strand, FineResult)>, IndexError> {
            let mut merged: Vec<(Strand, FineResult)> = Vec::new();
            if params.strand != Strand::Reverse {
                for r in self.search_strand(
                    query,
                    params,
                    scratch,
                    &mut stats,
                    query_start,
                    0,
                    capture.then_some(&mut spans),
                    want_plan.then_some(&mut strand_plans),
                )? {
                    merged.push((Strand::Forward, r));
                }
            }
            if params.strand != Strand::Forward {
                let reverse = query.reverse_complement();
                for r in self.search_strand(
                    &reverse,
                    params,
                    scratch,
                    &mut stats,
                    query_start,
                    1,
                    capture.then_some(&mut spans),
                    want_plan.then_some(&mut strand_plans),
                )? {
                    merged.push((Strand::Reverse, r));
                }
            }
            Ok(merged)
        })();
        let mut merged = match strands {
            Ok(merged) => merged,
            Err(e) => {
                // Tail sampling: failed queries are always captured,
                // with whatever spans completed before the failure.
                self.capture_failure(query_start, request_id, &e, std::mem::take(&mut spans));
                return Err(e);
            }
        };

        // Per record, keep the better strand.
        let merge_start = Instant::now();
        merged.sort_by(|(_, a), (_, b)| a.record.cmp(&b.record).then(b.score.cmp(&a.score)));
        merged.dedup_by_key(|(_, r)| r.record);
        merged.sort_by(|(_, a), (_, b)| b.score.cmp(&a.score).then(a.record.cmp(&b.record)));

        let results: Vec<SearchResult> = merged
            .into_iter()
            .take(params.max_results)
            .map(|(strand, r)| SearchResult {
                record: r.record,
                id: self.store.id(r.record).to_string(),
                score: r.score,
                coarse_score: r.coarse.score,
                coarse_hits: r.coarse.hits,
                strand,
                alignment: r.alignment,
            })
            .collect();
        stats.merge_nanos = merge_start.elapsed().as_nanos() as u64;
        let merge_offset = merge_start.duration_since(query_start).as_nanos() as u64;
        let total_nanos = query_start.elapsed().as_nanos() as u64;

        let plan = want_plan.then(|| ExplainPlan {
            query_len: query.len(),
            ranking: ranking_name(params.ranking),
            max_candidates: params.max_candidates,
            min_score: params.min_score,
            segments: self.segment_rows(),
            strands: strand_plans,
            results: results.len(),
        });

        if self.metrics.is_enabled() {
            self.metrics.record_query(&stats, total_nanos);
        }
        if capture {
            let mut root = SpanNode::new("query", 0, total_nanos);
            root.children = std::mem::take(&mut spans);
            root.children.push(
                SpanNode::new("strand_merge", merge_offset, stats.merge_nanos)
                    .counter("results", results.len() as u64),
            );
            if stride_sample {
                self.metrics.trace.emit(&self.metrics.trace_event(
                    &stats,
                    &results,
                    total_nanos,
                    request_id,
                    Some(&root),
                ));
            }
            let trace = QueryTrace {
                request_id: request_id.unwrap_or("").to_string(),
                total_ns: total_nanos,
                results: results.len() as u64,
                error: None,
                root,
                plan: plan.as_ref().map(ExplainPlan::to_value),
            };
            if self.metrics.forensics.observe(trace) == CaptureReason::Slow {
                self.metrics.slow_queries.inc();
            }
        }

        Ok(SearchOutcome {
            results,
            stats,
            explain: params.explain.then_some(plan).flatten(),
        })
    }

    /// Record a failed query in the flight recorder (tail sampling
    /// captures every error), with whatever spans completed.
    fn capture_failure(
        &self,
        query_start: Instant,
        request_id: Option<&str>,
        error: &IndexError,
        spans: Vec<SpanNode>,
    ) {
        if !self.metrics.forensics.is_enabled() {
            return;
        }
        let total_ns = query_start.elapsed().as_nanos() as u64;
        let mut root = SpanNode::new("query", 0, total_ns);
        root.children = spans;
        self.metrics.forensics.observe(QueryTrace {
            request_id: request_id.unwrap_or("").to_string(),
            total_ns,
            results: 0,
            error: Some(error.to_string()),
            root,
            plan: None,
        });
    }

    /// Append new records to a memory-backed database: the batch is
    /// indexed alone and merged into the existing index (the maintenance
    /// path for a growing archive). Errors if the index is on disk or
    /// was built with stopping (re-apply stopping after appending via
    /// [`nucdb_index::apply_stopping`]).
    pub fn append_records(
        &mut self,
        records: impl IntoIterator<Item = (String, DnaSeq)>,
    ) -> Result<(), IndexError> {
        let IndexVariant::Memory(existing) = &self.index else {
            return Err(IndexError::Unsupported(
                "append requires a memory-backed index; reopen the database in memory",
            ));
        };
        let StoreVariant::Memory(store) = &mut self.store else {
            return Err(IndexError::Unsupported(
                "append requires a memory-backed store; reopen the database in memory",
            ));
        };
        let mut builder = IndexBuilder::new(existing.params().clone()).with_codec(existing.codec());
        let mut staged: Vec<(String, DnaSeq)> = Vec::new();
        for (id, seq) in records {
            builder.add_record(&seq.representative_bases());
            staged.push((id, seq));
        }
        let merged = nucdb_index::merge_indexes(existing, &builder.finish())?;
        for (id, seq) in staged {
            store.add(id, &seq);
        }
        self.index = IndexVariant::Memory(merged);
        debug_assert_eq!(
            RecordSource::len(&self.store) as u32,
            self.index.num_records()
        );
        Ok(())
    }

    /// Evaluate a batch of queries sequentially, reusing one coarse
    /// scratch across the whole batch.
    pub fn search_batch(
        &self,
        queries: &[DnaSeq],
        params: &SearchParams,
    ) -> Result<Vec<SearchOutcome>, IndexError> {
        self.search_batch_with_ids(queries, None, params)
    }

    fn search_batch_with_ids(
        &self,
        queries: &[DnaSeq],
        request_ids: Option<&[String]>,
        params: &SearchParams,
    ) -> Result<Vec<SearchOutcome>, IndexError> {
        let mut scratch = CoarseScratch::new();
        queries
            .iter()
            .enumerate()
            .map(|(i, q)| {
                let id = request_ids.map(|ids| ids[i].as_str());
                self.search_with_id(q, params, &mut scratch, id)
            })
            .collect()
    }

    /// Evaluate a batch of queries across `num_threads` worker threads.
    ///
    /// The database is shared read-only and every stage is contention
    /// free: each worker owns a private [`CoarseScratch`], and the
    /// on-disk index and store serve concurrent positional reads without
    /// a shared file cursor or lock. Output order matches `queries`.
    /// Results are identical to [`Database::search_batch`].
    pub fn search_batch_parallel(
        &self,
        queries: &[DnaSeq],
        params: &SearchParams,
        num_threads: usize,
    ) -> Result<Vec<SearchOutcome>, IndexError> {
        self.search_batch_parallel_with_ids(queries, None, params, num_threads)
    }

    /// [`Database::search_batch_parallel`] with per-query request ids
    /// (parallel slice, same length as `queries`) threaded into spans,
    /// trace lines, and flight-recorder entries. Results are identical
    /// to the id-less form.
    pub fn search_batch_parallel_with_ids(
        &self,
        queries: &[DnaSeq],
        request_ids: Option<&[String]>,
        params: &SearchParams,
        num_threads: usize,
    ) -> Result<Vec<SearchOutcome>, IndexError> {
        if let Some(ids) = request_ids {
            assert_eq!(
                ids.len(),
                queries.len(),
                "request_ids must parallel queries"
            );
        }
        let num_threads = num_threads.max(1).min(queries.len().max(1));
        if num_threads <= 1 {
            return self.search_batch_with_ids(queries, request_ids, params);
        }
        // Work-stealing by atomic counter; each worker returns its
        // (index, outcome) pairs and the batch is reassembled in order.
        let next = std::sync::atomic::AtomicUsize::new(0);
        let unordered: Vec<(usize, Result<SearchOutcome, IndexError>)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..num_threads)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut scratch = CoarseScratch::new();
                            let mut local = Vec::new();
                            loop {
                                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                if i >= queries.len() {
                                    break;
                                }
                                let id = request_ids.map(|ids| ids[i].as_str());
                                local.push((
                                    i,
                                    self.search_with_id(&queries[i], params, &mut scratch, id),
                                ));
                            }
                            local
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("search worker panicked"))
                    .collect()
            });

        let mut ordered: Vec<Option<Result<SearchOutcome, IndexError>>> =
            (0..queries.len()).map(|_| None).collect();
        for (i, outcome) in unordered {
            ordered[i] = Some(outcome);
        }
        ordered
            .into_iter()
            .map(|slot| slot.expect("every query evaluated"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coarse::RankingScheme;
    use crate::fine::FineMode;
    use nucdb_seq::random::{CollectionSpec, MutationModel, SyntheticCollection};

    fn build_db(seed: u64) -> (SyntheticCollection, Database) {
        let coll = SyntheticCollection::generate(&CollectionSpec::tiny(seed));
        let db = Database::build(
            coll.records.iter().map(|r| (r.id.clone(), r.seq.clone())),
            &DbConfig::default(),
        );
        (coll, db)
    }

    #[test]
    fn planted_family_is_retrieved() {
        let (coll, db) = build_db(51);
        let query = coll.query_for_family(0, 0.7, &MutationModel::substitutions(0.03));
        let outcome = db.search(&query, &SearchParams::default()).unwrap();
        assert!(!outcome.results.is_empty());
        let retrieved: Vec<u32> = outcome.results.iter().map(|r| r.record).collect();
        let found = coll.families[0]
            .member_ids
            .iter()
            .filter(|m| retrieved.contains(m))
            .count();
        assert!(
            found >= coll.families[0].member_ids.len() - 1,
            "only {found} of {} members retrieved",
            coll.families[0].member_ids.len()
        );
        // Results are sorted by score.
        for pair in outcome.results.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }

    #[test]
    fn unrelated_query_returns_little() {
        let (coll, db) = build_db(52);
        let query = coll.random_query(300);
        let outcome = db.search(&query, &SearchParams::default()).unwrap();
        // Random local alignments of a 300-mer against unrelated records
        // score noise-level (tens); a planted homolog scores hundreds.
        // Nothing homolog-strength may surface for a random query.
        for result in &outcome.results {
            assert!(
                result.score < 150,
                "random query found a strong hit: record {} score {}",
                result.record,
                result.score
            );
        }
        let related = coll.query_for_family(0, 0.5, &MutationModel::substitutions(0.03));
        let outcome = db.search(&related, &SearchParams::default()).unwrap();
        // A homolog at ~13% total divergence still aligns most of its
        // length: demand well over half the perfect-match score.
        let floor = related.len() as i32 * 3; // 60% of the +5/base maximum
        assert!(
            outcome.results[0].score >= floor,
            "homolog query only scored {} (floor {floor})",
            outcome.results[0].score
        );
    }

    #[test]
    fn stats_are_populated() {
        let (coll, db) = build_db(53);
        let query = coll.query_for_family(1, 0.5, &MutationModel::identity());
        let outcome = db.search(&query, &SearchParams::default()).unwrap();
        let s = outcome.stats;
        assert!(s.intervals_looked_up > 0);
        assert!(s.lists_fetched > 0);
        assert!(s.candidates > 0);
        assert!(s.total_hits >= s.candidates);
    }

    #[test]
    fn traceback_mode_carries_alignment() {
        let (coll, db) = build_db(54);
        let query = coll.query_for_family(0, 0.5, &MutationModel::identity());
        let params = SearchParams::default().with_fine(FineMode::FullWithTraceback);
        let outcome = db.search(&query, &params).unwrap();
        let top = &outcome.results[0];
        let alignment = top.alignment.as_ref().expect("traceback requested");
        assert_eq!(alignment.score, top.score);
        assert!(alignment.is_consistent());
        assert!(alignment.identity() > 0.8);
    }

    #[test]
    fn all_rankings_find_exact_member() {
        let (coll, db) = build_db(55);
        // An exact fragment of a stored record must be found by every
        // ranking scheme.
        let member = coll.families[2].member_ids[0];
        let range = coll.families[2].embedded_ranges[0].clone();
        let query = coll.records[member as usize].seq.subseq(range);
        for ranking in [
            RankingScheme::Count,
            RankingScheme::Proportional,
            RankingScheme::Frame { window: 16 },
        ] {
            let params = SearchParams::default().with_ranking(ranking);
            let outcome = db.search(&query, &params).unwrap();
            assert!(
                outcome.results.iter().any(|r| r.record == member),
                "{ranking:?} missed the exact member"
            );
        }
    }

    #[test]
    fn empty_database_returns_nothing() {
        let db = Database::build(std::iter::empty(), &DbConfig::default());
        assert!(db.is_empty());
        let query = DnaSeq::from_ascii(b"ACGTACGTACGTACGT").unwrap();
        let outcome = db.search(&query, &SearchParams::default()).unwrap();
        assert!(outcome.results.is_empty());
    }

    #[test]
    fn short_query_returns_nothing() {
        let (_, db) = build_db(56);
        let query = DnaSeq::from_ascii(b"ACG").unwrap(); // below k
        let outcome = db.search(&query, &SearchParams::default()).unwrap();
        assert!(outcome.results.is_empty());
    }

    #[test]
    #[should_panic(expected = "disagree on record count")]
    fn mismatched_parts_rejected() {
        let (_, db) = build_db(57);
        let store = SequenceStore::new(crate::store::StorageMode::Ascii);
        let Database { index, .. } = db;
        let _ = Database::from_parts(store, index);
    }

    #[test]
    fn reverse_complement_homolog_found_only_with_both_strands() {
        let (coll, db) = build_db(59);
        // Query with the reverse complement of a stored fragment: the
        // forward search must miss it, the both-strands search must find
        // it with the same score a forward query of the fragment gets.
        let member = coll.families[1].member_ids[0];
        let range = coll.families[1].embedded_ranges[0].clone();
        let fragment = coll.records[member as usize].seq.subseq(range);
        let rc_query = fragment.reverse_complement();

        let forward_only = db.search(&rc_query, &SearchParams::default()).unwrap();
        assert!(
            !forward_only
                .results
                .iter()
                .any(|r| r.record == member && r.score > 100),
            "forward-only search should not strongly match the rc query"
        );

        let both = SearchParams::default().with_strand(Strand::Both);
        let outcome = db.search(&rc_query, &both).unwrap();
        let hit = outcome
            .results
            .iter()
            .find(|r| r.record == member)
            .expect("both-strands search finds the member");
        assert_eq!(hit.strand, Strand::Reverse);

        let direct = db.search(&fragment, &SearchParams::default()).unwrap();
        let direct_hit = direct.results.iter().find(|r| r.record == member).unwrap();
        assert_eq!(hit.score, direct_hit.score);
    }

    #[test]
    fn reverse_only_strand_mode() {
        let (coll, db) = build_db(60);
        let member = coll.families[0].member_ids[0];
        let range = coll.families[0].embedded_ranges[0].clone();
        let fragment = coll.records[member as usize].seq.subseq(range);
        let rc_query = fragment.reverse_complement();
        let params = SearchParams::default().with_strand(Strand::Reverse);
        let outcome = db.search(&rc_query, &params).unwrap();
        assert!(outcome.results.iter().any(|r| r.record == member));
        assert!(outcome.results.iter().all(|r| r.strand == Strand::Reverse));
    }

    #[test]
    fn record_granularity_database_still_retrieves() {
        use nucdb_index::{Granularity, IndexParams};
        let coll = SyntheticCollection::generate(&CollectionSpec::tiny(64));
        let config = DbConfig {
            index: IndexParams::new(8).with_granularity(Granularity::Records),
            ..DbConfig::default()
        };
        let db = Database::build(
            coll.records.iter().map(|r| (r.id.clone(), r.seq.clone())),
            &config,
        );

        // Frame ranking is impossible without offsets.
        let query = coll.query_for_family(0, 0.6, &MutationModel::identity());
        let frame = SearchParams::default();
        assert!(db.search(&query, &frame).is_err());

        // Count ranking + (automatic) full fine alignment works and finds
        // the family.
        let count = SearchParams::default().with_ranking(RankingScheme::Count);
        let outcome = db.search(&query, &count).unwrap();
        let retrieved: Vec<u32> = outcome.results.iter().map(|r| r.record).collect();
        let found = coll.families[0]
            .member_ids
            .iter()
            .filter(|m| retrieved.contains(m))
            .count();
        assert!(
            found >= coll.families[0].member_ids.len() - 1,
            "found {found}"
        );

        // The record-granularity index is smaller than the offset one.
        let offsets_db = Database::build(
            coll.records.iter().map(|r| (r.id.clone(), r.seq.clone())),
            &DbConfig::default(),
        );
        let (IndexVariant::Memory(small), IndexVariant::Memory(big)) =
            (db.index(), offsets_db.index())
        else {
            unreachable!()
        };
        assert!(small.stats().blob_bytes * 2 < big.stats().blob_bytes);
    }

    #[test]
    fn record_granularity_disk_round_trip() {
        use nucdb_index::{Granularity, IndexParams};
        let coll = SyntheticCollection::generate(&CollectionSpec::tiny(65));
        let config = DbConfig {
            index: IndexParams::new(8).with_granularity(Granularity::Records),
            ..DbConfig::default()
        };
        let db = Database::build(
            coll.records.iter().map(|r| (r.id.clone(), r.seq.clone())),
            &config,
        );
        let dir = std::env::temp_dir().join(format!("nucdb_gran_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let db = db.with_disk_index(&dir.join("idx.nucidx")).unwrap();
        let query = coll.query_for_family(1, 0.6, &MutationModel::identity());
        let params = SearchParams::default().with_ranking(RankingScheme::Count);
        let outcome = db.search(&query, &params).unwrap();
        assert!(outcome
            .results
            .iter()
            .any(|r| coll.families[1].member_ids.contains(&r.record)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_equals_rebuild() {
        let coll_a = SyntheticCollection::generate(&CollectionSpec::tiny(61));
        let coll_b = SyntheticCollection::generate(&CollectionSpec::tiny(62));
        let all: Vec<(String, DnaSeq)> = coll_a
            .records
            .iter()
            .chain(&coll_b.records)
            .map(|r| (r.id.clone(), r.seq.clone()))
            .collect();

        let mut incremental = Database::build(
            coll_a.records.iter().map(|r| (r.id.clone(), r.seq.clone())),
            &DbConfig::default(),
        );
        incremental
            .append_records(coll_b.records.iter().map(|r| (r.id.clone(), r.seq.clone())))
            .unwrap();

        let rebuilt = Database::build(all, &DbConfig::default());
        assert_eq!(incremental.len(), rebuilt.len());

        // Queries against family 0 of the appended batch behave as if
        // built jointly.
        let query = coll_b.query_for_family(0, 0.6, &MutationModel::identity());
        let params = SearchParams::default();
        let a: Vec<(u32, i32)> = incremental
            .search(&query, &params)
            .unwrap()
            .results
            .iter()
            .map(|r| (r.record, r.score))
            .collect();
        let b: Vec<(u32, i32)> = rebuilt
            .search(&query, &params)
            .unwrap()
            .results
            .iter()
            .map(|r| (r.record, r.score))
            .collect();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn append_to_disk_index_rejected() {
        let (_, db) = build_db(63);
        let dir = std::env::temp_dir().join(format!("nucdb_append_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut db = db.with_disk_index(&dir.join("idx.nucidx")).unwrap();
        let extra = DnaSeq::from_ascii(b"ACGTACGTACGTACGT").unwrap();
        assert!(db.append_records([("x".to_string(), extra)]).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn max_results_respected() {
        let (coll, db) = build_db(58);
        let query = coll.query_for_family(0, 0.8, &MutationModel::identity());
        let params = SearchParams {
            max_results: 2,
            min_score: 1,
            ..SearchParams::default()
        };
        let outcome = db.search(&query, &params).unwrap();
        assert!(outcome.results.len() <= 2);
    }
}
