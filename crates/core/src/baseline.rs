//! Exhaustive baselines: the search strategies the paper compares
//! partitioned search against, run over the same sequence store.
//!
//! * [`exhaustive_sw`] — full Smith–Waterman against every record: the
//!   gold standard for answer quality and the ground truth for the
//!   accuracy experiments, but quadratic per record.
//! * [`exhaustive_fasta`] — the FASTA-style k-tuple scan.
//! * [`exhaustive_blast`] — the BLAST1-style word-hit scan.
//!
//! All three touch every record of the collection on every query; their
//! cost grows linearly with collection size regardless of how few records
//! are relevant — the motivation for indexing in the first place.

use nucdb_align::{
    blast_score, fasta_score, sw_score, BlastParams, FastaParams, ScanHit, ScoringScheme, WordTable,
};
use nucdb_seq::Base;

use crate::store::RecordSource;

/// Rank every record by full Smith–Waterman score (descending; positive
/// scores only, ties by ascending record id).
pub fn exhaustive_sw<S: RecordSource>(
    store: &S,
    query: &[Base],
    scheme: &ScoringScheme,
) -> Vec<ScanHit> {
    let mut hits: Vec<ScanHit> = (0..store.len() as u32)
        .filter_map(|record| {
            let target = store.bases(record);
            let score = sw_score(query, &target, scheme);
            (score > 0).then_some(ScanHit { id: record, score })
        })
        .collect();
    hits.sort_by(|a, b| b.score.cmp(&a.score).then(a.id.cmp(&b.id)));
    hits
}

/// Rank every record with the FASTA-style scanner.
pub fn exhaustive_fasta<S: RecordSource>(
    store: &S,
    query: &[Base],
    params: &FastaParams,
    scheme: &ScoringScheme,
) -> Vec<ScanHit> {
    let table = WordTable::build(query, params.ktup);
    let mut hits: Vec<ScanHit> = (0..store.len() as u32)
        .filter_map(|record| {
            let target = store.bases(record);
            let score = fasta_score(&table, query, &target, params, scheme);
            (score > 0).then_some(ScanHit { id: record, score })
        })
        .collect();
    hits.sort_by(|a, b| b.score.cmp(&a.score).then(a.id.cmp(&b.id)));
    hits
}

/// Rank every record with the BLAST-style scanner.
pub fn exhaustive_blast<S: RecordSource>(
    store: &S,
    query: &[Base],
    params: &BlastParams,
    scheme: &ScoringScheme,
) -> Vec<ScanHit> {
    let table = WordTable::build(query, params.word_len);
    let mut hits: Vec<ScanHit> = (0..store.len() as u32)
        .filter_map(|record| {
            let target = store.bases(record);
            let score = blast_score(&table, query, &target, params, scheme);
            (score > 0).then_some(ScanHit { id: record, score })
        })
        .collect();
    hits.sort_by(|a, b| b.score.cmp(&a.score).then(a.id.cmp(&b.id)));
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{SequenceStore, StorageMode};
    use nucdb_seq::random::{CollectionSpec, MutationModel, SyntheticCollection};
    use nucdb_seq::DnaSeq;

    fn setup(seed: u64) -> (SyntheticCollection, SequenceStore) {
        let coll = SyntheticCollection::generate(&CollectionSpec::tiny(seed));
        let mut store = SequenceStore::new(StorageMode::DirectCoding);
        for record in &coll.records {
            store.add(record.id.clone(), &record.seq);
        }
        (coll, store)
    }

    #[test]
    fn sw_ranks_family_members_on_top() {
        let (coll, store) = setup(61);
        let query = coll.query_for_family(0, 0.6, &MutationModel::substitutions(0.02));
        let qb = query.representative_bases();
        let hits = exhaustive_sw(&store, &qb, &ScoringScheme::blastn());
        let members = &coll.families[0].member_ids;
        let top: Vec<u32> = hits.iter().take(members.len()).map(|h| h.id).collect();
        let found = members.iter().filter(|m| top.contains(m)).count();
        assert!(
            found >= members.len() - 1,
            "{found}/{} members in SW top",
            members.len()
        );
    }

    #[test]
    fn heuristics_agree_with_sw_on_clear_answers() {
        // Query with an exact fragment of a stored record: every scanner
        // must rank that record first with the full-match score.
        let (coll, store) = setup(62);
        let member = coll.families[1].member_ids[0];
        let range = coll.families[1].embedded_ranges[0].clone();
        let query = coll.records[member as usize].seq.subseq(range);
        let qb = query.representative_bases();
        let scheme = ScoringScheme::blastn();
        let sw = exhaustive_sw(&store, &qb, &scheme);
        let fasta = exhaustive_fasta(&store, &qb, &FastaParams::default(), &scheme);
        let blast = exhaustive_blast(&store, &qb, &BlastParams::default(), &scheme);
        assert_eq!(sw[0].id, member);
        assert_eq!(fasta[0].id, member);
        assert_eq!(blast[0].id, member);
        let full = qb.len() as i32 * scheme.match_score;
        assert_eq!(sw[0].score, full);
        assert_eq!(blast[0].score, full);
    }

    #[test]
    fn empty_store_yields_no_hits() {
        let store = SequenceStore::new(StorageMode::Ascii);
        let qb = DnaSeq::from_ascii(b"ACGTACGTACGTACGT")
            .unwrap()
            .representative_bases();
        assert!(exhaustive_sw(&store, &qb, &ScoringScheme::blastn()).is_empty());
        assert!(exhaustive_fasta(
            &store,
            &qb,
            &FastaParams::default(),
            &ScoringScheme::blastn()
        )
        .is_empty());
        assert!(exhaustive_blast(
            &store,
            &qb,
            &BlastParams::default(),
            &ScoringScheme::blastn()
        )
        .is_empty());
    }

    #[test]
    fn heuristic_scores_never_exceed_sw() {
        // FASTA (banded SW rescoring) and BLAST (ungapped HSP) both lower-
        // bound the true local alignment score.
        let (coll, store) = setup(63);
        let query = coll.query_for_family(2, 0.4, &MutationModel::substitutions(0.05));
        let qb = query.representative_bases();
        let scheme = ScoringScheme::blastn();
        let sw: std::collections::HashMap<u32, i32> = exhaustive_sw(&store, &qb, &scheme)
            .into_iter()
            .map(|h| (h.id, h.score))
            .collect();
        for h in exhaustive_fasta(&store, &qb, &FastaParams::default(), &scheme) {
            assert!(h.score <= sw[&h.id], "fasta {} > sw {}", h.score, sw[&h.id]);
        }
        for h in exhaustive_blast(&store, &qb, &BlastParams::default(), &scheme) {
            assert!(h.score <= sw[&h.id], "blast {} > sw {}", h.score, sw[&h.id]);
        }
    }
}
