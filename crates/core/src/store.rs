//! The sequence store: where fine search reads candidate records from.
//!
//! The paper's system keeps the collection itself alongside the index, and
//! fine search retrieves candidate records *in relevance order* — so
//! records must be independently decodable. Two storage modes exist so
//! experiment **E6** can reproduce the direct-coding comparison:
//!
//! * [`StorageMode::Ascii`] — one byte per base, the uncompressed
//!   baseline (what a FASTA-backed store effectively costs).
//! * [`StorageMode::DirectCoding`] — the 2-bit packed representation with
//!   a wildcard exception list ([`nucdb_seq::PackedSeq`]); a quarter the
//!   space and faster to hand to alignment, which is why the CAFE system
//!   reported >20% faster retrieval after adopting it.
//!
//! On-disk format, version 2 (current, written by
//! [`SequenceStore::write_to`]):
//!
//! ```text
//! magic "NUCSTO02"
//! toc_len:u32le  toc_crc:u32le      — IEEE CRC-32 of the TOC bytes
//! toc:
//!   mode:u8  count:v
//!   (id_len:v  id  seq_len:v  blob_len:v  blob_crc:v)*
//! payload: record blobs, concatenated in record order
//! ```
//!
//! Version 1 (legacy, still loadable; [`SequenceStore::write_to_v1`]
//! kept for compatibility tests) interleaves `(id_len:v id blob_len:v
//! blob)*` with no checksums, magic `NUCSTO01`. (`v` = LEB128-style
//! varint.)
//!
//! Every byte of a v2 file is covered by a checksum — the TOC by
//! `toc_crc`, each payload blob by its `blob_crc` — so corruption is
//! detected at load ([`SequenceStore::read_from`]) or, on the
//! [`OnDiskStore`] pread path, the moment the affected record is
//! fetched, as a typed [`SeqError::Corruption`]. Files are written
//! through [`AtomicFile`], so a crashed build never leaves a torn store.

use std::fs::File;
use std::io::{self, BufReader, Read, Seek, SeekFrom, Write};
use std::path::Path;

use nucdb_index::durable::{crc32, read_exact_chunked, AtomicFile, CountingReader};
use nucdb_index::fault::{FaultPlan, FaultyFile};
use nucdb_index::PositionalReader;
use nucdb_obs::{Counter, MetricsRegistry};
use nucdb_seq::{Base, DnaSeq, PackedSeq, SeqError};

const MAGIC_V2: &[u8; 8] = b"NUCSTO02";
const MAGIC_V1: &[u8; 8] = b"NUCSTO01";
/// Bytes before the TOC in a v2 file: magic + toc_len + toc_crc.
const V2_PREFIX_LEN: u64 = 16;

/// Anything fine search (and the exhaustive baselines) can read candidate
/// records from: the in-memory store, the on-disk store, or the engine's
/// variant wrapper.
pub trait RecordSource {
    /// Number of records.
    fn len(&self) -> usize;
    /// Is the source empty?
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// External identifier of a record.
    fn id(&self, record: u32) -> &str;
    /// Record length in bases.
    fn record_len(&self, record: u32) -> usize;
    /// Representative-base view of a record (wildcards collapsed).
    /// In-memory sources cannot fail; on-disk sources may panic on I/O
    /// errors — query paths must use [`RecordSource::try_bases`].
    fn bases(&self, record: u32) -> Vec<Base>;
    /// Fallible variant of [`RecordSource::bases`]: surfaces read and
    /// corruption errors from on-disk sources instead of panicking. This
    /// is what the search engine calls.
    fn try_bases(&self, record: u32) -> Result<Vec<Base>, SeqError> {
        Ok(self.bases(record))
    }
    /// Lossless decode of a record.
    fn sequence(&self, record: u32) -> Result<DnaSeq, SeqError>;
    /// Total bases across records.
    fn total_bases(&self) -> usize {
        (0..self.len() as u32).map(|r| self.record_len(r)).sum()
    }
}

/// How record sequences are stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StorageMode {
    /// One ASCII byte per base.
    Ascii,
    /// 2-bit direct coding with wildcard exceptions (the paper's choice).
    #[default]
    DirectCoding,
}

impl StorageMode {
    fn tag(self) -> u8 {
        match self {
            StorageMode::Ascii => 0,
            StorageMode::DirectCoding => 1,
        }
    }

    fn from_tag(tag: u8, offset: u64) -> Result<StorageMode, SeqError> {
        match tag {
            0 => Ok(StorageMode::Ascii),
            1 => Ok(StorageMode::DirectCoding),
            _ => Err(SeqError::corrupt_at(
                "unknown storage mode",
                "store-header",
                offset,
            )),
        }
    }
}

#[derive(Debug, Clone)]
enum StoredSeq {
    Ascii(Vec<u8>),
    Packed(PackedSeq),
}

/// An in-memory store of named records supporting independent access.
#[derive(Debug, Clone, Default)]
pub struct SequenceStore {
    mode: StorageMode,
    ids: Vec<String>,
    seqs: Vec<StoredSeq>,
}

impl SequenceStore {
    /// An empty store.
    pub fn new(mode: StorageMode) -> SequenceStore {
        SequenceStore {
            mode,
            ids: Vec::new(),
            seqs: Vec::new(),
        }
    }

    /// Append a record; returns its id (consecutive from 0).
    pub fn add(&mut self, id: impl Into<String>, seq: &DnaSeq) -> u32 {
        let record = self.seqs.len() as u32;
        self.ids.push(id.into());
        self.seqs.push(match self.mode {
            StorageMode::Ascii => StoredSeq::Ascii(seq.to_ascii_vec()),
            StorageMode::DirectCoding => StoredSeq::Packed(PackedSeq::pack(seq)),
        });
        record
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.seqs.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.seqs.is_empty()
    }

    /// Storage mode.
    pub fn mode(&self) -> StorageMode {
        self.mode
    }

    /// The external identifier of record `record`.
    pub fn id(&self, record: u32) -> &str {
        &self.ids[record as usize]
    }

    /// Record length in bases.
    pub fn record_len(&self, record: u32) -> usize {
        match &self.seqs[record as usize] {
            StoredSeq::Ascii(a) => a.len(),
            StoredSeq::Packed(p) => p.len(),
        }
    }

    /// Decode record `record` to representative bases (the alignment
    /// view; wildcards collapse).
    pub fn bases(&self, record: u32) -> Vec<Base> {
        match &self.seqs[record as usize] {
            StoredSeq::Ascii(ascii) => ascii
                .iter()
                .map(|&b| {
                    nucdb_seq::IupacCode::from_ascii(b)
                        .expect("store contains only validated bases")
                        .representative()
                })
                .collect(),
            StoredSeq::Packed(packed) => packed.unpack_bases(),
        }
    }

    /// Decode record `record` losslessly (wildcards restored).
    pub fn sequence(&self, record: u32) -> Result<DnaSeq, SeqError> {
        match &self.seqs[record as usize] {
            StoredSeq::Ascii(ascii) => DnaSeq::from_ascii(ascii),
            StoredSeq::Packed(packed) => Ok(packed.unpack()),
        }
    }

    /// Bytes the stored sequences occupy (the quantity E6 compares).
    pub fn stored_bytes(&self) -> usize {
        self.seqs
            .iter()
            .map(|s| match s {
                StoredSeq::Ascii(a) => a.len(),
                StoredSeq::Packed(p) => p.packed_bytes(),
            })
            .sum()
    }

    /// Total bases across records.
    pub fn total_bases(&self) -> usize {
        (0..self.len() as u32).map(|r| self.record_len(r)).sum()
    }

    /// Append every record of `other` (re-encoding into this store's
    /// mode if the modes differ). Record ids of the appended records
    /// follow the existing ones.
    pub fn extend_from_store(&mut self, other: &SequenceStore) -> Result<(), SeqError> {
        for record in 0..other.len() as u32 {
            let seq = other.sequence(record)?;
            self.add(other.id(record).to_string(), &seq);
        }
        Ok(())
    }

    fn record_blob(&self, record: usize) -> Vec<u8> {
        match &self.seqs[record] {
            StoredSeq::Ascii(a) => a.clone(),
            StoredSeq::Packed(p) => p.to_bytes(),
        }
    }

    /// Persist the store to `path` in the current (v2) format — see the
    /// module docs for the layout. The write is atomic: staged in a temp
    /// file, `fsync`ed, and renamed into place, so a crash mid-write
    /// never leaves a torn store.
    pub fn write_to(&self, path: &Path) -> Result<(), SeqError> {
        let mut toc = Vec::new();
        toc.push(self.mode.tag());
        write_vu64(&mut toc, self.seqs.len() as u64)?;
        let blobs: Vec<Vec<u8>> = (0..self.seqs.len()).map(|r| self.record_blob(r)).collect();
        for ((id, blob), record) in self.ids.iter().zip(&blobs).zip(0..) {
            write_vu64(&mut toc, id.len() as u64)?;
            toc.extend_from_slice(id.as_bytes());
            write_vu64(&mut toc, self.record_len(record) as u64)?;
            write_vu64(&mut toc, blob.len() as u64)?;
            write_vu64(&mut toc, crc32(blob) as u64)?;
        }
        let toc_len = u32::try_from(toc.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "store TOC exceeds 4 GiB"))?;

        let mut out = AtomicFile::create(path)?;
        out.write_all(MAGIC_V2)?;
        out.write_all(&toc_len.to_le_bytes())?;
        out.write_all(&crc32(&toc).to_le_bytes())?;
        out.write_all(&toc)?;
        for blob in &blobs {
            out.write_all(blob)?;
        }
        out.commit()?;
        Ok(())
    }

    /// Persist in the legacy v1 format (no checksums): `magic "NUCSTO01"
    /// | mode:u8 | count:v | (id_len:v id blob_len:v blob)*`. Kept so
    /// compatibility tests can produce the files the previous release
    /// wrote; new code should use [`SequenceStore::write_to`].
    pub fn write_to_v1(&self, path: &Path) -> Result<(), SeqError> {
        let mut out = AtomicFile::create(path)?;
        out.write_all(MAGIC_V1)?;
        out.write_all(&[self.mode.tag()])?;
        write_vu64(&mut out, self.seqs.len() as u64)?;
        for (record, id) in self.ids.iter().enumerate() {
            write_vu64(&mut out, id.len() as u64)?;
            out.write_all(id.as_bytes())?;
            let blob = self.record_blob(record);
            write_vu64(&mut out, blob.len() as u64)?;
            out.write_all(&blob)?;
        }
        out.commit()?;
        Ok(())
    }

    /// Load a store written by [`SequenceStore::write_to`] (or a legacy
    /// v1 file, which loads without checksum verification). On v2 every
    /// byte is verified before the store is returned.
    pub fn read_from(path: &Path) -> Result<SequenceStore, SeqError> {
        let mut input = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 8];
        input.read_exact(&mut magic)?;
        match &magic {
            m if m == MAGIC_V1 => SequenceStore::read_from_v1(&mut input),
            m if m == MAGIC_V2 => {
                let mut input = CountingReader::new(input);
                let toc = read_toc_v2(&mut input)?;
                let mut store = SequenceStore::new(toc.mode);
                for (record, id) in toc.ids.into_iter().enumerate() {
                    let (offset, blob_len) = toc.blobs[record];
                    let blob = read_exact_chunked(&mut input, blob_len as usize)?;
                    let expected = toc.crcs[record];
                    let actual = crc32(&blob);
                    if actual != expected {
                        return Err(SeqError::checksum("record", offset, expected, actual));
                    }
                    let seq =
                        decode_blob(toc.mode, &blob).map_err(|e| e.located("record", offset))?;
                    if seq_len(&seq) != toc.lens[record] as usize {
                        return Err(SeqError::corrupt_at(
                            "record length disagrees with TOC",
                            "record",
                            offset,
                        ));
                    }
                    store.ids.push(id);
                    store.seqs.push(seq);
                }
                Ok(store)
            }
            _ => Err(SeqError::corrupt_at("bad store magic", "magic", 0)),
        }
    }

    /// Legacy v1 body parse: `input` is positioned just past the magic.
    fn read_from_v1(input: &mut BufReader<File>) -> Result<SequenceStore, SeqError> {
        let mut mode_byte = [0u8; 1];
        input.read_exact(&mut mode_byte)?;
        let mode = StorageMode::from_tag(mode_byte[0], 8)?;
        let count = read_vu64(input)?;
        let mut store = SequenceStore::new(mode);
        for _ in 0..count {
            let id_len = read_vu64(input)? as usize;
            let id = read_exact_chunked(input, id_len)?;
            let id =
                String::from_utf8(id).map_err(|_| SeqError::corrupt("record id is not UTF-8"))?;
            let blob_len = read_vu64(input)? as usize;
            let blob = read_exact_chunked(input, blob_len)?;
            // Validate eagerly so corrupt files fail at load time.
            store.seqs.push(decode_blob(mode, &blob)?);
            store.ids.push(id);
        }
        Ok(store)
    }
}

/// Parse and validate one record blob into its stored form.
fn decode_blob(mode: StorageMode, blob: &[u8]) -> Result<StoredSeq, SeqError> {
    match mode {
        StorageMode::Ascii => {
            DnaSeq::from_ascii(blob)?;
            Ok(StoredSeq::Ascii(blob.to_vec()))
        }
        StorageMode::DirectCoding => Ok(StoredSeq::Packed(PackedSeq::from_bytes(blob)?)),
    }
}

fn seq_len(seq: &StoredSeq) -> usize {
    match seq {
        StoredSeq::Ascii(a) => a.len(),
        StoredSeq::Packed(p) => p.len(),
    }
}

impl RecordSource for SequenceStore {
    fn len(&self) -> usize {
        SequenceStore::len(self)
    }

    fn id(&self, record: u32) -> &str {
        SequenceStore::id(self, record)
    }

    fn record_len(&self, record: u32) -> usize {
        SequenceStore::record_len(self, record)
    }

    fn bases(&self, record: u32) -> Vec<Base> {
        SequenceStore::bases(self, record)
    }

    fn sequence(&self, record: u32) -> Result<DnaSeq, SeqError> {
        SequenceStore::sequence(self, record)
    }

    fn total_bases(&self) -> usize {
        SequenceStore::total_bases(self)
    }
}

/// Parsed v2 table of contents. Blob offsets are absolute file offsets.
struct TocV2 {
    mode: StorageMode,
    ids: Vec<String>,
    lens: Vec<u32>,
    blobs: Vec<(u64, u32)>,
    crcs: Vec<u32>,
}

/// Parse a v2 TOC. `input` is positioned just past the magic (absolute
/// offset 8) and is left positioned at the start of the payload.
fn read_toc_v2<R: Read>(input: &mut CountingReader<R>) -> Result<TocV2, SeqError> {
    let mut word = [0u8; 4];
    input.read_exact(&mut word)?;
    let toc_len = u32::from_le_bytes(word) as usize;
    input.read_exact(&mut word)?;
    let expected = u32::from_le_bytes(word);
    let toc_bytes = read_exact_chunked(input, toc_len)?;
    let actual = crc32(&toc_bytes);
    if actual != expected {
        return Err(SeqError::checksum("toc", V2_PREFIX_LEN, expected, actual));
    }

    let mut toc = CountingReader::new(&toc_bytes[..]);
    let at = |toc: &CountingReader<&[u8]>| V2_PREFIX_LEN + toc.pos();
    let mut mode_byte = [0u8; 1];
    toc.read_exact(&mut mode_byte)?;
    let mode = StorageMode::from_tag(mode_byte[0], V2_PREFIX_LEN)?;
    let count = read_vu64(&mut toc)? as usize;
    // The TOC is checksum-verified, so `count` is trusted; the cap only
    // guards against a writer bug producing absurd values.
    let mut ids = Vec::with_capacity(count.min(1 << 20));
    let mut lens = Vec::with_capacity(count.min(1 << 20));
    let mut blobs = Vec::with_capacity(count.min(1 << 20));
    let mut crcs = Vec::with_capacity(count.min(1 << 20));
    let payload_start = V2_PREFIX_LEN + toc_len as u64;
    let mut offset = payload_start;
    for _ in 0..count {
        let id_len = read_vu64(&mut toc)? as usize;
        let id = read_exact_chunked(&mut toc, id_len)?;
        ids.push(
            String::from_utf8(id)
                .map_err(|_| SeqError::corrupt_at("record id is not UTF-8", "toc", at(&toc)))?,
        );
        let len = u32::try_from(read_vu64(&mut toc)?)
            .map_err(|_| SeqError::corrupt_at("record length overflow", "toc", at(&toc)))?;
        let blob_len = u32::try_from(read_vu64(&mut toc)?)
            .map_err(|_| SeqError::corrupt_at("blob length overflow", "toc", at(&toc)))?;
        let crc = u32::try_from(read_vu64(&mut toc)?)
            .map_err(|_| SeqError::corrupt_at("blob checksum overflow", "toc", at(&toc)))?;
        lens.push(len);
        blobs.push((offset, blob_len));
        crcs.push(crc);
        offset += blob_len as u64;
    }
    if toc.pos() != toc_len as u64 {
        return Err(SeqError::corrupt_at(
            "trailing bytes in TOC",
            "toc",
            at(&toc),
        ));
    }
    Ok(TocV2 {
        mode,
        ids,
        lens,
        blobs,
        crcs,
    })
}

/// A sequence store whose record payloads stay on disk: ids and byte
/// locations are memory-resident, each record is fetched with a
/// positioned read when fine search asks for it — the paper's operating
/// point, where retrieving candidate sequences is disk traffic and the
/// direct-coded store's 4× smaller reads are the win. Record fetches use
/// lock-free positional reads, so concurrent searchers never serialise on
/// a shared file cursor. Counts bytes read.
///
/// On v2 files every fetched blob is verified against its stored CRC-32;
/// a mismatch surfaces as [`SeqError::Corruption`] naming the file
/// offset, and no decoded (potentially wrong) sequence escapes.
pub struct OnDiskStore {
    file: PositionalReader,
    mode: StorageMode,
    ids: Vec<String>,
    /// Per record: byte offset and length of the payload blob.
    blobs: Vec<(u64, u32)>,
    /// Per record: sequence length in bases.
    lens: Vec<u32>,
    /// Per-record blob CRC-32s. `None` for legacy v1 files, which carry
    /// no checksums — those are served without verification.
    crcs: Option<Vec<u32>>,
    /// Absolute file offset where the payload region begins — the end of
    /// the checksummed prefix a [`OnDiskStore::scrub_toc`] pass re-reads.
    /// `None` for legacy v1 files, whose TOC is interleaved with the
    /// payload and carries no checksum.
    payload_start: Option<u64>,
    /// I/O counters: standalone by default, swapped for registry-backed
    /// handles by [`OnDiskStore::bind_metrics`]. The accessor methods
    /// below are thin shims over these handles either way.
    bytes_read: Counter,
    records_read: Counter,
}

/// Everything [`OnDiskStore`] keeps in memory (the TOC, not the payload).
struct StoreLayout {
    mode: StorageMode,
    ids: Vec<String>,
    blobs: Vec<(u64, u32)>,
    lens: Vec<u32>,
    crcs: Option<Vec<u32>>,
    payload_start: Option<u64>,
}

impl OnDiskStore {
    /// Open a store file written by [`SequenceStore::write_to`] (or a
    /// legacy v1 file), reading only its table of contents.
    pub fn open(path: &Path) -> Result<OnDiskStore, SeqError> {
        let (layout, file) = OnDiskStore::read_layout(path)?;
        Ok(OnDiskStore::from_layout(
            layout,
            PositionalReader::new(file),
        ))
    }

    /// Open like [`OnDiskStore::open`], but serve all record reads
    /// through a deterministic fault-injection shim. The TOC is parsed
    /// from the pristine file; only the pread path sees `plan`'s faults.
    /// This is the durability-test entry point.
    pub fn open_faulty(path: &Path, plan: FaultPlan) -> Result<OnDiskStore, SeqError> {
        let (layout, _) = OnDiskStore::read_layout(path)?;
        let file = PositionalReader::faulty(FaultyFile::from_path(path, plan)?);
        Ok(OnDiskStore::from_layout(layout, file))
    }

    fn from_layout(layout: StoreLayout, file: PositionalReader) -> OnDiskStore {
        OnDiskStore {
            file,
            mode: layout.mode,
            ids: layout.ids,
            blobs: layout.blobs,
            lens: layout.lens,
            crcs: layout.crcs,
            payload_start: layout.payload_start,
            bytes_read: Counter::new(),
            records_read: Counter::new(),
        }
    }

    fn read_layout(path: &Path) -> Result<(StoreLayout, File), SeqError> {
        let mut input = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 8];
        input.read_exact(&mut magic)?;
        match &magic {
            m if m == MAGIC_V1 => {
                let layout = OnDiskStore::read_layout_v1(&mut input)?;
                Ok((layout, input.into_inner()))
            }
            m if m == MAGIC_V2 => {
                let mut input = CountingReader::new(input);
                let toc = read_toc_v2(&mut input)?;
                let payload_start = 8 + input.pos();
                let layout = StoreLayout {
                    mode: toc.mode,
                    ids: toc.ids,
                    blobs: toc.blobs,
                    lens: toc.lens,
                    crcs: Some(toc.crcs),
                    payload_start: Some(payload_start),
                };
                Ok((layout, input.into_inner().into_inner()))
            }
            _ => Err(SeqError::corrupt_at("bad store magic", "magic", 0)),
        }
    }

    /// Legacy v1 layout scan: walks the interleaved records, seeking over
    /// each payload blob. `input` is positioned just past the magic.
    fn read_layout_v1(input: &mut BufReader<File>) -> Result<StoreLayout, SeqError> {
        let mut mode_byte = [0u8; 1];
        input.read_exact(&mut mode_byte)?;
        let mode = StorageMode::from_tag(mode_byte[0], 8)?;
        let count = (read_vu64(input)? as usize).min(1 << 32);
        let mut ids = Vec::with_capacity(count.min(1 << 20));
        let mut blobs = Vec::with_capacity(count.min(1 << 20));
        let mut lens = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            let id_len = read_vu64(input)? as usize;
            let id = read_exact_chunked(input, id_len)?;
            ids.push(
                String::from_utf8(id).map_err(|_| SeqError::corrupt("record id is not UTF-8"))?,
            );
            let blob_len = read_vu64(input)? as usize;
            let offset = input.stream_position()?;
            // Base length: the blob size for ASCII; the packed header's
            // length field for direct coding.
            let seq_len = match mode {
                StorageMode::Ascii => blob_len as u32,
                StorageMode::DirectCoding => {
                    if blob_len < 4 {
                        return Err(SeqError::corrupt_at(
                            "packed blob too short",
                            "record",
                            offset,
                        ));
                    }
                    let mut len_bytes = [0u8; 4];
                    input.read_exact(&mut len_bytes)?;
                    u32::from_le_bytes(len_bytes)
                }
            };
            blobs.push((offset, blob_len as u32));
            lens.push(seq_len);
            input.seek(SeekFrom::Start(offset + blob_len as u64))?;
        }
        Ok(StoreLayout {
            mode,
            ids,
            blobs,
            lens,
            crcs: None,
            payload_start: None,
        })
    }

    /// Swap the I/O counters for handles registered in `registry`
    /// (carrying over any already-accumulated values). After binding,
    /// [`OnDiskStore::bytes_read`] and friends read the registry series.
    pub fn bind_metrics(&mut self, registry: &MetricsRegistry) {
        let bytes_read = registry.counter(
            "nucdb_store_bytes_read_total",
            "Bytes fetched from the on-disk store",
        );
        let records_read = registry.counter(
            "nucdb_store_records_read_total",
            "Records fetched from the on-disk store",
        );
        bytes_read.add(self.bytes_read.get());
        records_read.add(self.records_read.get());
        self.bytes_read = bytes_read;
        self.records_read = records_read;
    }

    /// Storage mode of the underlying file.
    pub fn mode(&self) -> StorageMode {
        self.mode
    }

    fn fetch_blob(&self, record: u32) -> Result<Vec<u8>, SeqError> {
        let (offset, len) = self.blobs[record as usize];
        let mut bytes = vec![0u8; len as usize];
        self.file.read_exact_at(&mut bytes, offset)?;
        if let Some(crcs) = &self.crcs {
            let expected = crcs[record as usize];
            let actual = crc32(&bytes);
            if actual != expected {
                return Err(SeqError::checksum("record", offset, expected, actual));
            }
        }
        self.bytes_read.add(len as u64);
        self.records_read.inc();
        Ok(bytes)
    }

    /// Store bytes fetched since the last reset.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.get()
    }

    /// Records fetched since the last reset.
    pub fn records_read(&self) -> u64 {
        self.records_read.get()
    }

    /// Reset the I/O counters.
    pub fn reset_io_counters(&self) {
        self.bytes_read.reset();
        self.records_read.reset();
    }

    /// Number of records in the store.
    pub fn num_records(&self) -> usize {
        self.ids.len()
    }

    /// Bytes the stored sequence payload blobs occupy on disk.
    pub fn stored_bytes(&self) -> usize {
        self.blobs.iter().map(|&(_, len)| len as usize).sum()
    }

    /// Does the file carry per-record checksums (v2)? Legacy v1 files
    /// verify structurally only.
    pub fn has_checksums(&self) -> bool {
        self.crcs.is_some()
    }

    /// Absolute byte offset and length of a record's payload blob
    /// (panics if out of range) — for health reports that locate damage.
    pub fn record_location(&self, record: u32) -> (u64, u32) {
        self.blobs[record as usize]
    }

    /// Re-read the checksummed file prefix (magic + TOC) from disk and
    /// re-verify it: magic, stored TOC CRC, and full field structure.
    /// Returns the bytes verified — 0 on a legacy v1 file, whose
    /// interleaved TOC carries no checksum. Reads through the live file
    /// handle, so it observes damage that arrived after open (and
    /// injected faults under [`OnDiskStore::open_faulty`]). Does not
    /// touch the query I/O counters.
    pub fn scrub_toc(&self) -> Result<u64, SeqError> {
        let Some(payload_start) = self.payload_start else {
            return Ok(0);
        };
        let mut buf = vec![0u8; payload_start as usize];
        self.file.read_exact_at(&mut buf, 0)?;
        if &buf[..8] != MAGIC_V2 {
            return Err(SeqError::corrupt_at("bad store magic", "magic", 0));
        }
        let mut input = CountingReader::new(&buf[8..]);
        read_toc_v2(&mut input)?;
        Ok(payload_start)
    }

    /// Fetch and fully verify one record: stored CRC (v2), structural
    /// decode, and TOC length agreement. Returns the blob bytes
    /// verified. Does not touch the query I/O counters, so a background
    /// scrub never distorts `nucdb_store_bytes_read_total`.
    pub fn verify_record(&self, record: u32) -> Result<u64, SeqError> {
        let (offset, len) = self.blobs[record as usize];
        let mut bytes = vec![0u8; len as usize];
        self.file.read_exact_at(&mut bytes, offset)?;
        if let Some(crcs) = &self.crcs {
            let expected = crcs[record as usize];
            let actual = crc32(&bytes);
            if actual != expected {
                return Err(SeqError::checksum("record", offset, expected, actual));
            }
        }
        let seq = decode_blob(self.mode, &bytes).map_err(|e| e.located("record", offset))?;
        if seq_len(&seq) != self.lens[record as usize] as usize {
            return Err(SeqError::corrupt_at(
                "record length disagrees with TOC",
                "record",
                offset,
            ));
        }
        Ok(len as u64)
    }
}

impl RecordSource for OnDiskStore {
    fn len(&self) -> usize {
        self.ids.len()
    }

    fn id(&self, record: u32) -> &str {
        &self.ids[record as usize]
    }

    fn record_len(&self, record: u32) -> usize {
        self.lens[record as usize] as usize
    }

    fn bases(&self, record: u32) -> Vec<Base> {
        self.try_bases(record)
            .expect("caller chose the panicking accessor; use try_bases on query paths")
    }

    fn try_bases(&self, record: u32) -> Result<Vec<Base>, SeqError> {
        Ok(self.sequence(record)?.representative_bases())
    }

    fn sequence(&self, record: u32) -> Result<DnaSeq, SeqError> {
        let (offset, _) = self.blobs[record as usize];
        let blob = self.fetch_blob(record)?;
        let decoded = match self.mode {
            StorageMode::Ascii => DnaSeq::from_ascii(&blob),
            StorageMode::DirectCoding => PackedSeq::from_bytes(&blob).map(|p| p.unpack()),
        };
        decoded.map_err(|e| e.located("record", offset))
    }

    fn total_bases(&self) -> usize {
        self.lens.iter().map(|&l| l as usize).sum()
    }
}

/// The sequence store backing a database: memory-resident or on disk.
pub enum StoreVariant {
    /// Fully in-memory store.
    Memory(SequenceStore),
    /// On-disk store with per-record fetching.
    Disk(OnDiskStore),
    /// Ordered set of store parts (live ingestion segments + memtable).
    Segmented(crate::segment::SegmentedStore),
}

impl StoreVariant {
    /// Bytes the stored sequence payloads occupy (in memory or on disk).
    pub fn stored_bytes(&self) -> usize {
        match self {
            StoreVariant::Memory(s) => s.stored_bytes(),
            StoreVariant::Disk(s) => s.stored_bytes(),
            StoreVariant::Segmented(s) => s.stored_bytes(),
        }
    }
}

impl RecordSource for StoreVariant {
    fn len(&self) -> usize {
        match self {
            StoreVariant::Memory(s) => RecordSource::len(s),
            StoreVariant::Disk(s) => RecordSource::len(s),
            StoreVariant::Segmented(s) => RecordSource::len(s),
        }
    }

    fn id(&self, record: u32) -> &str {
        match self {
            StoreVariant::Memory(s) => RecordSource::id(s, record),
            StoreVariant::Disk(s) => RecordSource::id(s, record),
            StoreVariant::Segmented(s) => RecordSource::id(s, record),
        }
    }

    fn record_len(&self, record: u32) -> usize {
        match self {
            StoreVariant::Memory(s) => RecordSource::record_len(s, record),
            StoreVariant::Disk(s) => RecordSource::record_len(s, record),
            StoreVariant::Segmented(s) => RecordSource::record_len(s, record),
        }
    }

    fn bases(&self, record: u32) -> Vec<Base> {
        match self {
            StoreVariant::Memory(s) => RecordSource::bases(s, record),
            StoreVariant::Disk(s) => RecordSource::bases(s, record),
            StoreVariant::Segmented(s) => RecordSource::bases(s, record),
        }
    }

    fn try_bases(&self, record: u32) -> Result<Vec<Base>, SeqError> {
        match self {
            StoreVariant::Memory(s) => RecordSource::try_bases(s, record),
            StoreVariant::Disk(s) => RecordSource::try_bases(s, record),
            StoreVariant::Segmented(s) => RecordSource::try_bases(s, record),
        }
    }

    fn sequence(&self, record: u32) -> Result<DnaSeq, SeqError> {
        match self {
            StoreVariant::Memory(s) => RecordSource::sequence(s, record),
            StoreVariant::Disk(s) => RecordSource::sequence(s, record),
            StoreVariant::Segmented(s) => RecordSource::sequence(s, record),
        }
    }

    fn total_bases(&self) -> usize {
        match self {
            StoreVariant::Memory(s) => RecordSource::total_bases(s),
            StoreVariant::Disk(s) => RecordSource::total_bases(s),
            StoreVariant::Segmented(s) => RecordSource::total_bases(s),
        }
    }
}

fn write_vu64(out: &mut impl Write, mut value: u64) -> std::io::Result<()> {
    while value >= 0x80 {
        out.write_all(&[(value as u8 & 0x7f) | 0x80])?;
        value >>= 7;
    }
    out.write_all(&[value as u8])
}

fn read_vu64(input: &mut impl Read) -> Result<u64, SeqError> {
    let mut value = 0u64;
    let mut byte = [0u8; 1];
    for group in 0..10u32 {
        input.read_exact(&mut byte)?;
        value |= ((byte[0] & 0x7f) as u64) << (7 * group);
        if byte[0] & 0x80 == 0 {
            return Ok(value);
        }
    }
    Err(SeqError::corrupt("store varint too long"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<(&'static str, DnaSeq)> {
        vec![
            ("a", DnaSeq::from_ascii(b"ACGTACGTNACGT").unwrap()),
            ("b", DnaSeq::from_ascii(b"TTTT").unwrap()),
            ("c", DnaSeq::from_ascii(b"RYGGGGGGGGGGGGGGGG").unwrap()),
        ]
    }

    #[test]
    fn both_modes_round_trip() {
        for mode in [StorageMode::Ascii, StorageMode::DirectCoding] {
            let mut store = SequenceStore::new(mode);
            for (id, seq) in sample() {
                store.add(id, &seq);
            }
            assert_eq!(store.len(), 3);
            for (record, (id, seq)) in sample().into_iter().enumerate() {
                let record = record as u32;
                assert_eq!(store.id(record), id);
                assert_eq!(store.record_len(record), seq.len());
                assert_eq!(store.sequence(record).unwrap(), seq, "mode {mode:?}");
                assert_eq!(store.bases(record), seq.representative_bases());
            }
        }
    }

    #[test]
    fn direct_coding_is_smaller() {
        // On realistic record lengths the 2-bit payload dominates the
        // exception list: close to 4x smaller than ASCII.
        let mut body = vec![b'A'; 2000];
        body[100] = b'N';
        body[1500] = b'R';
        let seq = DnaSeq::from_ascii(&body).unwrap();
        let mut ascii = SequenceStore::new(StorageMode::Ascii);
        let mut packed = SequenceStore::new(StorageMode::DirectCoding);
        ascii.add("x", &seq);
        packed.add("x", &seq);
        assert!(
            packed.stored_bytes() * 3 < ascii.stored_bytes(),
            "packed {} vs ascii {}",
            packed.stored_bytes(),
            ascii.stored_bytes()
        );
        assert_eq!(ascii.total_bases(), packed.total_bases());
    }

    #[test]
    fn empty_store() {
        let store = SequenceStore::new(StorageMode::DirectCoding);
        assert!(store.is_empty());
        assert_eq!(store.stored_bytes(), 0);
        assert_eq!(store.total_bases(), 0);
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("nucdb_store_{}_{}", name, std::process::id()))
    }

    #[test]
    fn persistence_round_trip_both_modes() {
        for (tag, mode) in [("a", StorageMode::Ascii), ("p", StorageMode::DirectCoding)] {
            let mut store = SequenceStore::new(mode);
            for (id, seq) in sample() {
                store.add(id, &seq);
            }
            let path = temp_path(tag);
            store.write_to(&path).unwrap();
            let loaded = SequenceStore::read_from(&path).unwrap();
            let _ = std::fs::remove_file(&path);
            assert_eq!(loaded.mode(), mode);
            assert_eq!(loaded.len(), store.len());
            for record in 0..store.len() as u32 {
                assert_eq!(loaded.id(record), store.id(record));
                assert_eq!(
                    loaded.sequence(record).unwrap(),
                    store.sequence(record).unwrap()
                );
            }
        }
    }

    #[test]
    fn legacy_v1_round_trip() {
        for (tag, mode) in [
            ("v1a", StorageMode::Ascii),
            ("v1p", StorageMode::DirectCoding),
        ] {
            let mut store = SequenceStore::new(mode);
            for (id, seq) in sample() {
                store.add(id, &seq);
            }
            let path = temp_path(tag);
            store.write_to_v1(&path).unwrap();
            let bytes = std::fs::read(&path).unwrap();
            assert_eq!(&bytes[..8], MAGIC_V1);

            let loaded = SequenceStore::read_from(&path).unwrap();
            assert_eq!(loaded.mode(), mode);
            let disk = OnDiskStore::open(&path).unwrap();
            for record in 0..store.len() as u32 {
                assert_eq!(loaded.id(record), store.id(record));
                assert_eq!(
                    loaded.sequence(record).unwrap(),
                    store.sequence(record).unwrap()
                );
                assert_eq!(
                    RecordSource::sequence(&disk, record).unwrap(),
                    store.sequence(record).unwrap()
                );
            }
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn persistence_rejects_corruption() {
        let mut store = SequenceStore::new(StorageMode::DirectCoding);
        for (id, seq) in sample() {
            store.add(id, &seq);
        }
        let path = temp_path("corrupt");
        store.write_to(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] = b'X'; // magic
        std::fs::write(&path, &bytes).unwrap();
        assert!(SequenceStore::read_from(&path).is_err());
        // Truncation must also fail, not panic.
        let good = {
            bytes[0] = b'N';
            bytes
        };
        std::fs::write(&path, &good[..good.len() / 2]).unwrap();
        assert!(SequenceStore::read_from(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_payload_detected_with_offset() {
        let mut store = SequenceStore::new(StorageMode::DirectCoding);
        for (id, seq) in sample() {
            store.add(id, &seq);
        }
        let path = temp_path("crc");
        store.write_to(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1; // final payload byte: inside the last record
        bytes[last] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();

        match SequenceStore::read_from(&path) {
            Err(SeqError::Corruption {
                section, offset, ..
            }) => {
                assert_eq!(section, "record");
                assert!(offset <= last as u64);
            }
            other => panic!("expected record corruption, got {other:?}"),
        }

        // The pread path opens fine (TOC intact) but must refuse the
        // corrupt record the moment it is fetched — and keep serving
        // intact records.
        let disk = OnDiskStore::open(&path).unwrap();
        let last_record = (RecordSource::len(&disk) - 1) as u32;
        match RecordSource::sequence(&disk, last_record) {
            Err(SeqError::Corruption { section, .. }) => assert_eq!(section, "record"),
            other => panic!("expected fetch-time corruption, got {other:?}"),
        }
        assert!(RecordSource::try_bases(&disk, last_record).is_err());
        assert_eq!(
            RecordSource::sequence(&disk, 0).unwrap(),
            store.sequence(0).unwrap()
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn extend_from_store_appends_and_reencodes() {
        let mut packed = SequenceStore::new(StorageMode::DirectCoding);
        packed.add("p0", &DnaSeq::from_ascii(b"ACGT").unwrap());
        let mut ascii = SequenceStore::new(StorageMode::Ascii);
        ascii.add("a0", &DnaSeq::from_ascii(b"TTNN").unwrap());
        ascii.add("a1", &DnaSeq::from_ascii(b"GGGG").unwrap());

        packed.extend_from_store(&ascii).unwrap();
        assert_eq!(packed.len(), 3);
        assert_eq!(packed.id(1), "a0");
        assert_eq!(packed.sequence(1).unwrap().to_ascii_vec(), b"TTNN");
        assert_eq!(packed.sequence(2).unwrap().to_ascii_vec(), b"GGGG");
        assert_eq!(packed.mode(), StorageMode::DirectCoding);
    }

    #[test]
    fn on_disk_store_matches_memory() {
        for (tag, mode) in [
            ("oda", StorageMode::Ascii),
            ("odp", StorageMode::DirectCoding),
        ] {
            let mut store = SequenceStore::new(mode);
            for (id, seq) in sample() {
                store.add(id, &seq);
            }
            let path = temp_path(tag);
            store.write_to(&path).unwrap();
            let disk = OnDiskStore::open(&path).unwrap();
            assert_eq!(disk.mode(), mode);
            assert_eq!(RecordSource::len(&disk), store.len());
            assert_eq!(RecordSource::total_bases(&disk), store.total_bases());
            for record in 0..store.len() as u32 {
                assert_eq!(RecordSource::id(&disk, record), store.id(record));
                assert_eq!(
                    RecordSource::record_len(&disk, record),
                    store.record_len(record)
                );
                assert_eq!(
                    RecordSource::sequence(&disk, record).unwrap(),
                    store.sequence(record).unwrap(),
                    "mode {mode:?} record {record}"
                );
                assert_eq!(RecordSource::bases(&disk, record), store.bases(record));
                assert_eq!(
                    RecordSource::try_bases(&disk, record).unwrap(),
                    store.bases(record)
                );
            }
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn on_disk_store_counts_io() {
        let mut store = SequenceStore::new(StorageMode::DirectCoding);
        for (id, seq) in sample() {
            store.add(id, &seq);
        }
        let path = temp_path("odio");
        store.write_to(&path).unwrap();
        let disk = OnDiskStore::open(&path).unwrap();
        assert_eq!(disk.bytes_read(), 0);
        let _ = RecordSource::sequence(&disk, 0).unwrap();
        assert!(disk.bytes_read() > 0);
        assert_eq!(disk.records_read(), 1);
        // Metadata access costs no I/O.
        let before = disk.bytes_read();
        let _ = RecordSource::record_len(&disk, 1);
        let _ = RecordSource::id(&disk, 2);
        assert_eq!(disk.bytes_read(), before);
        disk.reset_io_counters();
        assert_eq!(disk.records_read(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn on_disk_store_rejects_corruption() {
        let mut store = SequenceStore::new(StorageMode::DirectCoding);
        for (id, seq) in sample() {
            store.add(id, &seq);
        }
        let path = temp_path("odbad");
        store.write_to(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[3] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        assert!(OnDiskStore::open(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_store_persists() {
        let store = SequenceStore::new(StorageMode::Ascii);
        let path = temp_path("empty");
        store.write_to(&path).unwrap();
        let loaded = SequenceStore::read_from(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(loaded.is_empty());
        assert_eq!(loaded.mode(), StorageMode::Ascii);
    }
}
