//! Build identification: version, git hash, compiled codec tiers.
//!
//! One source of truth surfaced in three places: the
//! `nucdb_build_info` gauge on `/metrics` (value always 1, identity in
//! the labels — the standard Prometheus build-info idiom), the
//! `/healthz` response, and `nucdb --version`.

use nucdb_index::ListCodec;
use nucdb_obs::json::Value;
use nucdb_obs::MetricsRegistry;

/// Crate version (workspace version).
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

/// Short git commit hash the binary was built from, embedded at build
/// time (`"unknown"` outside a git checkout).
pub const GIT_HASH: &str = env!("NUCDB_GIT_HASH");

/// Every postings codec tier compiled into this build, by
/// [`ListCodec::name`].
pub const ALL_CODECS: [ListCodec; 7] = [
    ListCodec::Paper,
    ListCodec::Gamma,
    ListCodec::Delta,
    ListCodec::VByte,
    ListCodec::Fixed,
    ListCodec::Interp,
    ListCodec::Block,
];

/// Comma-joined codec tier names.
pub fn codec_tiers() -> String {
    ALL_CODECS
        .iter()
        .map(|codec| codec.name())
        .collect::<Vec<_>>()
        .join(",")
}

/// Register the `nucdb_build_info` gauge: value 1, identity in the
/// labels.
pub fn register(registry: &MetricsRegistry) {
    let codecs = codec_tiers();
    registry
        .gauge_with(
            "nucdb_build_info",
            "Build identification; the value is always 1",
            &[
                ("version", VERSION),
                ("git", GIT_HASH),
                ("codecs", codecs.as_str()),
            ],
        )
        .set(1);
}

/// Build info as a JSON object (for `/healthz`, `/stats`).
pub fn as_json() -> Value {
    Value::Obj(vec![
        ("version".to_string(), Value::Str(VERSION.to_string())),
        ("git".to_string(), Value::Str(GIT_HASH.to_string())),
        ("codecs".to_string(), Value::Str(codec_tiers())),
    ])
}

/// One-line human form (for `--version`).
pub fn human() -> String {
    format!(
        "nucdb {VERSION} (git {GIT_HASH}, codecs: {})",
        codec_tiers()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_populated() {
        assert!(!VERSION.is_empty());
        assert!(!GIT_HASH.is_empty());
        let tiers = codec_tiers();
        // Every codec tier appears exactly once.
        for codec in ALL_CODECS {
            assert!(tiers.contains(codec.name()), "missing {}", codec.name());
        }
        assert_eq!(tiers.split(',').count(), ALL_CODECS.len());
    }

    #[test]
    fn gauge_registers_with_identity_labels() {
        let registry = MetricsRegistry::new();
        register(&registry);
        let snapshot = registry.snapshot();
        let text = snapshot.to_prometheus();
        assert!(text.contains("nucdb_build_info"));
        assert!(text.contains(&format!("version=\"{VERSION}\"")));
        assert!(text.contains(&format!("git=\"{GIT_HASH}\"")));
    }

    #[test]
    fn human_and_json_agree() {
        let human = human();
        assert!(human.contains(VERSION));
        assert!(human.contains(GIT_HASH));
        let json = as_json();
        assert_eq!(json.get("version").and_then(Value::as_str), Some(VERSION));
        assert_eq!(json.get("git").and_then(Value::as_str), Some(GIT_HASH));
    }
}
