//! Fine search: local alignment of the coarse candidates.
//!
//! The paper's second stage. Only the top coarse candidates reach this
//! point, so even full Smith–Waterman here costs a fraction of an
//! exhaustive scan — but the default is cheaper still: a *banded*
//! alignment centred on the diagonal coarse ranking discovered.

use nucdb_align::{banded_sw_score, sw_align, sw_score, sw_score_iupac, Alignment, ScoringScheme};
use nucdb_seq::{DnaSeq, SeqError};

use crate::coarse::CoarseHit;
use crate::store::RecordSource;

/// How fine search aligns each candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FineMode {
    /// Banded Smith–Waterman around the candidate's coarse diagonal.
    Banded {
        /// Band half-width in bases.
        half_width: usize,
    },
    /// Full (unbanded) Smith–Waterman, score only.
    Full,
    /// Full Smith–Waterman with traceback: slowest, but results carry
    /// complete alignments.
    FullWithTraceback,
    /// Full Smith–Waterman over the lossless IUPAC sequences: ambiguity
    /// codes score by set overlap instead of collapsing to representative
    /// bases — the accurate mode for wildcard-heavy records.
    FullIupac,
}

impl Default for FineMode {
    fn default() -> FineMode {
        FineMode::Banded { half_width: 24 }
    }
}

/// Per-candidate timing captured by [`fine_search_traced`] for forensic
/// span trees. Offsets are relative to the start of the fine stage.
#[derive(Debug, Clone, Copy)]
pub struct CandidateTiming {
    /// Record id aligned.
    pub record: u32,
    /// Nanoseconds from the start of the fine stage to this candidate's
    /// alignment starting.
    pub start_ns: u64,
    /// Nanoseconds spent aligning this candidate.
    pub nanos: u64,
    /// The alignment score (before the `min_score` filter).
    pub score: i32,
}

/// A fine-scored candidate.
#[derive(Debug, Clone)]
pub struct FineResult {
    /// Record id.
    pub record: u32,
    /// Local alignment score.
    pub score: i32,
    /// The coarse evidence that promoted this record.
    pub coarse: CoarseHit,
    /// Full alignment, when [`FineMode::FullWithTraceback`] was used.
    pub alignment: Option<Alignment>,
}

/// Align `candidates` against the query; returns results in descending
/// score order (ties by ascending record id), scores below `min_score`
/// dropped.
///
/// `query` must be in the orientation being searched (the engine passes
/// the reverse complement for the reverse strand).
///
/// Record decodes are fallible: an on-disk store surfaces read failures
/// and checksum mismatches here, and the whole fine pass reports them as
/// an error instead of panicking or aligning against corrupt bytes.
pub fn fine_search<S: RecordSource>(
    store: &S,
    query: &DnaSeq,
    candidates: &[CoarseHit],
    mode: FineMode,
    scheme: &ScoringScheme,
    min_score: i32,
) -> Result<Vec<FineResult>, SeqError> {
    fine_search_traced(store, query, candidates, mode, scheme, min_score, None)
}

/// [`fine_search`] that additionally records per-candidate wall time
/// into `timings` (append-only; pass `None` to skip all timing work).
/// Results are identical to [`fine_search`] — the instrumentation only
/// reads the clock around each candidate.
pub fn fine_search_traced<S: RecordSource>(
    store: &S,
    query: &DnaSeq,
    candidates: &[CoarseHit],
    mode: FineMode,
    scheme: &ScoringScheme,
    min_score: i32,
    mut timings: Option<&mut Vec<CandidateTiming>>,
) -> Result<Vec<FineResult>, SeqError> {
    let stage_start = timings.as_ref().map(|_| std::time::Instant::now());
    let query_bases = query.representative_bases();
    let mut results: Vec<FineResult> = Vec::with_capacity(candidates.len());
    for &coarse in candidates {
        let start_ns = stage_start.map(|s| s.elapsed().as_nanos() as u64);
        let (score, alignment) = match mode {
            FineMode::Banded { half_width } => {
                let target = store.try_bases(coarse.record)?;
                (
                    banded_sw_score(
                        &query_bases,
                        &target,
                        scheme,
                        coarse.best_diagonal,
                        half_width,
                    ),
                    None,
                )
            }
            FineMode::Full => {
                let target = store.try_bases(coarse.record)?;
                (sw_score(&query_bases, &target, scheme), None)
            }
            FineMode::FullWithTraceback => {
                let target = store.try_bases(coarse.record)?;
                let alignment = sw_align(&query_bases, &target, scheme);
                (alignment.as_ref().map_or(0, |a| a.score), alignment)
            }
            FineMode::FullIupac => {
                let target = store.sequence(coarse.record)?;
                (sw_score_iupac(query, &target, scheme), None)
            }
        };
        if let (Some(timings), Some(start_ns)) = (timings.as_deref_mut(), start_ns) {
            let end_ns = stage_start.unwrap().elapsed().as_nanos() as u64;
            timings.push(CandidateTiming {
                record: coarse.record,
                start_ns,
                nanos: end_ns.saturating_sub(start_ns),
                score,
            });
        }
        if score >= min_score {
            results.push(FineResult {
                record: coarse.record,
                score,
                coarse,
                alignment,
            });
        }
    }
    results.sort_by(|a, b| b.score.cmp(&a.score).then(a.record.cmp(&b.record)));
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{SequenceStore, StorageMode};

    fn store_with(records: &[&[u8]]) -> SequenceStore {
        let mut store = SequenceStore::new(StorageMode::DirectCoding);
        for (i, r) in records.iter().enumerate() {
            store.add(format!("r{i}"), &DnaSeq::from_ascii(r).unwrap());
        }
        store
    }

    fn hit(record: u32, diagonal: i64) -> CoarseHit {
        CoarseHit {
            record,
            score: 1.0,
            hits: 1,
            frame_hits: 1,
            best_diagonal: diagonal,
        }
    }

    fn query() -> DnaSeq {
        DnaSeq::from_ascii(b"ACGTAGCTAGCTGGATCC").unwrap()
    }

    #[test]
    fn banded_finds_alignment_on_good_diagonal() {
        let store = store_with(&[b"TTTTTTACGTAGCTAGCTGGATCCTTTT"]);
        let results = fine_search(
            &store,
            &query(),
            &[hit(0, 6)],
            FineMode::Banded { half_width: 8 },
            &ScoringScheme::blastn(),
            1,
        )
        .unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].score, 18 * 5);
        assert!(results[0].alignment.is_none());
    }

    #[test]
    fn full_modes_agree_on_score() {
        let store = store_with(&[b"GGGGACGTAGCTAGCTGGATCCGGGG"]);
        let q = query();
        let scheme = ScoringScheme::blastn();
        let full = fine_search(&store, &q, &[hit(0, 0)], FineMode::Full, &scheme, 1).unwrap();
        let traced = fine_search(
            &store,
            &q,
            &[hit(0, 0)],
            FineMode::FullWithTraceback,
            &scheme,
            1,
        )
        .unwrap();
        assert_eq!(full[0].score, traced[0].score);
        let alignment = traced[0].alignment.as_ref().unwrap();
        assert_eq!(alignment.score, traced[0].score);
        assert!(alignment.is_consistent());
    }

    #[test]
    fn iupac_mode_scores_wildcards_fairly() {
        // Target has Ns where the query has real bases. Representative
        // collapsing turns the Ns into As (mismatching the query's Cs);
        // IUPAC-aware alignment scores them as partial matches instead.
        let store = store_with(&[b"ACGTAGNNNNGGATCCAAAA"]);
        let q = DnaSeq::from_ascii(b"ACGTAGCCCCGGATCC").unwrap();
        let scheme = ScoringScheme::blastn();
        let collapsed = fine_search(&store, &q, &[hit(0, 0)], FineMode::Full, &scheme, 1).unwrap();
        let iupac = fine_search(&store, &q, &[hit(0, 0)], FineMode::FullIupac, &scheme, 1).unwrap();
        assert!(
            iupac[0].score > collapsed[0].score,
            "iupac {} <= collapsed {}",
            iupac[0].score,
            collapsed[0].score
        );
    }

    #[test]
    fn min_score_filters() {
        let store = store_with(&[b"TTTTTTTTTTTTTTTTTT"]);
        let results = fine_search(
            &store,
            &query(),
            &[hit(0, 0)],
            FineMode::Full,
            &ScoringScheme::blastn(),
            10,
        )
        .unwrap();
        assert!(results.is_empty());
    }

    #[test]
    fn results_sorted_by_score() {
        let store = store_with(&[
            b"ACGTAGCTAG",         // partial match
            b"ACGTAGCTAGCTGGATCC", // exact match
            b"ACGTAGCTAGCTGG",     // longer partial
        ]);
        let results = fine_search(
            &store,
            &query(),
            &[hit(0, 0), hit(1, 0), hit(2, 0)],
            FineMode::Full,
            &ScoringScheme::blastn(),
            1,
        )
        .unwrap();
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].record, 1);
        assert!(results[0].score > results[1].score);
        assert!(results[1].score >= results[2].score);
        assert_eq!(results[1].record, 2);
    }

    #[test]
    fn traced_variant_matches_untraced_and_times_every_candidate() {
        let store = store_with(&[
            b"ACGTAGCTAG",
            b"ACGTAGCTAGCTGGATCC",
            b"TTTTTTTTTTTTTTTTTT", // scores below min_score, still timed
        ]);
        let hits = [hit(0, 0), hit(1, 0), hit(2, 0)];
        let scheme = ScoringScheme::blastn();
        let plain = fine_search(&store, &query(), &hits, FineMode::Full, &scheme, 10).unwrap();
        let mut timings = Vec::new();
        let traced = fine_search_traced(
            &store,
            &query(),
            &hits,
            FineMode::Full,
            &scheme,
            10,
            Some(&mut timings),
        )
        .unwrap();
        let key = |r: &FineResult| (r.record, r.score);
        assert_eq!(
            plain.iter().map(key).collect::<Vec<_>>(),
            traced.iter().map(key).collect::<Vec<_>>()
        );
        // Every candidate is timed, including ones the score filter drops.
        assert_eq!(timings.len(), 3);
        let records: Vec<u32> = timings.iter().map(|t| t.record).collect();
        assert_eq!(records, [0, 1, 2]);
        for pair in timings.windows(2) {
            assert!(pair[1].start_ns >= pair[0].start_ns + pair[0].nanos);
        }
    }

    #[test]
    fn empty_candidates_empty_results() {
        let store = store_with(&[b"ACGT"]);
        let results = fine_search(
            &store,
            &query(),
            &[],
            FineMode::Full,
            &ScoringScheme::blastn(),
            1,
        )
        .unwrap();
        assert!(results.is_empty());
    }
}
