//! Index and store health: the damage walk behind `nucdb fsck`, the
//! statistics report behind `nucdb stat`, and the building blocks the
//! `nucdb-serve` background scrubber iterates.
//!
//! The fsck walk is exhaustive, not fail-fast: every list and every
//! record is verified and every finding is collected, so one corrupt
//! block does not hide a second one further in. Severity maps to the
//! CLI exit code — structural damage (header or TOC unreadable) is
//! exit 2, payload damage (a list or record failing its checksum or
//! decode) is exit 1, a clean walk is exit 0.
//!
//! All verification reads bypass the query I/O counters
//! ([`OnDiskIndex::verify_list_at`], [`OnDiskStore::verify_record`]),
//! so a background scrub never distorts `nucdb_index_bytes_read_total`
//! or its store twin.

use nucdb_index::{skip_table_len, IndexError, OnDiskIndex};
use nucdb_obs::json::{num, Value};
use nucdb_seq::SeqError;

use crate::store::{OnDiskStore, StorageMode};

/// How bad one fsck finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsckSeverity {
    /// A payload region (postings list, record blob) failed its
    /// checksum or decode. The file opens; the damaged region errors
    /// when touched. Exit code 1.
    Payload,
    /// The header or TOC is unreadable: the file would not reopen.
    /// Exit code 2.
    Structural,
}

impl FsckSeverity {
    fn name(self) -> &'static str {
        match self {
            FsckSeverity::Payload => "payload",
            FsckSeverity::Structural => "structural",
        }
    }
}

/// One piece of damage the fsck walk found.
#[derive(Debug, Clone)]
pub struct FsckFinding {
    /// Which file: `"index"` or `"store"`.
    pub file: &'static str,
    /// The file section the error names ("header", "list", "record",
    /// "toc", …).
    pub section: String,
    /// Byte offset of the damage within the file, when the verifier
    /// had one.
    pub offset: Option<u64>,
    /// Severity (drives the exit code).
    pub severity: FsckSeverity,
    /// Human-readable error detail.
    pub detail: String,
}

impl FsckFinding {
    fn to_value(&self) -> Value {
        let mut members = vec![
            ("file".to_string(), Value::Str(self.file.to_string())),
            ("section".to_string(), Value::Str(self.section.clone())),
            (
                "severity".to_string(),
                Value::Str(self.severity.name().to_string()),
            ),
            ("detail".to_string(), Value::Str(self.detail.clone())),
        ];
        if let Some(offset) = self.offset {
            members.insert(2, ("offset".to_string(), num(offset)));
        }
        Value::Obj(members)
    }
}

/// The result of a full fsck walk over an index and/or store file.
#[derive(Debug, Clone, Default)]
pub struct FsckReport {
    /// Every piece of damage found, in walk order.
    pub findings: Vec<FsckFinding>,
    /// Postings lists verified (index walk).
    pub lists_checked: u64,
    /// Records verified (store walk).
    pub records_checked: u64,
    /// Total bytes read and verified across both files.
    pub bytes_verified: u64,
}

impl FsckReport {
    /// No damage found?
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Process exit code: 0 clean, 1 payload damage, 2 structural
    /// damage (header or TOC unreadable).
    pub fn exit_code(&self) -> i32 {
        if self
            .findings
            .iter()
            .any(|f| f.severity == FsckSeverity::Structural)
        {
            2
        } else if self.findings.is_empty() {
            0
        } else {
            1
        }
    }

    /// JSON shape of the report.
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("clean".to_string(), Value::Bool(self.is_clean())),
            ("exit_code".to_string(), num(self.exit_code() as u64)),
            ("lists_checked".to_string(), num(self.lists_checked)),
            ("records_checked".to_string(), num(self.records_checked)),
            ("bytes_verified".to_string(), num(self.bytes_verified)),
            (
                "findings".to_string(),
                Value::Arr(self.findings.iter().map(FsckFinding::to_value).collect()),
            ),
        ])
    }

    /// Human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "fsck: {} list(s), {} record(s), {} byte(s) verified\n",
            self.lists_checked, self.records_checked, self.bytes_verified
        ));
        if self.is_clean() {
            out.push_str("fsck: clean\n");
            return out;
        }
        for f in &self.findings {
            match f.offset {
                Some(offset) => out.push_str(&format!(
                    "fsck: {} damage in {} section {:?} at byte {}: {}\n",
                    f.severity.name(),
                    f.file,
                    f.section,
                    offset,
                    f.detail
                )),
                None => out.push_str(&format!(
                    "fsck: {} damage in {} section {:?}: {}\n",
                    f.severity.name(),
                    f.file,
                    f.section,
                    f.detail
                )),
            }
        }
        out.push_str(&format!(
            "fsck: {} finding(s), exit code {}\n",
            self.findings.len(),
            self.exit_code()
        ));
        out
    }
}

fn index_error_location(e: &IndexError) -> (String, Option<u64>) {
    match e {
        IndexError::Corruption {
            section, offset, ..
        } => ((*section).to_string(), Some(*offset)),
        IndexError::BadFormat(v) => (v.section.to_string(), v.offset),
        IndexError::Codec(_) => ("postings".to_string(), None),
        _ => ("io".to_string(), None),
    }
}

fn seq_error_location(e: &SeqError) -> (String, Option<u64>) {
    match e {
        SeqError::Corruption {
            section, offset, ..
        } => ((*section).to_string(), Some(*offset)),
        SeqError::CorruptPackedData {
            section, offset, ..
        } => ((*section).to_string(), *offset),
        _ => ("io".to_string(), None),
    }
}

/// Walk every checksummed region of an on-disk index — header, then
/// every postings list — collecting all damage into `report`.
pub fn fsck_index(index: &OnDiskIndex, report: &mut FsckReport) {
    match index.scrub_header() {
        Ok(bytes) => report.bytes_verified += bytes,
        Err(e) => {
            let (section, offset) = index_error_location(&e);
            report.findings.push(FsckFinding {
                file: "index",
                section,
                offset,
                severity: FsckSeverity::Structural,
                detail: e.to_string(),
            });
        }
    }
    for idx in 0..index.vocab().len() {
        report.lists_checked += 1;
        match index.verify_list_at(idx) {
            Ok(bytes) => report.bytes_verified += bytes,
            Err(e) => {
                let (section, offset) = index_error_location(&e);
                report.findings.push(FsckFinding {
                    file: "index",
                    section,
                    offset,
                    severity: FsckSeverity::Payload,
                    detail: e.to_string(),
                });
            }
        }
    }
}

/// Walk every checksummed region of an on-disk store — TOC, then every
/// record blob — collecting all damage into `report`.
pub fn fsck_store(store: &OnDiskStore, report: &mut FsckReport) {
    match store.scrub_toc() {
        Ok(bytes) => report.bytes_verified += bytes,
        Err(e) => {
            let (section, offset) = seq_error_location(&e);
            report.findings.push(FsckFinding {
                file: "store",
                section,
                offset,
                severity: FsckSeverity::Structural,
                detail: e.to_string(),
            });
        }
    }
    for record in 0..store.num_records() as u32 {
        report.records_checked += 1;
        match store.verify_record(record) {
            Ok(bytes) => report.bytes_verified += bytes,
            Err(e) => {
                let (section, offset) = seq_error_location(&e);
                report.findings.push(FsckFinding {
                    file: "store",
                    section,
                    offset,
                    severity: FsckSeverity::Payload,
                    detail: e.to_string(),
                });
            }
        }
    }
}

/// One bucket of a power-of-two histogram: `label` names the value
/// range, `count` the population.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistBucket {
    /// Range label: "0", "1", "2", "3-4", "5-8", …
    pub label: String,
    /// Items in the bucket.
    pub count: u64,
}

/// Build a power-of-two histogram over `values`. Bucket 0 holds zeros,
/// bucket 1 holds ones, bucket `i > 1` holds `[2^(i-1)+1, 2^i]`.
fn log2_histogram(values: impl Iterator<Item = u64>) -> Vec<HistBucket> {
    let mut counts: Vec<u64> = Vec::new();
    for v in values {
        let bucket = if v == 0 {
            0
        } else {
            // ceil(log2(v)) + 1, so 1 → bucket 1, 2 → 2, 3..4 → 3, …
            (64 - (v - 1).leading_zeros() as usize) + 1
        };
        if counts.len() <= bucket {
            counts.resize(bucket + 1, 0);
        }
        counts[bucket] += 1;
    }
    counts
        .iter()
        .enumerate()
        .map(|(i, &count)| HistBucket {
            label: match i {
                0 => "0".to_string(),
                1 => "1".to_string(),
                2 => "2".to_string(),
                _ => format!("{}-{}", (1u64 << (i - 2)) + 1, 1u64 << (i - 1)),
            },
            count,
        })
        .collect()
}

fn histogram_value(buckets: &[HistBucket]) -> Value {
    Value::Arr(
        buckets
            .iter()
            .map(|b| {
                Value::Obj(vec![
                    ("range".to_string(), Value::Str(b.label.clone())),
                    ("count".to_string(), num(b.count)),
                ])
            })
            .collect(),
    )
}

/// Per-index statistics behind `nucdb stat`: sizes by section,
/// list-length and width distributions, and skew measures.
#[derive(Debug, Clone)]
pub struct IndexStatReport {
    /// On-disk format magic ("NUCIDX02"/"03"/"04").
    pub format: String,
    /// List codec tier.
    pub codec: String,
    /// Interval length.
    pub k: usize,
    /// Extraction stride.
    pub stride: usize,
    /// Postings granularity ("offsets" or "records").
    pub granularity: String,
    /// Records indexed.
    pub records: u64,
    /// Distinct intervals (vocabulary size).
    pub distinct_intervals: u64,
    /// Total postings entries (sum of dfs).
    pub postings_entries: u64,
    /// Header region bytes (magic through vocabulary).
    pub header_bytes: u64,
    /// Compressed postings blob bytes.
    pub blob_bytes: u64,
    /// In-memory vocabulary bytes.
    pub vocab_bytes: u64,
    /// Skip-table bytes inside the blob (block codec only; 0 otherwise).
    pub skip_table_bytes: u64,
    /// Largest list length.
    pub max_df: u32,
    /// Mean list length.
    pub mean_df: f64,
    /// Fraction of all postings held by the 10 longest lists — the
    /// skew measure that motivates index stopping.
    pub top10_df_share: f64,
    /// List-length distribution (power-of-two buckets).
    pub df_histogram: Vec<HistBucket>,
    /// Compressed bits-per-posting distribution across lists
    /// (power-of-two buckets) — the effective width the codec achieves.
    pub bits_per_posting_histogram: Vec<HistBucket>,
}

impl IndexStatReport {
    /// Compute the report from an open on-disk index (metadata only —
    /// no postings I/O).
    pub fn from_disk(index: &OnDiskIndex) -> IndexStatReport {
        let vocab = index.vocab();
        let params = index.params();
        let postings_entries: u64 = vocab.iter().map(|e| e.df as u64).sum();
        let blob_bytes: u64 = vocab.iter().map(|e| e.len as u64).sum();
        let skip_table_bytes = if index.format() == "NUCIDX04" {
            vocab.iter().map(|e| skip_table_len(e.df) as u64).sum()
        } else {
            0
        };
        let mut dfs: Vec<u64> = vocab.iter().map(|e| e.df as u64).collect();
        dfs.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u64 = dfs.iter().take(10).sum();
        IndexStatReport {
            format: index.format().to_string(),
            codec: index.codec().name().to_string(),
            k: params.k,
            stride: params.stride,
            granularity: format!("{:?}", params.granularity).to_lowercase(),
            records: index.num_records() as u64,
            distinct_intervals: vocab.len() as u64,
            postings_entries,
            header_bytes: index.blob_start(),
            blob_bytes,
            vocab_bytes: std::mem::size_of_val(vocab) as u64,
            skip_table_bytes,
            max_df: vocab.iter().map(|e| e.df).max().unwrap_or(0),
            mean_df: if vocab.is_empty() {
                0.0
            } else {
                postings_entries as f64 / vocab.len() as f64
            },
            top10_df_share: if postings_entries == 0 {
                0.0
            } else {
                top10 as f64 / postings_entries as f64
            },
            df_histogram: log2_histogram(vocab.iter().map(|e| e.df as u64)),
            bits_per_posting_histogram: log2_histogram(
                vocab
                    .iter()
                    .filter(|e| e.df > 0)
                    .map(|e| e.len as u64 * 8 / e.df as u64),
            ),
        }
    }

    /// JSON shape of the report.
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("format".to_string(), Value::Str(self.format.clone())),
            ("codec".to_string(), Value::Str(self.codec.clone())),
            ("k".to_string(), num(self.k as u64)),
            ("stride".to_string(), num(self.stride as u64)),
            (
                "granularity".to_string(),
                Value::Str(self.granularity.clone()),
            ),
            ("records".to_string(), num(self.records)),
            (
                "distinct_intervals".to_string(),
                num(self.distinct_intervals),
            ),
            ("postings_entries".to_string(), num(self.postings_entries)),
            (
                "bytes".to_string(),
                Value::Obj(vec![
                    ("header".to_string(), num(self.header_bytes)),
                    ("blob".to_string(), num(self.blob_bytes)),
                    ("vocab_memory".to_string(), num(self.vocab_bytes)),
                    ("skip_tables".to_string(), num(self.skip_table_bytes)),
                ]),
            ),
            ("max_df".to_string(), num(self.max_df as u64)),
            ("mean_df".to_string(), Value::Num(self.mean_df)),
            (
                "top10_df_share".to_string(),
                Value::Num(self.top10_df_share),
            ),
            (
                "df_histogram".to_string(),
                histogram_value(&self.df_histogram),
            ),
            (
                "bits_per_posting_histogram".to_string(),
                histogram_value(&self.bits_per_posting_histogram),
            ),
        ])
    }
}

/// Per-store statistics behind `nucdb stat`.
#[derive(Debug, Clone)]
pub struct StoreStatReport {
    /// Storage mode ("ascii" or "direct").
    pub mode: String,
    /// Records stored.
    pub records: u64,
    /// Total bases across records.
    pub total_bases: u64,
    /// Payload bytes (sum of blob lengths).
    pub payload_bytes: u64,
    /// Checksummed prefix bytes (magic + TOC); 0 for legacy v1 files.
    pub toc_bytes: u64,
    /// Does the file carry per-record checksums?
    pub checksummed: bool,
    /// Largest record length in bases.
    pub max_record_len: u32,
    /// Record-length distribution (power-of-two buckets).
    pub record_len_histogram: Vec<HistBucket>,
}

impl StoreStatReport {
    /// Compute the report from an open on-disk store (metadata only).
    pub fn from_disk(store: &OnDiskStore) -> StoreStatReport {
        let records = store.num_records() as u64;
        let lens: Vec<u64> = (0..records as u32)
            .map(|r| {
                use crate::store::RecordSource;
                store.record_len(r) as u64
            })
            .collect();
        let payload_bytes: u64 = (0..records as u32)
            .map(|r| store.record_location(r).1 as u64)
            .sum();
        let toc_bytes = store.scrub_toc().unwrap_or_default();
        StoreStatReport {
            mode: match store.mode() {
                StorageMode::Ascii => "ascii".to_string(),
                StorageMode::DirectCoding => "direct".to_string(),
            },
            records,
            total_bases: lens.iter().sum(),
            payload_bytes,
            toc_bytes,
            checksummed: store.has_checksums(),
            max_record_len: lens.iter().max().copied().unwrap_or(0) as u32,
            record_len_histogram: log2_histogram(lens.into_iter()),
        }
    }

    /// JSON shape of the report.
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("mode".to_string(), Value::Str(self.mode.clone())),
            ("records".to_string(), num(self.records)),
            ("total_bases".to_string(), num(self.total_bases)),
            (
                "bytes".to_string(),
                Value::Obj(vec![
                    ("toc".to_string(), num(self.toc_bytes)),
                    ("payload".to_string(), num(self.payload_bytes)),
                ]),
            ),
            ("checksummed".to_string(), Value::Bool(self.checksummed)),
            (
                "max_record_len".to_string(),
                num(self.max_record_len as u64),
            ),
            (
                "record_len_histogram".to_string(),
                histogram_value(&self.record_len_histogram),
            ),
        ])
    }
}

/// Combined `nucdb stat` report over a database directory.
#[derive(Debug, Clone)]
pub struct StatReport {
    /// Index statistics, when an index file is present.
    pub index: Option<IndexStatReport>,
    /// Store statistics, when a store file is present.
    pub store: Option<StoreStatReport>,
}

impl StatReport {
    /// JSON shape of the report.
    pub fn to_value(&self) -> Value {
        let mut members = Vec::new();
        if let Some(index) = &self.index {
            members.push(("index".to_string(), index.to_value()));
        }
        if let Some(store) = &self.store {
            members.push(("store".to_string(), store.to_value()));
        }
        Value::Obj(members)
    }

    /// Human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let histogram = |out: &mut String, title: &str, buckets: &[HistBucket]| {
            let peak = buckets.iter().map(|b| b.count).max().unwrap_or(0).max(1);
            out.push_str(&format!("  {title}:\n"));
            for b in buckets {
                if b.count == 0 {
                    continue;
                }
                let bar = "#".repeat(((b.count * 40).div_ceil(peak)) as usize);
                out.push_str(&format!("    {:>12} {:>8}  {}\n", b.label, b.count, bar));
            }
        };
        if let Some(index) = &self.index {
            out.push_str(&format!(
                "index: {} ({} codec), k={} stride={} granularity={}\n",
                index.format, index.codec, index.k, index.stride, index.granularity
            ));
            out.push_str(&format!(
                "  {} records, {} distinct intervals, {} postings entries\n",
                index.records, index.distinct_intervals, index.postings_entries
            ));
            out.push_str(&format!(
                "  bytes: header {} / blob {} / vocab (memory) {} / skip tables {}\n",
                index.header_bytes, index.blob_bytes, index.vocab_bytes, index.skip_table_bytes
            ));
            out.push_str(&format!(
                "  df: max {} mean {:.2} top-10 share {:.1}%\n",
                index.max_df,
                index.mean_df,
                index.top10_df_share * 100.0
            ));
            histogram(&mut out, "list length (df)", &index.df_histogram);
            histogram(
                &mut out,
                "bits per posting",
                &index.bits_per_posting_histogram,
            );
        }
        if let Some(store) = &self.store {
            out.push_str(&format!(
                "store: {} mode, {} records, {} bases{}\n",
                store.mode,
                store.records,
                store.total_bases,
                if store.checksummed {
                    ""
                } else {
                    " (no checksums: legacy v1)"
                }
            ));
            out.push_str(&format!(
                "  bytes: toc {} / payload {}\n",
                store.toc_bytes, store.payload_bytes
            ));
            histogram(&mut out, "record length", &store.record_len_histogram);
        }
        if out.is_empty() {
            out.push_str("stat: nothing to report\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{RecordSource, SequenceStore};
    use crate::{Database, DbConfig};
    use nucdb_seq::DnaSeq;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("nucdb_health_{}_{}", name, std::process::id()))
    }

    fn sample_records() -> Vec<(String, DnaSeq)> {
        (0..12)
            .map(|i| {
                let mut body = Vec::new();
                for j in 0..200 {
                    body.push(b"ACGT"[(i * 7 + j * 3) % 4]);
                }
                (format!("r{i}"), DnaSeq::from_ascii(&body).unwrap())
            })
            .collect()
    }

    #[test]
    fn clean_files_fsck_clean() {
        let db = Database::build(sample_records(), &DbConfig::default());
        let ipath = temp_path("fsck_i");
        let spath = temp_path("fsck_s");
        let db = db
            .with_disk_index(&ipath)
            .unwrap()
            .with_disk_store(&spath)
            .unwrap();
        let (crate::IndexVariant::Disk(index), crate::store::StoreVariant::Disk(store)) =
            (db.index(), db.store())
        else {
            panic!("expected disk variants");
        };
        let mut report = FsckReport::default();
        fsck_index(index, &mut report);
        fsck_store(store, &mut report);
        assert!(report.is_clean(), "{:?}", report.findings);
        assert_eq!(report.exit_code(), 0);
        assert!(report.lists_checked > 0);
        assert_eq!(report.records_checked, 12);
        assert!(report.bytes_verified > 0);
        assert!(report.render_text().contains("clean"));
        let _ = std::fs::remove_file(&ipath);
        let _ = std::fs::remove_file(&spath);
    }

    #[test]
    fn flipped_list_byte_is_found_with_offset() {
        let db = Database::build(sample_records(), &DbConfig::default());
        let ipath = temp_path("fsck_flip");
        let db = db.with_disk_index(&ipath).unwrap();
        let crate::IndexVariant::Disk(index) = db.index() else {
            panic!("expected disk index");
        };
        let blob_start = index.blob_start();
        drop(db);

        let mut bytes = std::fs::read(&ipath).unwrap();
        let target = blob_start as usize + (bytes.len() - blob_start as usize) / 2;
        bytes[target] ^= 0x40;
        std::fs::write(&ipath, &bytes).unwrap();

        let index = nucdb_index::OnDiskIndex::open(&ipath).unwrap();
        let mut report = FsckReport::default();
        fsck_index(&index, &mut report);
        assert!(!report.is_clean());
        assert_eq!(report.exit_code(), 1);
        let finding = &report.findings[0];
        assert_eq!(finding.file, "index");
        assert!(finding.offset.is_some(), "finding should carry an offset");
        let text = report.render_text();
        assert!(text.contains("payload damage"), "{text}");
        let _ = std::fs::remove_file(&ipath);
    }

    #[test]
    fn header_damage_is_structural() {
        let db = Database::build(sample_records(), &DbConfig::default());
        let ipath = temp_path("fsck_hdr");
        let db = db.with_disk_index(&ipath).unwrap();
        drop(db);
        let mut bytes = std::fs::read(&ipath).unwrap();
        // Inside the checksummed header field region.
        bytes[20] ^= 0x01;
        std::fs::write(&ipath, &bytes).unwrap();

        // The file no longer opens cleanly; fsck reaches the header
        // via the fault-free open of the pristine structure. Use the
        // fault shim so open() sees the original and the pread path
        // sees the damage — the durability-suite entry point.
        let index = nucdb_index::OnDiskIndex::open(&ipath);
        assert!(index.is_err(), "open should reject header damage");
        let _ = std::fs::remove_file(&ipath);
    }

    #[test]
    fn stat_reports_sane_shape() {
        let db = Database::build(sample_records(), &DbConfig::default());
        let ipath = temp_path("stat_i");
        let spath = temp_path("stat_s");
        let db = db
            .with_disk_index(&ipath)
            .unwrap()
            .with_disk_store(&spath)
            .unwrap();
        let (crate::IndexVariant::Disk(index), crate::store::StoreVariant::Disk(store)) =
            (db.index(), db.store())
        else {
            panic!("expected disk variants");
        };
        let report = StatReport {
            index: Some(IndexStatReport::from_disk(index)),
            store: Some(StoreStatReport::from_disk(store)),
        };
        let index_stats = report.index.as_ref().unwrap();
        assert_eq!(index_stats.records, 12);
        assert!(index_stats.distinct_intervals > 0);
        assert!(index_stats.blob_bytes > 0);
        assert!(index_stats.mean_df > 0.0);
        assert!(index_stats.top10_df_share > 0.0 && index_stats.top10_df_share <= 1.0);
        let df_total: u64 = index_stats.df_histogram.iter().map(|b| b.count).sum();
        assert_eq!(df_total, index_stats.distinct_intervals);

        let store_stats = report.store.as_ref().unwrap();
        assert_eq!(store_stats.records, 12);
        assert_eq!(store_stats.total_bases, store.total_bases() as u64);
        assert!(store_stats.toc_bytes > 0);

        let text = report.render_text();
        assert!(text.contains("index:"), "{text}");
        assert!(text.contains("store:"), "{text}");
        assert!(text.contains("list length"), "{text}");
        let json = report.to_value().render();
        let parsed = nucdb_obs::json::parse(&json).unwrap();
        assert!(parsed.get("index").is_some());
        assert!(parsed.get("store").is_some());
        let _ = std::fs::remove_file(&ipath);
        let _ = std::fs::remove_file(&spath);
    }

    #[test]
    fn log2_histogram_buckets() {
        let buckets = log2_histogram([0u64, 1, 1, 2, 3, 4, 5, 8, 9].into_iter());
        let get = |label: &str| {
            buckets
                .iter()
                .find(|b| b.label == label)
                .map(|b| b.count)
                .unwrap_or(0)
        };
        assert_eq!(get("0"), 1);
        assert_eq!(get("1"), 2);
        assert_eq!(get("2"), 1);
        assert_eq!(get("3-4"), 2);
        assert_eq!(get("5-8"), 2);
        assert_eq!(get("9-16"), 1);
    }

    #[test]
    fn legacy_v1_store_scrubs_as_zero() {
        let mut store = SequenceStore::new(crate::store::StorageMode::DirectCoding);
        store.add("a", &DnaSeq::from_ascii(b"ACGTACGT").unwrap());
        let path = temp_path("v1");
        store.write_to_v1(&path).unwrap();
        let disk = OnDiskStore::open(&path).unwrap();
        assert!(!disk.has_checksums());
        assert_eq!(disk.scrub_toc().unwrap(), 0);
        let mut report = FsckReport::default();
        fsck_store(&disk, &mut report);
        assert!(report.is_clean());
        let _ = std::fs::remove_file(&path);
    }
}
