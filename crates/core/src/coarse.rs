//! Coarse search: rank records by index evidence of a local alignment.
//!
//! Every interval of the query is looked up in the inverted index; each
//! posting contributes a *hit* `(record, diagonal)`, where the diagonal is
//! the record offset minus the query position. Records are then scored by
//! one of three schemes (ablated in experiment **E8**):
//!
//! * [`RankingScheme::Count`] — raw hit count. Cheap, but long records
//!   accumulate accidental hits.
//! * [`RankingScheme::Proportional`] — hit count normalised by record
//!   length, correcting the length bias.
//! * [`RankingScheme::Frame`] — the paper family's key insight: hits that
//!   belong to a real local alignment share (nearly) one diagonal, so the
//!   score is the maximum number of hits within a diagonal window whose
//!   width tolerates small indels. Accidental hits scatter across
//!   diagonals and stop mattering.
//!
//! The winning diagonal is reported with each candidate, seeding the
//! banded alignment of fine search.

use std::collections::HashMap;
use std::hash::BuildHasherDefault;

use nucdb_index::{
    CompressedIndex, Granularity, IndexError, IndexParams, OnDiskIndex, PostingsList,
};
use nucdb_seq::Base;

use crate::params::SearchParams;

/// Anything coarse search can fetch postings from (in-memory index,
/// on-disk index, or the engine's variant wrapper).
pub trait PostingsSource {
    /// Number of records the index covers.
    fn num_records(&self) -> u32;
    /// Per-record lengths (needed for proportional ranking and offset
    /// decoding).
    fn record_lens(&self) -> &[u32];
    /// The index parameters (interval length, stride, stopping,
    /// granularity).
    fn index_params(&self) -> &IndexParams;
    /// Fetch the postings list for an interval code (offset granularity
    /// only).
    fn fetch(&self, code: u64) -> Result<Option<PostingsList>, IndexError>;
    /// Fetch `(record, count)` pairs for an interval code (either
    /// granularity).
    fn fetch_counts(&self, code: u64) -> Result<Option<Vec<(u32, u32)>>, IndexError>;
}

impl PostingsSource for CompressedIndex {
    fn num_records(&self) -> u32 {
        CompressedIndex::num_records(self)
    }

    fn record_lens(&self) -> &[u32] {
        CompressedIndex::record_lens(self)
    }

    fn index_params(&self) -> &IndexParams {
        self.params()
    }

    fn fetch(&self, code: u64) -> Result<Option<PostingsList>, IndexError> {
        self.postings(code)
    }

    fn fetch_counts(&self, code: u64) -> Result<Option<Vec<(u32, u32)>>, IndexError> {
        self.counts(code)
    }
}

impl PostingsSource for OnDiskIndex {
    fn num_records(&self) -> u32 {
        OnDiskIndex::num_records(self)
    }

    fn record_lens(&self) -> &[u32] {
        OnDiskIndex::record_lens(self)
    }

    fn index_params(&self) -> &IndexParams {
        self.params()
    }

    fn fetch(&self, code: u64) -> Result<Option<PostingsList>, IndexError> {
        self.postings(code)
    }

    fn fetch_counts(&self, code: u64) -> Result<Option<Vec<(u32, u32)>>, IndexError> {
        self.counts(code)
    }
}

/// Coarse ranking scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RankingScheme {
    /// Total interval hits.
    Count,
    /// Hits divided by record length.
    Proportional,
    /// Most hits within any diagonal window of the given width (in
    /// bases); the window tolerates indels of up to that many bases
    /// inside one local alignment.
    Frame {
        /// Diagonal window width.
        window: u32,
    },
}

impl Default for RankingScheme {
    fn default() -> RankingScheme {
        RankingScheme::Frame { window: 16 }
    }
}

/// One coarse candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoarseHit {
    /// Record id.
    pub record: u32,
    /// Score under the chosen ranking scheme (higher is better).
    pub score: f64,
    /// Total interval hits for the record.
    pub hits: u32,
    /// Hits within the best diagonal window.
    pub frame_hits: u32,
    /// Centre of the best diagonal window (record offset − query
    /// position); seeds the fine-search band.
    pub best_diagonal: i64,
}

/// The result of coarse search, with the cost counters experiments report.
#[derive(Debug, Clone, Default)]
pub struct CoarseOutcome {
    /// Top candidates, descending score.
    pub candidates: Vec<CoarseHit>,
    /// Distinct query intervals looked up.
    pub intervals_looked_up: u64,
    /// Lists found in the index.
    pub lists_fetched: u64,
    /// Postings entries decoded across all fetched lists.
    pub postings_decoded: u64,
    /// Total `(query position, record offset)` hit pairs accumulated.
    pub total_hits: u64,
}

type CodeMap = HashMap<u64, Vec<u32>, BuildHasherDefault<CodeHasher>>;

/// Same multiplicative hasher the index builder uses for interval codes.
#[derive(Default)]
struct CodeHasher {
    state: u64,
}

impl std::hash::Hasher for CodeHasher {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = self.state.rotate_left(8) ^ b as u64;
        }
        self.state = self.state.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }

    fn write_u64(&mut self, value: u64) {
        self.state = value.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }
}

/// Run coarse search for `query` over `index`.
pub fn coarse_rank<S: PostingsSource>(
    index: &S,
    query: &[Base],
    params: &SearchParams,
) -> Result<CoarseOutcome, IndexError> {
    let iparams = index.index_params();
    let mut outcome = CoarseOutcome::default();

    // Distinct query intervals and the query positions they occur at,
    // subsampled by the query stride and filtered by low-complexity
    // masking of the query.
    let masked = params
        .mask
        .as_ref()
        .map(|dust| nucdb_seq::complexity::mask_regions(query, dust))
        .unwrap_or_default();
    let stride = params.query_stride.max(1);
    let mut query_intervals = CodeMap::default();
    for (qpos, code) in iparams.extract(query) {
        if qpos as usize % stride == 0
            && !nucdb_seq::complexity::is_masked(&masked, qpos as usize)
        {
            query_intervals.entry(code).or_default().push(qpos);
        }
    }
    outcome.intervals_looked_up = query_intervals.len() as u64;
    if query_intervals.is_empty() || index.num_records() == 0 {
        return Ok(outcome);
    }

    // Record-granularity indexes carry no offsets: only count-based
    // rankings are possible, via the cheaper counts decode.
    if iparams.granularity == Granularity::Records {
        if matches!(params.ranking, RankingScheme::Frame { .. }) {
            return Err(IndexError::Unsupported(
                "frame ranking requires an offset-granularity index",
            ));
        }
        return coarse_rank_counts(index, &query_intervals, params, outcome);
    }

    // Accumulate hit counts and (record, diagonal) pairs, optionally
    // capping how many distinct records are tracked (accumulator
    // limiting: once full, hits on untracked records are dropped).
    let accumulator_limit = params.max_accumulators.unwrap_or(usize::MAX).max(1);
    let mut tracked = 0usize;
    let mut acc = vec![0u32; index.num_records() as usize];
    let mut hits: Vec<(u32, i64)> = Vec::new();
    for (code, qpositions) in &query_intervals {
        let Some(list) = index.fetch(*code)? else {
            continue;
        };
        outcome.lists_fetched += 1;
        outcome.postings_decoded += list.df() as u64;
        for posting in &list.entries {
            let record = posting.record;
            if acc[record as usize] == 0 {
                if tracked >= accumulator_limit {
                    continue;
                }
                tracked += 1;
            }
            for &offset in &posting.offsets {
                for &qpos in qpositions {
                    acc[record as usize] += 1;
                    hits.push((record, offset as i64 - qpos as i64));
                }
            }
        }
    }
    outcome.total_hits = hits.len() as u64;
    if hits.is_empty() {
        return Ok(outcome);
    }

    // Per-record best diagonal window (two-pointer over the record's
    // sorted diagonals). Computed for every ranking scheme — Frame scores
    // by it, the others still need the diagonal to seed fine search.
    let window = match params.ranking {
        RankingScheme::Frame { window } => window as i64,
        // A modest default tolerance when frames are not the ranking.
        _ => 16,
    };
    hits.sort_unstable();

    let record_lens = index.record_lens();
    let mut candidates: Vec<CoarseHit> = Vec::new();
    let mut run_start = 0usize;
    while run_start < hits.len() {
        let record = hits[run_start].0;
        let mut run_end = run_start;
        while run_end < hits.len() && hits[run_end].0 == record {
            run_end += 1;
        }
        let diags = &hits[run_start..run_end];
        // Two-pointer max window.
        let mut best_count = 0usize;
        let mut best_lo = 0usize;
        let mut lo = 0usize;
        for hi in 0..diags.len() {
            while diags[hi].1 - diags[lo].1 > window {
                lo += 1;
            }
            if hi - lo + 1 > best_count {
                best_count = hi - lo + 1;
                best_lo = lo;
            }
        }
        let window_slice = &diags[best_lo..best_lo + best_count];
        let best_diagonal = window_slice[window_slice.len() / 2].1;

        let total = acc[record as usize];
        if total >= params.min_coarse_hits {
            let score = match params.ranking {
                RankingScheme::Count => total as f64,
                RankingScheme::Proportional => {
                    total as f64 / (record_lens[record as usize].max(1) as f64)
                }
                RankingScheme::Frame { .. } => best_count as f64,
            };
            candidates.push(CoarseHit {
                record,
                score,
                hits: total,
                frame_hits: best_count as u32,
                best_diagonal,
            });
        }
        run_start = run_end;
    }

    candidates.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("coarse scores are finite")
            .then(a.record.cmp(&b.record))
    });
    candidates.truncate(params.max_candidates);
    outcome.candidates = candidates;
    Ok(outcome)
}

/// Count-based coarse ranking over a record-granularity index: the same
/// accumulation without diagonals (no offsets exist). Candidates carry
/// `best_diagonal = 0`; the engine compensates by running unbanded fine
/// alignment.
fn coarse_rank_counts<S: PostingsSource>(
    index: &S,
    query_intervals: &CodeMap,
    params: &SearchParams,
    mut outcome: CoarseOutcome,
) -> Result<CoarseOutcome, IndexError> {
    let accumulator_limit = params.max_accumulators.unwrap_or(usize::MAX).max(1);
    let mut tracked = 0usize;
    let mut acc = vec![0u32; index.num_records() as usize];
    for (code, qpositions) in query_intervals {
        let Some(counts) = index.fetch_counts(*code)? else {
            continue;
        };
        outcome.lists_fetched += 1;
        outcome.postings_decoded += counts.len() as u64;
        for (record, count) in counts {
            if acc[record as usize] == 0 {
                if tracked >= accumulator_limit {
                    continue;
                }
                tracked += 1;
            }
            let contribution = count * qpositions.len() as u32;
            acc[record as usize] += contribution;
            outcome.total_hits += contribution as u64;
        }
    }

    let record_lens = index.record_lens();
    let mut candidates: Vec<CoarseHit> = acc
        .iter()
        .enumerate()
        .filter(|&(_, &total)| total >= params.min_coarse_hits.max(1))
        .map(|(record, &total)| CoarseHit {
            record: record as u32,
            score: match params.ranking {
                RankingScheme::Proportional => {
                    total as f64 / (record_lens[record].max(1) as f64)
                }
                _ => total as f64,
            },
            hits: total,
            frame_hits: 0,
            best_diagonal: 0,
        })
        .collect();
    candidates.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("coarse scores are finite")
            .then(a.record.cmp(&b.record))
    });
    candidates.truncate(params.max_candidates);
    outcome.candidates = candidates;
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nucdb_index::IndexBuilder;
    use nucdb_seq::DnaSeq;

    fn bases(ascii: &[u8]) -> Vec<Base> {
        DnaSeq::from_ascii(ascii).unwrap().representative_bases()
    }

    fn build(records: &[&[u8]], k: usize) -> CompressedIndex {
        let mut builder = IndexBuilder::new(IndexParams::new(k));
        for r in records {
            builder.add_record(&bases(r));
        }
        builder.finish()
    }

    fn params(ranking: RankingScheme) -> SearchParams {
        SearchParams { ranking, min_coarse_hits: 1, ..SearchParams::default() }
    }

    #[test]
    fn exact_copy_ranks_first() {
        let index = build(
            &[
                b"GGGGGGGGGGGGGGGGGGGGGGGG",
                b"TTTTACGTAGCTAGCTGGATCCTT", // contains the query
                b"CACACACACACACACACACACACA",
            ],
            8,
        );
        let query = bases(b"ACGTAGCTAGCTGGATCC");
        for ranking in
            [RankingScheme::Count, RankingScheme::Proportional, RankingScheme::Frame { window: 8 }]
        {
            let outcome = coarse_rank(&index, &query, &params(ranking)).unwrap();
            assert!(!outcome.candidates.is_empty(), "{ranking:?}");
            assert_eq!(outcome.candidates[0].record, 1, "{ranking:?}");
        }
    }

    #[test]
    fn diagonal_is_recovered() {
        // Query matches record 0 at offset 6 → diagonal +6.
        let index = build(&[b"CCCCCCACGTAGCTAGCTGGATCCAAAA"], 8);
        let query = bases(b"ACGTAGCTAGCTGGATCC");
        let outcome =
            coarse_rank(&index, &query, &params(RankingScheme::Frame { window: 4 })).unwrap();
        assert_eq!(outcome.candidates.len(), 1);
        assert_eq!(outcome.candidates[0].best_diagonal, 6);
        // All hits of an exact embedded match share one diagonal.
        assert_eq!(outcome.candidates[0].frame_hits, outcome.candidates[0].hits);
    }

    #[test]
    fn frame_beats_count_on_scattered_hits() {
        // Record 0 shares many intervals with the query but scattered
        // (shuffled blocks); record 1 embeds a contiguous fragment.
        // Count ranks 0 first or equal; Frame must rank 1 first.
        let query = bases(b"AACCGGTTACGTAGCTTGCATGCAAACCGGTT");
        // Blocks of the query reordered and repeated: many hits, no
        // common diagonal.
        let scattered = b"TGCATGCAACGTAGCTAACCGGTTAACCGGTTAACCGGTT";
        let contiguous = b"TTTTTTACGTAGCTTGCATGCATTTTTTTTTT"; // one fragment
        let index = build(&[scattered, contiguous], 8);

        let frame =
            coarse_rank(&index, &query, &params(RankingScheme::Frame { window: 4 })).unwrap();
        assert_eq!(frame.candidates[0].record, 1, "frame should prefer the contiguous match");

        let count = coarse_rank(&index, &query, &params(RankingScheme::Count)).unwrap();
        assert_eq!(count.candidates[0].record, 0, "count should prefer the scattered record");
    }

    #[test]
    fn proportional_corrects_length_bias() {
        // A short record with one shared interval vs a long record with
        // two: proportional prefers the short one, count the long one.
        let short = b"ACGTAGCTAGCT"; // 12 bases, hits once
        let mut long = b"ACGTAGCTAGCTACGTAGCTAGCT".to_vec(); // hits more
        long.extend(std::iter::repeat_n(b'G', 400));
        let index = build(&[short, &long], 12);
        let query = bases(b"ACGTAGCTAGCT");

        let count = coarse_rank(&index, &query, &params(RankingScheme::Count)).unwrap();
        assert_eq!(count.candidates[0].record, 1);
        let prop = coarse_rank(&index, &query, &params(RankingScheme::Proportional)).unwrap();
        assert_eq!(prop.candidates[0].record, 0);
    }

    #[test]
    fn min_hits_filters_noise() {
        let index = build(&[b"ACGTAGCTTTTTTTTT", b"GGGGGGGGGGGGGGGG"], 8);
        let query = bases(b"ACGTAGCTAAAAAAAA"); // one shared interval with record 0
        let strict = SearchParams { min_coarse_hits: 2, ..SearchParams::default() };
        let outcome = coarse_rank(&index, &query, &strict).unwrap();
        assert!(outcome.candidates.is_empty());
        let lax = SearchParams { min_coarse_hits: 1, ..SearchParams::default() };
        let outcome = coarse_rank(&index, &query, &lax).unwrap();
        assert_eq!(outcome.candidates.len(), 1);
    }

    #[test]
    fn candidate_cutoff_respected() {
        let records: Vec<Vec<u8>> = (0..20)
            .map(|i| {
                let mut r = b"ACGTAGCTAGCTGGAT".to_vec();
                r.push(b"ACGT"[i % 4]);
                r
            })
            .collect();
        let refs: Vec<&[u8]> = records.iter().map(|r| r.as_slice()).collect();
        let index = build(&refs, 8);
        let query = bases(b"ACGTAGCTAGCTGGAT");
        let p = SearchParams { max_candidates: 5, min_coarse_hits: 1, ..SearchParams::default() };
        let outcome = coarse_rank(&index, &query, &p).unwrap();
        assert_eq!(outcome.candidates.len(), 5);
        // Scores descend.
        for pair in outcome.candidates.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }

    #[test]
    fn short_query_yields_empty_outcome() {
        let index = build(&[b"ACGTACGTACGTACGT"], 8);
        let query = bases(b"ACGT"); // shorter than k
        let outcome = coarse_rank(&index, &query, &params(RankingScheme::Count)).unwrap();
        assert!(outcome.candidates.is_empty());
        assert_eq!(outcome.intervals_looked_up, 0);
    }

    #[test]
    fn query_stride_reduces_lookups() {
        let index = build(&[b"ACGTAGCTAGCTGGATCCTTACGGATCCAT"], 8);
        let query = bases(b"ACGTAGCTAGCTGGATCCTTACGGATCC");
        let all = coarse_rank(&index, &query, &params(RankingScheme::Count)).unwrap();
        let mut strided = params(RankingScheme::Count);
        strided.query_stride = 4;
        let sampled = coarse_rank(&index, &query, &strided).unwrap();
        assert!(sampled.intervals_looked_up < all.intervals_looked_up);
        assert!(sampled.intervals_looked_up >= all.intervals_looked_up / 6);
        // The exact embedded match still surfaces.
        assert_eq!(sampled.candidates[0].record, 0);
    }

    #[test]
    fn accumulator_limit_caps_tracked_records() {
        // 10 records share the query's interval; with a limit of 3 only
        // the first 3 can become candidates.
        let records: Vec<&[u8]> = vec![b"ACGTAGCTAGCTGGAT"; 10];
        let index = build(&records, 8);
        let query = bases(b"ACGTAGCTAGCTGGAT");
        let mut limited = params(RankingScheme::Count);
        limited.max_accumulators = Some(3);
        let outcome = coarse_rank(&index, &query, &limited).unwrap();
        assert_eq!(outcome.candidates.len(), 3);
        let ids: Vec<u32> = outcome.candidates.iter().map(|c| c.record).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        // Unlimited finds all ten.
        let outcome = coarse_rank(&index, &query, &params(RankingScheme::Count)).unwrap();
        assert_eq!(outcome.candidates.len(), 10);
    }

    #[test]
    fn masking_suppresses_repeat_flood() {
        // Record 0 is a pure poly-A repeat; record 1 embeds the real
        // target. A query contaminated with poly-A floods unmasked
        // coarse search via record 0; masking removes the flood while
        // keeping the real match.
        let repeat_record = vec![b'A'; 400];
        let mut real = b"TGCCGTTGCA".to_vec();
        real.extend_from_slice(b"ACGTAGCTGGATCCTTACGGATCCAGGT");
        real.extend_from_slice(b"CCGGTTGGCC");
        let index = build(&[&repeat_record, &real], 8);

        let mut query_ascii = b"ACGTAGCTGGATCCTTACGGATCCAGGT".to_vec();
        query_ascii.extend(vec![b'A'; 120]); // contamination
        let query = bases(&query_ascii);

        let unmasked = coarse_rank(&index, &query, &params(RankingScheme::Count)).unwrap();
        assert!(
            unmasked.candidates.iter().any(|c| c.record == 0),
            "repeat record should flood the unmasked ranking"
        );

        let mut masked_params = params(RankingScheme::Count);
        masked_params.mask = Some(nucdb_seq::DustParams::default());
        let masked = coarse_rank(&index, &query, &masked_params).unwrap();
        assert!(masked.total_hits < unmasked.total_hits / 4);
        assert_eq!(masked.candidates[0].record, 1, "real target survives masking");
        assert!(
            !masked.candidates.iter().any(|c| c.record == 0),
            "repeat record should vanish under masking"
        );
    }

    #[test]
    fn cost_counters_are_plausible() {
        let index = build(&[b"ACGTACGTACGTACGT", b"ACGTACGTACGTACGT"], 8);
        let query = bases(b"ACGTACGTACGT");
        let outcome = coarse_rank(&index, &query, &params(RankingScheme::Count)).unwrap();
        assert!(outcome.intervals_looked_up > 0);
        assert!(outcome.lists_fetched <= outcome.intervals_looked_up);
        assert!(outcome.total_hits >= outcome.postings_decoded);
    }
}
